//! Part 2 training: multi-task fine-tuning with the adaptive combined loss.

use crate::config::KgLinkConfig;
use crate::error::KgLinkError;
use crate::model::KgLinkModel;
use crate::preprocess::ProcessedTable;
use crate::serialize::{serialize_features, serialize_table, SerializedTable, SlotFill};
use kglink_nn::checkpoint::{
    load_train_state, CheckpointError, Checkpointer, TrainCheckpoint,
};
use kglink_nn::layers::param::HasParams;
use kglink_nn::serialize::{load_params, save_params};
use kglink_nn::{cross_entropy, dmlm_loss, AdamW, LinearDecay, Task, Tensor, Tokenizer};
use kglink_obs::Tracer;
use kglink_table::{EvalSummary, LabelId, LabelVocab};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

/// A table fully prepared for the network: serialized masked input, the
/// optional ground-truth teacher table, feature sequences, and labels.
#[derive(Debug, Clone)]
pub struct PreparedTable {
    pub masked: SerializedTable,
    /// Teacher table — present only for training tables with the mask task.
    pub gt: Option<SerializedTable>,
    pub features: Vec<Option<Vec<u32>>>,
    pub labels: Vec<LabelId>,
}

/// Serialize processed tables for the network. `with_teacher` builds the
/// ground-truth tables (training split only — the paper: "during model
/// evaluation, the ground truth table is not created to prevent leakage").
pub fn prepare_tables(
    processed: &[ProcessedTable],
    tokenizer: &Tokenizer,
    labels: &LabelVocab,
    config: &KgLinkConfig,
    with_teacher: bool,
) -> Vec<PreparedTable> {
    processed
        .iter()
        .map(|pt| PreparedTable {
            masked: serialize_table(pt, tokenizer, labels, config, SlotFill::Mask),
            gt: (with_teacher && config.use_mask_task)
                .then(|| serialize_table(pt, tokenizer, labels, config, SlotFill::GroundTruth)),
            features: serialize_features(pt, tokenizer, config),
            labels: pt.labels.clone(),
        })
        .collect()
}

/// Per-epoch training trace.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Mean combined loss per epoch.
    pub epoch_loss: Vec<f32>,
    /// Validation accuracy per epoch.
    pub val_accuracy: Vec<f64>,
    /// `(log σ0², log σ1²)` at the end of each epoch (Figure 8(b)).
    pub sigma_trajectory: Vec<(f32, f32)>,
    /// Epoch whose weights were kept (early stopping).
    pub best_epoch: usize,
    /// Optimizer steps whose loss or gradients were non-finite.
    pub nonfinite_steps: u64,
    /// Times [`GuardPolicy::Rollback`] restored the last checkpointed state.
    pub rollbacks: u64,
    /// Global step of the checkpoint this run resumed from, if any.
    pub resumed_from_step: Option<u64>,
    /// `true` when the run stopped at [`FitOptions::halt_after_step`]
    /// (simulated kill) instead of training to completion.
    pub halted: bool,
}

/// What the training loop does when a step's loss or gradients come back
/// non-finite (NaN/∞ — numerical divergence, bad batch, hardware fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GuardPolicy {
    /// No guard: the step is applied as-is and non-finite values propagate
    /// into the weights (the pre-guard behavior; kept for ablation).
    #[default]
    Off,
    /// Drop the poisoned gradients, skip the optimizer step, and keep
    /// training. Counted in [`TrainReport::nonfinite_steps`] and surfaced
    /// as a `train.nonfinite` tracer event.
    SkipStep,
    /// Like [`SkipStep`](Self::SkipStep), but after `max_consecutive` bad
    /// steps in a row, restore weights + optimizer moments from the last
    /// checkpoint (or the initial state when none was written yet). The
    /// step cursor and RNG keep advancing past the bad region, so a
    /// deterministic fault cannot cause an infinite replay loop.
    Rollback { max_consecutive: usize },
}

/// Crash-safety options for [`train_with`] / [`KgLink::fit_with`].
///
/// ```ignore
/// let options = FitOptions::new()
///     .checkpoint_every("run/model.kgck", 50)
///     .resume_from("run/model.kgck")
///     .guard(GuardPolicy::SkipStep);
/// ```
///
/// [`KgLink::fit_with`]: crate::pipeline::KgLink::fit_with
#[derive(Debug, Default)]
pub struct FitOptions {
    /// Atomic checkpoint writer invoked every N optimizer steps.
    pub checkpointer: Option<Checkpointer>,
    /// Resume from this checkpoint file before the first step.
    pub resume_from: Option<PathBuf>,
    /// Divergence-guard policy.
    pub guard: GuardPolicy,
    /// Chaos hook: stop (as if killed) right after this global optimizer
    /// step, leaving the last checkpoint on disk.
    pub halt_after_step: Option<u64>,
    /// Chaos hook: poison the gradients with NaN at these global steps
    /// (1-based), exercising the guard policy deterministically.
    pub fault_steps: Vec<u64>,
}

impl FitOptions {
    pub fn new() -> Self {
        Self::default()
    }

    /// Write an atomic checkpoint to `path` every `every_n_steps`
    /// optimizer steps.
    pub fn checkpoint_every(mut self, path: impl Into<PathBuf>, every_n_steps: u64) -> Self {
        self.checkpointer = Some(Checkpointer::new(path, every_n_steps));
        self
    }

    /// Resume training from a checkpoint written by a previous run.
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume_from = Some(path.into());
        self
    }

    /// Set the divergence-guard policy.
    pub fn guard(mut self, policy: GuardPolicy) -> Self {
        self.guard = policy;
        self
    }

    /// Chaos hook: simulate a kill right after global step `step`.
    pub fn halt_after_step(mut self, step: u64) -> Self {
        self.halt_after_step = Some(step);
        self
    }

    /// Chaos hook: inject a non-finite gradient at each listed global step.
    pub fn inject_nonfinite_at(mut self, steps: &[u64]) -> Self {
        self.fault_steps = steps.to_vec();
        self
    }
}

/// One training step over a single table. Accumulates gradients into the
/// model and returns `(mean CE loss, mean DMLM loss)` over its columns.
///
/// Dropout is applied to the encoder's output states (inverted-dropout
/// scaling), which is where BERT's final dropout sits before the task
/// heads; the mask is replayed on the backward path.
fn train_table(
    model: &mut KgLinkModel,
    config: &KgLinkConfig,
    pt: &PreparedTable,
    rng: &mut StdRng,
) -> (f32, f32) {
    let (mut hidden, cache) = model.encoder.forward(&pt.masked.ids);
    let dropout_mask = if config.dropout > 0.0 {
        let keep = 1.0 - config.dropout;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..hidden.numel())
            .map(|_| if rng.gen_bool(keep as f64) { scale } else { 0.0 })
            .collect();
        for (h, &m) in hidden.data_mut().iter_mut().zip(&mask) {
            *h *= m;
        }
        Some(mask)
    } else {
        None
    };
    let teacher_hidden = match (&pt.gt, config.use_mask_task) {
        (Some(gt), true) => Some(model.encoder.infer(&gt.ids)),
        _ => None,
    };
    let mut d_hidden = Tensor::zeros(hidden.rows(), hidden.cols());
    let d = hidden.cols();
    let n_cols = pt.labels.len();
    let visible = (0..n_cols)
        .filter(|&c| pt.masked.cls[c] < hidden.rows())
        .count()
        .max(1);
    let inv = 1.0 / visible as f32;
    let (w0, w1) = if config.use_mask_task {
        (model.uw.weight(Task::Dmlm), model.uw.weight(Task::Classify))
    } else {
        (0.0, 1.0)
    };
    let mut ce_sum = 0.0f32;
    let mut dmlm_sum = 0.0f32;
    for c in 0..n_cols {
        let cls = pt.masked.cls[c];
        if cls >= hidden.rows() {
            continue; // truncated away by the encoder's context limit
        }
        // ---- Column representation: Y_col = φ(Y_cls, Y_fv) -------------
        let mut y_col = Tensor::from_vec(1, d, hidden.row(cls).to_vec());
        let feature_ids = if config.use_feature_vector {
            pt.features[c].as_ref()
        } else {
            None
        };
        let feature_ctx = feature_ids.map(|fids| {
            let (fh, fcache) = model.encoder.forward(fids);
            let fv = Tensor::from_vec(1, d, fh.row(0).to_vec());
            let (proj, pcache) = model.feature_proj.forward(&fv);
            y_col.add_assign(&proj);
            (fh.rows(), fcache, pcache)
        });
        // ---- Classification loss (Eq. 16) -------------------------------
        let (logits, ccache) = model.classifier.forward(&y_col);
        let (ce, mut dlogits) = cross_entropy(logits.row(0), pt.labels[c].index());
        ce_sum += ce;
        for g in &mut dlogits {
            *g *= w1 * inv;
        }
        let dlogits_t = Tensor::from_vec(1, dlogits.len(), dlogits);
        let dy_col = model.classifier.backward(&ccache, &dlogits_t);
        for (g, &v) in d_hidden.row_mut(cls).iter_mut().zip(dy_col.row(0)) {
            *g += v;
        }
        if let Some((f_rows, fcache, pcache)) = feature_ctx {
            let dfv = model.feature_proj.backward(&pcache, &dy_col);
            let mut dfh = Tensor::zeros(f_rows, d);
            dfh.row_mut(0).copy_from_slice(dfv.row(0));
            model.encoder.backward(&fcache, &dfh);
        }
        // ---- DMLM representation-generation loss (Eq. 13–14) ------------
        if let Some(teacher) = &teacher_hidden {
            let slot = pt.masked.slot[c];
            if slot < hidden.rows() && slot < teacher.rows() {
                let student_logits = model.head.infer_row(hidden.row(slot));
                let teacher_logits = model.head.infer_row(teacher.row(slot));
                let (dm, mut dstudent) =
                    dmlm_loss(&student_logits, &teacher_logits, config.temperature);
                dmlm_sum += dm;
                for g in &mut dstudent {
                    *g *= w0 * inv;
                }
                let x = Tensor::from_vec(1, d, hidden.row(slot).to_vec());
                let (_, hcache) = model.head.proj.forward(&x);
                let dstudent_t = Tensor::from_vec(1, dstudent.len(), dstudent);
                let dx = model.head.proj.backward(&hcache, &dstudent_t);
                for (g, &v) in d_hidden.row_mut(slot).iter_mut().zip(dx.row(0)) {
                    *g += v;
                }
            }
        }
    }
    if let Some(mask) = &dropout_mask {
        for (g, &m) in d_hidden.data_mut().iter_mut().zip(mask) {
            *g *= m;
        }
    }
    model.encoder.backward(&cache, &d_hidden);
    let ce_mean = ce_sum * inv;
    let dmlm_mean = dmlm_sum * inv;
    if config.use_mask_task {
        // Uncertainty-weight gradients + the regularizer (Eq. 17).
        model.uw.combine(dmlm_mean, ce_mean);
    }
    (ce_mean, dmlm_mean)
}

/// Predict labels for one prepared table (inference path, no gradients).
/// Untraced convenience over [`predict_table_traced`].
pub fn predict_table(
    model: &KgLinkModel,
    config: &KgLinkConfig,
    pt: &PreparedTable,
) -> Vec<LabelId> {
    predict_table_traced(model, config, pt, &Tracer::disabled())
}

/// Batched prediction: the masked table and every eligible column's
/// feature sequence are encoded in **one** batched forward — one GEMM per
/// projection per layer across all of them — recorded under an
/// `nn.forward` tracer span. Classification only reads one CLS row per
/// column (plus each feature sequence's row 0), so the forward runs
/// through [`Encoder::infer_batch_rows`], which skips the final block's
/// row-local work for every other row. Composition and classification
/// then read rows straight out of the packed batch; every row read is
/// bit-identical to encoding each sequence separately.
///
/// [`Encoder::infer_batch_rows`]: kglink_nn::Encoder::infer_batch_rows
pub fn predict_table_traced(
    model: &KgLinkModel,
    config: &KgLinkConfig,
    pt: &PreparedTable,
    tracer: &Tracer,
) -> Vec<LabelId> {
    // Segment 0 is the masked table; each eligible feature sequence gets
    // its own segment after it.
    let mut seqs: Vec<&[u32]> = Vec::with_capacity(1 + pt.labels.len());
    seqs.push(&pt.masked.ids);
    let mut feat_slot: Vec<Option<usize>> = Vec::with_capacity(pt.labels.len());
    for c in 0..pt.labels.len() {
        let slot = if config.use_feature_vector {
            pt.features[c].as_ref().map(|fids| {
                seqs.push(fids);
                seqs.len() - 1
            })
        } else {
            None
        };
        feat_slot.push(slot);
    }
    // Rows the classifier will read: the CLS row of every in-bounds
    // column in segment 0, then row 0 of each feature segment.
    let len0 = pt.masked.ids.len().min(model.encoder.config.max_len);
    let mut needed: Vec<(usize, usize)> = pt
        .masked
        .cls
        .iter()
        .take(pt.labels.len())
        .filter(|&&cls| cls < len0)
        .map(|&cls| (0usize, cls))
        .collect();
    needed.sort_unstable();
    needed.dedup();
    needed.extend((1..seqs.len()).map(|si| (si, 0)));
    kglink_nn::with_encoder_scratch(|es| {
        let batch = {
            let _forward = tracer.span("nn.forward");
            model.encoder.infer_batch_rows(&seqs, &needed, es)
        };
        (0..pt.labels.len())
            .map(|c| {
                let cls = pt.masked.cls[c];
                if cls >= batch.len(0) {
                    return LabelId(0); // truncated column: fall back to class 0
                }
                let fv = feat_slot[c].map(|si| batch.row(si, 0));
                let y_col = model.compose(batch.row(0, cls), fv);
                let logits = model.classify(&y_col);
                let best = logits
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                LabelId(best as u32)
            })
            .collect()
    })
}

/// Evaluate a model over prepared tables.
pub fn evaluate(model: &KgLinkModel, config: &KgLinkConfig, tables: &[PreparedTable]) -> EvalSummary {
    let mut preds = Vec::new();
    let mut truths = Vec::new();
    for pt in tables {
        preds.extend(predict_table(model, config, pt));
        truths.extend(pt.labels.iter().copied());
    }
    EvalSummary::compute(&preds, &truths)
}

/// Fine-tune `model` on `train` with early stopping on `val` accuracy.
/// Restores the best-epoch weights before returning.
pub fn train(
    model: &mut KgLinkModel,
    config: &KgLinkConfig,
    train_tables: &[PreparedTable],
    val_tables: &[PreparedTable],
) -> TrainReport {
    train_with(
        model,
        config,
        train_tables,
        val_tables,
        &FitOptions::default(),
        &Tracer::disabled(),
    )
    // kglink-lint: allow(panic-in-lib) — structural: every TrainError is a
    // checkpoint I/O failure, and default FitOptions do no checkpoint I/O.
    .expect("training without checkpoint I/O cannot fail")
}

// ---- loop-state codec (checkpoint `extra` section) ------------------------
//
// Everything the outer loop mutates that is NOT model/optimizer/RNG state
// lives here, so a mid-epoch resume replays bit-identically: the epoch
// shuffle order, the f32 loss accumulator (exact bits), and the
// early-stopping bookkeeping including the serialized best-epoch weights.

struct LoopState {
    epoch: u64,
    /// Next chunk index within the epoch (the saved step completed
    /// `chunk - 1`).
    chunk: u64,
    global_step: u64,
    consecutive_bad: u64,
    bad_epochs: u64,
    n_tables: u64,
    epoch_loss: f32,
    best_acc: f64,
    order: Vec<usize>,
    best_blob: Option<Vec<u8>>,
    report: TrainReport,
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked little-endian reader; every short read is a typed
/// [`CheckpointError::Truncated`] instead of a slice panic.
struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], CheckpointError> {
        if self.0.len() < n {
            return Err(CheckpointError::Truncated);
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }

    /// Fixed-size read: the array width is checked by construction, so no
    /// fallible slice-to-array conversion is needed afterwards.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], CheckpointError> {
        let (head, tail) = self
            .0
            .split_first_chunk::<N>()
            .ok_or(CheckpointError::Truncated)?;
        self.0 = tail;
        Ok(*head)
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_le_bytes(self.array()?))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_le_bytes(self.array()?))
    }
}

impl LoopState {
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u64(&mut buf, self.epoch);
        put_u64(&mut buf, self.chunk);
        put_u64(&mut buf, self.global_step);
        put_u64(&mut buf, self.consecutive_bad);
        put_u64(&mut buf, self.bad_epochs);
        put_u64(&mut buf, self.n_tables);
        put_f32(&mut buf, self.epoch_loss);
        put_f64(&mut buf, self.best_acc);
        put_u64(&mut buf, self.order.len() as u64);
        for &i in &self.order {
            put_u64(&mut buf, i as u64);
        }
        match &self.best_blob {
            Some(blob) => {
                put_u64(&mut buf, 1 + blob.len() as u64);
                buf.extend_from_slice(blob);
            }
            None => put_u64(&mut buf, 0),
        }
        let r = &self.report;
        put_u64(&mut buf, r.best_epoch as u64);
        put_u64(&mut buf, r.nonfinite_steps);
        put_u64(&mut buf, r.rollbacks);
        put_u64(&mut buf, r.epoch_loss.len() as u64);
        for &l in &r.epoch_loss {
            put_f32(&mut buf, l);
        }
        put_u64(&mut buf, r.val_accuracy.len() as u64);
        for &a in &r.val_accuracy {
            put_f64(&mut buf, a);
        }
        put_u64(&mut buf, r.sigma_trajectory.len() as u64);
        for &(s0, s1) in &r.sigma_trajectory {
            put_f32(&mut buf, s0);
            put_f32(&mut buf, s1);
        }
        buf
    }

    fn decode(blob: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader(blob);
        let epoch = r.u64()?;
        let chunk = r.u64()?;
        let global_step = r.u64()?;
        let consecutive_bad = r.u64()?;
        let bad_epochs = r.u64()?;
        let n_tables = r.u64()?;
        let epoch_loss = r.f32()?;
        let best_acc = r.f64()?;
        let n_order = r.u64()? as usize;
        let mut order = Vec::with_capacity(n_order);
        for _ in 0..n_order {
            order.push(r.u64()? as usize);
        }
        let blob_tag = r.u64()?;
        let best_blob = if blob_tag == 0 {
            None
        } else {
            Some(r.take(blob_tag as usize - 1)?.to_vec())
        };
        let mut report = TrainReport {
            best_epoch: r.u64()? as usize,
            nonfinite_steps: r.u64()?,
            rollbacks: r.u64()?,
            ..TrainReport::default()
        };
        for _ in 0..r.u64()? {
            report.epoch_loss.push(r.f32()?);
        }
        for _ in 0..r.u64()? {
            report.val_accuracy.push(r.f64()?);
        }
        for _ in 0..r.u64()? {
            report.sigma_trajectory.push((r.f32()?, r.f32()?));
        }
        Ok(LoopState {
            epoch,
            chunk,
            global_step,
            consecutive_bad,
            bad_epochs,
            n_tables,
            epoch_loss,
            best_acc,
            order,
            best_blob,
            report,
        })
    }
}

/// Poison one gradient with NaN (deterministic, RNG-free) — the chaos
/// harness's stand-in for numerical divergence.
fn poison_one_grad(model: &mut dyn HasParams) {
    let mut done = false;
    model.visit_params(&mut |p| {
        if !done {
            if let Some(g) = p.grad.data_mut().first_mut() {
                *g = f32::NAN;
                done = true;
            }
        }
    });
}

/// [`train`] plus crash safety: periodic atomic checkpoints, resume, and
/// divergence guards per [`FitOptions`].
///
/// Determinism contract: for a fixed `(config, tables, options.guard,
/// options.fault_steps)`, killing the run after any step (via
/// [`FitOptions::halt_after_step`] or an actual crash) and resuming from
/// the last checkpoint produces **bit-identical** final parameters to the
/// uninterrupted run. Checkpoints capture the exact RNG stream position,
/// the epoch shuffle order, and every accumulator the loop mutates, and
/// re-running the steps between the checkpoint and the kill point is pure
/// replay.
pub fn train_with(
    model: &mut KgLinkModel,
    config: &KgLinkConfig,
    train_tables: &[PreparedTable],
    val_tables: &[PreparedTable],
    options: &FitOptions,
    tracer: &Tracer,
) -> Result<TrainReport, KgLinkError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let batch = config.batch_size.max(1);
    let steps_per_epoch = train_tables.len().div_ceil(batch);
    let mut opt = AdamW::new(
        config.optimizer,
        Some(LinearDecay {
            total_steps: steps_per_epoch * config.epochs,
        }),
    );
    let mut report = TrainReport::default();
    let mut best_acc = f64::NEG_INFINITY;
    let mut best_blob: Option<Vec<u8>> = None;
    let mut bad_epochs = 0usize;
    let mut consecutive_bad = 0usize;
    let mut global_step = 0u64;
    let mut epoch_loss = 0.0f32;
    let mut n_tables = 0usize;
    let mut order: Vec<usize> = (0..train_tables.len()).collect();
    let mut epoch = 0usize;
    let mut start_chunk = 0usize;
    let mut mid_epoch = false;

    if let Some(path) = &options.resume_from {
        let ckpt = Checkpointer::load(path).map_err(KgLinkError::Checkpoint)?;
        ckpt.restore(model).map_err(KgLinkError::Checkpoint)?;
        opt.set_steps(ckpt.opt_step as usize);
        rng = StdRng::from_state(ckpt.rng_state);
        let state = LoopState::decode(&ckpt.extra).map_err(KgLinkError::Checkpoint)?;
        epoch = state.epoch as usize;
        start_chunk = state.chunk as usize;
        global_step = state.global_step;
        consecutive_bad = state.consecutive_bad as usize;
        bad_epochs = state.bad_epochs as usize;
        n_tables = state.n_tables as usize;
        epoch_loss = state.epoch_loss;
        best_acc = state.best_acc;
        order = state.order;
        best_blob = state.best_blob;
        report = state.report;
        report.resumed_from_step = Some(ckpt.step);
        mid_epoch = true;
        tracer.incr("train.resume", 1);
        tracer.event_with(
            "train.resume",
            vec![("step", ckpt.step.to_string()), ("epoch", epoch.to_string())],
        );
    }

    // Rollback target: the last durable checkpoint, or the (possibly
    // resumed) starting state before any step is taken.
    let mut last_good: (Vec<u8>, usize) = (
        kglink_nn::checkpoint::save_train_state(model).to_vec(),
        opt.steps(),
    );

    'epochs: while epoch < config.epochs {
        if !mid_epoch {
            order.shuffle(&mut rng);
            epoch_loss = 0.0;
            n_tables = 0;
            start_chunk = 0;
        }
        mid_epoch = false;
        let n_chunks = order.len().div_ceil(batch);
        for ci in start_chunk..n_chunks {
            let chunk = &order[ci * batch..((ci + 1) * batch).min(order.len())];
            let mut chunk_loss = 0.0f32;
            for &ti in chunk {
                let (ce, dm) = train_table(model, config, &train_tables[ti], &mut rng);
                let (w0, w1) = if config.use_mask_task {
                    (model.uw.weight(Task::Dmlm), model.uw.weight(Task::Classify))
                } else {
                    (0.0, 1.0)
                };
                chunk_loss += w0 * dm + w1 * ce;
                n_tables += 1;
            }
            global_step += 1;
            if options.fault_steps.contains(&global_step) {
                poison_one_grad(model);
                chunk_loss = f32::NAN;
            }
            model.scale_grads(1.0 / chunk.len() as f32);
            let finite = chunk_loss.is_finite() && model.grad_norm().is_finite();
            if finite {
                consecutive_bad = 0;
                epoch_loss += chunk_loss;
                opt.step(model);
            } else {
                report.nonfinite_steps += 1;
                tracer.incr("train.nonfinite", 1);
                tracer.event_with(
                    "train.nonfinite",
                    vec![("step", global_step.to_string())],
                );
                match options.guard {
                    GuardPolicy::Off => {
                        // Pre-guard behavior: apply the poisoned step.
                        epoch_loss += chunk_loss;
                        opt.step(model);
                    }
                    GuardPolicy::SkipStep => {
                        model.zero_grads();
                        consecutive_bad += 1;
                    }
                    GuardPolicy::Rollback { max_consecutive } => {
                        model.zero_grads();
                        consecutive_bad += 1;
                        if consecutive_bad >= max_consecutive.max(1) {
                            load_train_state(model, &last_good.0)
                                // kglink-lint: allow(panic-in-lib) — structural:
                                // the snapshot was serialized from this very
                                // model this run, so decode cannot fail.
                                .expect("restoring own snapshot cannot fail");
                            opt.set_steps(last_good.1);
                            consecutive_bad = 0;
                            report.rollbacks += 1;
                            tracer.incr("train.rollback", 1);
                            tracer.event_with(
                                "train.rollback",
                                vec![
                                    ("step", global_step.to_string()),
                                    ("to_opt_step", last_good.1.to_string()),
                                ],
                            );
                        }
                    }
                }
            }
            if let Some(cp) = &options.checkpointer {
                if cp.is_due(global_step) {
                    let state = LoopState {
                        epoch: epoch as u64,
                        chunk: (ci + 1) as u64,
                        global_step,
                        consecutive_bad: consecutive_bad as u64,
                        bad_epochs: bad_epochs as u64,
                        n_tables: n_tables as u64,
                        epoch_loss,
                        best_acc,
                        order: order.clone(),
                        best_blob: best_blob.clone(),
                        report: report.clone(),
                    };
                    let ckpt = TrainCheckpoint::capture(
                        model,
                        opt.steps() as u64,
                        rng.state(),
                        epoch as u64,
                        global_step,
                        state.encode(),
                    );
                    cp.save(&ckpt).map_err(KgLinkError::Checkpoint)?;
                    last_good = (ckpt.train_state.to_vec(), opt.steps());
                    tracer.incr("train.checkpoint", 1);
                }
            }
            if options.halt_after_step == Some(global_step) {
                report.halted = true;
                return Ok(report);
            }
        }
        report
            .epoch_loss
            .push(epoch_loss / n_tables.max(1) as f32);
        let acc = if val_tables.is_empty() {
            0.0
        } else {
            evaluate(model, config, val_tables).accuracy
        };
        report.val_accuracy.push(acc);
        report.sigma_trajectory.push(model.uw.log_sigmas());
        // Without a validation split there is no early-stopping signal:
        // train to the end and keep the final weights.
        if !val_tables.is_empty() {
            if acc > best_acc {
                best_acc = acc;
                report.best_epoch = epoch;
                best_blob = Some(save_params(model).to_vec());
                bad_epochs = 0;
            } else {
                bad_epochs += 1;
                if config.patience > 0 && bad_epochs >= config.patience {
                    break 'epochs;
                }
            }
        } else {
            report.best_epoch = epoch;
        }
        epoch += 1;
    }
    if let Some(blob) = best_blob {
        // kglink-lint: allow(panic-in-lib) — structural: best_blob came from
        // save_params on this model during this run; shapes always match.
        load_params(model, &blob).expect("restoring own weights cannot fail");
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::Preprocessor;
    use kglink_datagen::{pretrain_corpus, semtab_like, SemTabConfig};
    use kglink_kg::{SyntheticWorld, WorldConfig};
    use kglink_nn::{Tokenizer, Vocab};
    use kglink_search::EntitySearcher;
    use kglink_table::Split;

    fn setup() -> (
        Vec<PreparedTable>,
        Vec<PreparedTable>,
        KgLinkConfig,
        usize,
        usize,
    ) {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(55));
        let bench = semtab_like(&world, &SemTabConfig::tiny(55));
        let searcher = EntitySearcher::build(&world.graph);
        let config = KgLinkConfig::fast_test();
        let pre = Preprocessor::new(&world.graph, &searcher, config.clone());
        let corpus = pretrain_corpus(&world, 1);
        let mut texts: Vec<String> = corpus;
        for (_, name) in bench.dataset.labels.iter() {
            texts.push(name.to_string());
        }
        let vocab = Vocab::build(texts.iter().map(String::as_str), 1, 4000);
        let vocab_size = vocab.len();
        let tokenizer = Tokenizer::new(vocab);
        let process = |split: Split| -> Vec<ProcessedTable> {
            bench
                .dataset
                .tables_in(split)
                .flat_map(|t| pre.process(t))
                .collect()
        };
        let train_pt = process(Split::Train);
        let test_pt = process(Split::Test);
        let train_prep = prepare_tables(&train_pt, &tokenizer, &bench.dataset.labels, &config, true);
        let test_prep = prepare_tables(&test_pt, &tokenizer, &bench.dataset.labels, &config, false);
        let n_labels = bench.dataset.labels.len();
        (train_prep, test_prep, config, vocab_size, n_labels)
    }

    #[test]
    fn training_improves_over_untrained() {
        let (train_prep, test_prep, mut config, vocab_size, n_labels) = setup();
        config.epochs = 12;
        let mut model = KgLinkModel::new(&config, vocab_size, n_labels);
        let before = evaluate(&model, &config, &test_prep);
        let report = train(&mut model, &config, &train_prep, &test_prep);
        let after = evaluate(&model, &config, &test_prep);
        assert_eq!(report.epoch_loss.len(), report.val_accuracy.len());
        assert!(
            after.accuracy > before.accuracy + 0.1,
            "training must help: {} -> {}",
            before.accuracy,
            after.accuracy
        );
        assert!(
            after.accuracy > 1.0 / n_labels as f64,
            "better than random"
        );
    }

    #[test]
    fn sigma_trajectory_is_recorded_and_moves() {
        let (train_prep, test_prep, config, vocab_size, n_labels) = setup();
        let mut model = KgLinkModel::new(&config, vocab_size, n_labels);
        let report = train(&mut model, &config, &train_prep, &test_prep);
        assert!(!report.sigma_trajectory.is_empty());
        let (s0_first, _) = report.sigma_trajectory[0];
        let _ = s0_first;
        // σ params start at 0 and must have been updated.
        let (s0, s1) = model.uw.log_sigmas();
        assert!(s0 != 0.0 || s1 != 0.0, "uncertainty weights should train");
    }

    #[test]
    fn training_without_mask_task_runs() {
        let (train_prep, test_prep, mut config, vocab_size, n_labels) = setup();
        config.use_mask_task = false;
        // Prepared tables carry slots from the masked config; rebuild minimal.
        let train2: Vec<PreparedTable> = train_prep
            .iter()
            .map(|p| PreparedTable {
                gt: None,
                ..p.clone()
            })
            .collect();
        let mut model = KgLinkModel::new(&config, vocab_size, n_labels);
        let report = train(&mut model, &config, &train2, &test_prep);
        assert!(!report.epoch_loss.is_empty());
        // Sigmas untouched without the multi-task loss.
        assert_eq!(model.uw.log_sigmas(), (0.0, 0.0));
    }

    #[test]
    fn dropout_training_still_converges_and_inference_is_deterministic() {
        let (train_prep, test_prep, mut config, vocab_size, n_labels) = setup();
        config.epochs = 12;
        config.dropout = 0.3;
        let mut model = KgLinkModel::new(&config, vocab_size, n_labels);
        let before = evaluate(&model, &config, &test_prep);
        train(&mut model, &config, &train_prep, &test_prep);
        let after = evaluate(&model, &config, &test_prep);
        assert!(after.accuracy > before.accuracy, "{} -> {}", before.accuracy, after.accuracy);
        // Dropout is train-only: two evaluations agree exactly.
        let again = evaluate(&model, &config, &test_prep);
        assert_eq!(after.accuracy, again.accuracy);
    }

    #[test]
    fn prediction_shape_matches_labels() {
        let (train_prep, _, config, vocab_size, n_labels) = setup();
        let model = KgLinkModel::new(&config, vocab_size, n_labels);
        for pt in train_prep.iter().take(3) {
            let preds = predict_table(&model, &config, pt);
            assert_eq!(preds.len(), pt.labels.len());
            for p in preds {
                assert!((p.index()) < n_labels);
            }
        }
    }
}
