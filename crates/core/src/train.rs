//! Part 2 training: multi-task fine-tuning with the adaptive combined loss.

use crate::config::KgLinkConfig;
use crate::model::KgLinkModel;
use crate::preprocess::ProcessedTable;
use crate::serialize::{serialize_features, serialize_table, SerializedTable, SlotFill};
use kglink_nn::layers::param::HasParams;
use kglink_nn::serialize::{load_params, save_params};
use kglink_nn::{cross_entropy, dmlm_loss, AdamW, LinearDecay, Tensor, Tokenizer};
use kglink_table::{EvalSummary, LabelId, LabelVocab};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A table fully prepared for the network: serialized masked input, the
/// optional ground-truth teacher table, feature sequences, and labels.
#[derive(Debug, Clone)]
pub struct PreparedTable {
    pub masked: SerializedTable,
    /// Teacher table — present only for training tables with the mask task.
    pub gt: Option<SerializedTable>,
    pub features: Vec<Option<Vec<u32>>>,
    pub labels: Vec<LabelId>,
}

/// Serialize processed tables for the network. `with_teacher` builds the
/// ground-truth tables (training split only — the paper: "during model
/// evaluation, the ground truth table is not created to prevent leakage").
pub fn prepare_tables(
    processed: &[ProcessedTable],
    tokenizer: &Tokenizer,
    labels: &LabelVocab,
    config: &KgLinkConfig,
    with_teacher: bool,
) -> Vec<PreparedTable> {
    processed
        .iter()
        .map(|pt| PreparedTable {
            masked: serialize_table(pt, tokenizer, labels, config, SlotFill::Mask),
            gt: (with_teacher && config.use_mask_task)
                .then(|| serialize_table(pt, tokenizer, labels, config, SlotFill::GroundTruth)),
            features: serialize_features(pt, tokenizer, config),
            labels: pt.labels.clone(),
        })
        .collect()
}

/// Per-epoch training trace.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Mean combined loss per epoch.
    pub epoch_loss: Vec<f32>,
    /// Validation accuracy per epoch.
    pub val_accuracy: Vec<f64>,
    /// `(log σ0², log σ1²)` at the end of each epoch (Figure 8(b)).
    pub sigma_trajectory: Vec<(f32, f32)>,
    /// Epoch whose weights were kept (early stopping).
    pub best_epoch: usize,
}

/// One training step over a single table. Accumulates gradients into the
/// model and returns `(mean CE loss, mean DMLM loss)` over its columns.
///
/// Dropout is applied to the encoder's output states (inverted-dropout
/// scaling), which is where BERT's final dropout sits before the task
/// heads; the mask is replayed on the backward path.
fn train_table(
    model: &mut KgLinkModel,
    config: &KgLinkConfig,
    pt: &PreparedTable,
    rng: &mut StdRng,
) -> (f32, f32) {
    let (mut hidden, cache) = model.encoder.forward(&pt.masked.ids);
    let dropout_mask = if config.dropout > 0.0 {
        let keep = 1.0 - config.dropout;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..hidden.numel())
            .map(|_| if rng.gen_bool(keep as f64) { scale } else { 0.0 })
            .collect();
        for (h, &m) in hidden.data_mut().iter_mut().zip(&mask) {
            *h *= m;
        }
        Some(mask)
    } else {
        None
    };
    let teacher_hidden = match (&pt.gt, config.use_mask_task) {
        (Some(gt), true) => Some(model.encoder.infer(&gt.ids)),
        _ => None,
    };
    let mut d_hidden = Tensor::zeros(hidden.rows(), hidden.cols());
    let d = hidden.cols();
    let n_cols = pt.labels.len();
    let visible = (0..n_cols)
        .filter(|&c| pt.masked.cls[c] < hidden.rows())
        .count()
        .max(1);
    let inv = 1.0 / visible as f32;
    let (w0, w1) = if config.use_mask_task {
        (model.uw.weight(0), model.uw.weight(1))
    } else {
        (0.0, 1.0)
    };
    let mut ce_sum = 0.0f32;
    let mut dmlm_sum = 0.0f32;
    for c in 0..n_cols {
        let cls = pt.masked.cls[c];
        if cls >= hidden.rows() {
            continue; // truncated away by the encoder's context limit
        }
        // ---- Column representation: Y_col = φ(Y_cls, Y_fv) -------------
        let mut y_col = Tensor::from_vec(1, d, hidden.row(cls).to_vec());
        let feature_ids = if config.use_feature_vector {
            pt.features[c].as_ref()
        } else {
            None
        };
        let feature_ctx = feature_ids.map(|fids| {
            let (fh, fcache) = model.encoder.forward(fids);
            let fv = Tensor::from_vec(1, d, fh.row(0).to_vec());
            let (proj, pcache) = model.feature_proj.forward(&fv);
            y_col.add_assign(&proj);
            (fh.rows(), fcache, pcache)
        });
        // ---- Classification loss (Eq. 16) -------------------------------
        let (logits, ccache) = model.classifier.forward(&y_col);
        let (ce, mut dlogits) = cross_entropy(logits.row(0), pt.labels[c].index());
        ce_sum += ce;
        for g in &mut dlogits {
            *g *= w1 * inv;
        }
        let dlogits_t = Tensor::from_vec(1, dlogits.len(), dlogits);
        let dy_col = model.classifier.backward(&ccache, &dlogits_t);
        for (g, &v) in d_hidden.row_mut(cls).iter_mut().zip(dy_col.row(0)) {
            *g += v;
        }
        if let Some((f_rows, fcache, pcache)) = feature_ctx {
            let dfv = model.feature_proj.backward(&pcache, &dy_col);
            let mut dfh = Tensor::zeros(f_rows, d);
            dfh.row_mut(0).copy_from_slice(dfv.row(0));
            model.encoder.backward(&fcache, &dfh);
        }
        // ---- DMLM representation-generation loss (Eq. 13–14) ------------
        if let Some(teacher) = &teacher_hidden {
            let slot = pt.masked.slot[c];
            if slot < hidden.rows() && slot < teacher.rows() {
                let student_logits = model.head.infer_row(hidden.row(slot));
                let teacher_logits = model.head.infer_row(teacher.row(slot));
                let (dm, mut dstudent) =
                    dmlm_loss(&student_logits, &teacher_logits, config.temperature);
                dmlm_sum += dm;
                for g in &mut dstudent {
                    *g *= w0 * inv;
                }
                let x = Tensor::from_vec(1, d, hidden.row(slot).to_vec());
                let (_, hcache) = model.head.proj.forward(&x);
                let dstudent_t = Tensor::from_vec(1, dstudent.len(), dstudent);
                let dx = model.head.proj.backward(&hcache, &dstudent_t);
                for (g, &v) in d_hidden.row_mut(slot).iter_mut().zip(dx.row(0)) {
                    *g += v;
                }
            }
        }
    }
    if let Some(mask) = &dropout_mask {
        for (g, &m) in d_hidden.data_mut().iter_mut().zip(mask) {
            *g *= m;
        }
    }
    model.encoder.backward(&cache, &d_hidden);
    let ce_mean = ce_sum * inv;
    let dmlm_mean = dmlm_sum * inv;
    if config.use_mask_task {
        // Uncertainty-weight gradients + the regularizer (Eq. 17).
        model.uw.combine(dmlm_mean, ce_mean);
    }
    (ce_mean, dmlm_mean)
}

/// Predict labels for one prepared table (inference path, no gradients).
pub fn predict_table(
    model: &KgLinkModel,
    config: &KgLinkConfig,
    pt: &PreparedTable,
) -> Vec<LabelId> {
    let hidden = model.encoder.infer(&pt.masked.ids);
    (0..pt.labels.len())
        .map(|c| {
            let cls = pt.masked.cls[c];
            if cls >= hidden.rows() {
                return LabelId(0); // truncated column: fall back to class 0
            }
            let fv = if config.use_feature_vector {
                pt.features[c]
                    .as_ref()
                    .map(|fids| model.encoder.infer(fids).row(0).to_vec())
            } else {
                None
            };
            let y_col = model.compose(hidden.row(cls), fv.as_deref());
            let logits = model.classify(&y_col);
            let best = logits
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            LabelId(best as u32)
        })
        .collect()
}

/// Evaluate a model over prepared tables.
pub fn evaluate(model: &KgLinkModel, config: &KgLinkConfig, tables: &[PreparedTable]) -> EvalSummary {
    let mut preds = Vec::new();
    let mut truths = Vec::new();
    for pt in tables {
        preds.extend(predict_table(model, config, pt));
        truths.extend(pt.labels.iter().copied());
    }
    EvalSummary::compute(&preds, &truths)
}

/// Fine-tune `model` on `train` with early stopping on `val` accuracy.
/// Restores the best-epoch weights before returning.
pub fn train(
    model: &mut KgLinkModel,
    config: &KgLinkConfig,
    train_tables: &[PreparedTable],
    val_tables: &[PreparedTable],
) -> TrainReport {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let batch = config.batch_size.max(1);
    let steps_per_epoch = train_tables.len().div_ceil(batch);
    let mut opt = AdamW::new(
        config.optimizer,
        Some(LinearDecay {
            total_steps: steps_per_epoch * config.epochs,
        }),
    );
    let mut report = TrainReport::default();
    let mut best_acc = f64::NEG_INFINITY;
    let mut best_blob: Option<Vec<u8>> = None;
    let mut bad_epochs = 0usize;
    let mut order: Vec<usize> = (0..train_tables.len()).collect();
    for epoch in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        let mut n_tables = 0usize;
        for chunk in order.chunks(batch) {
            for &ti in chunk {
                let (ce, dm) = train_table(model, config, &train_tables[ti], &mut rng);
                let (w0, w1) = if config.use_mask_task {
                    (model.uw.weight(0), model.uw.weight(1))
                } else {
                    (0.0, 1.0)
                };
                epoch_loss += w0 * dm + w1 * ce;
                n_tables += 1;
            }
            model.scale_grads(1.0 / chunk.len() as f32);
            opt.step(model);
        }
        report
            .epoch_loss
            .push(epoch_loss / n_tables.max(1) as f32);
        let acc = if val_tables.is_empty() {
            0.0
        } else {
            evaluate(model, config, val_tables).accuracy
        };
        report.val_accuracy.push(acc);
        report.sigma_trajectory.push(model.uw.log_sigmas());
        // Without a validation split there is no early-stopping signal:
        // train to the end and keep the final weights.
        if !val_tables.is_empty() {
            if acc > best_acc {
                best_acc = acc;
                report.best_epoch = epoch;
                best_blob = Some(save_params(model).to_vec());
                bad_epochs = 0;
            } else {
                bad_epochs += 1;
                if config.patience > 0 && bad_epochs >= config.patience {
                    break;
                }
            }
        } else {
            report.best_epoch = epoch;
        }
    }
    if let Some(blob) = best_blob {
        load_params(model, &blob).expect("restoring own weights cannot fail");
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::Preprocessor;
    use kglink_datagen::{pretrain_corpus, semtab_like, SemTabConfig};
    use kglink_kg::{SyntheticWorld, WorldConfig};
    use kglink_nn::{Tokenizer, Vocab};
    use kglink_search::EntitySearcher;
    use kglink_table::Split;

    fn setup() -> (
        Vec<PreparedTable>,
        Vec<PreparedTable>,
        KgLinkConfig,
        usize,
        usize,
    ) {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(55));
        let bench = semtab_like(&world, &SemTabConfig::tiny(55));
        let searcher = EntitySearcher::build(&world.graph);
        let config = KgLinkConfig::fast_test();
        let pre = Preprocessor::new(&world.graph, &searcher, config.clone());
        let corpus = pretrain_corpus(&world, 1);
        let mut texts: Vec<String> = corpus;
        for (_, name) in bench.dataset.labels.iter() {
            texts.push(name.to_string());
        }
        let vocab = Vocab::build(texts.iter().map(String::as_str), 1, 4000);
        let vocab_size = vocab.len();
        let tokenizer = Tokenizer::new(vocab);
        let process = |split: Split| -> Vec<ProcessedTable> {
            bench
                .dataset
                .tables_in(split)
                .flat_map(|t| pre.process(t))
                .collect()
        };
        let train_pt = process(Split::Train);
        let test_pt = process(Split::Test);
        let train_prep = prepare_tables(&train_pt, &tokenizer, &bench.dataset.labels, &config, true);
        let test_prep = prepare_tables(&test_pt, &tokenizer, &bench.dataset.labels, &config, false);
        let n_labels = bench.dataset.labels.len();
        (train_prep, test_prep, config, vocab_size, n_labels)
    }

    #[test]
    fn training_improves_over_untrained() {
        let (train_prep, test_prep, mut config, vocab_size, n_labels) = setup();
        config.epochs = 12;
        let mut model = KgLinkModel::new(&config, vocab_size, n_labels);
        let before = evaluate(&model, &config, &test_prep);
        let report = train(&mut model, &config, &train_prep, &test_prep);
        let after = evaluate(&model, &config, &test_prep);
        assert_eq!(report.epoch_loss.len(), report.val_accuracy.len());
        assert!(
            after.accuracy > before.accuracy + 0.1,
            "training must help: {} -> {}",
            before.accuracy,
            after.accuracy
        );
        assert!(
            after.accuracy > 1.0 / n_labels as f64,
            "better than random"
        );
    }

    #[test]
    fn sigma_trajectory_is_recorded_and_moves() {
        let (train_prep, test_prep, config, vocab_size, n_labels) = setup();
        let mut model = KgLinkModel::new(&config, vocab_size, n_labels);
        let report = train(&mut model, &config, &train_prep, &test_prep);
        assert!(!report.sigma_trajectory.is_empty());
        let (s0_first, _) = report.sigma_trajectory[0];
        let _ = s0_first;
        // σ params start at 0 and must have been updated.
        let (s0, s1) = model.uw.log_sigmas();
        assert!(s0 != 0.0 || s1 != 0.0, "uncertainty weights should train");
    }

    #[test]
    fn training_without_mask_task_runs() {
        let (train_prep, test_prep, mut config, vocab_size, n_labels) = setup();
        config.use_mask_task = false;
        // Prepared tables carry slots from the masked config; rebuild minimal.
        let train2: Vec<PreparedTable> = train_prep
            .iter()
            .map(|p| PreparedTable {
                gt: None,
                ..p.clone()
            })
            .collect();
        let mut model = KgLinkModel::new(&config, vocab_size, n_labels);
        let report = train(&mut model, &config, &train2, &test_prep);
        assert!(!report.epoch_loss.is_empty());
        // Sigmas untouched without the multi-task loss.
        assert_eq!(model.uw.log_sigmas(), (0.0, 0.0));
    }

    #[test]
    fn dropout_training_still_converges_and_inference_is_deterministic() {
        let (train_prep, test_prep, mut config, vocab_size, n_labels) = setup();
        config.epochs = 12;
        config.dropout = 0.3;
        let mut model = KgLinkModel::new(&config, vocab_size, n_labels);
        let before = evaluate(&model, &config, &test_prep);
        train(&mut model, &config, &train_prep, &test_prep);
        let after = evaluate(&model, &config, &test_prep);
        assert!(after.accuracy > before.accuracy, "{} -> {}", before.accuracy, after.accuracy);
        // Dropout is train-only: two evaluations agree exactly.
        let again = evaluate(&model, &config, &test_prep);
        assert_eq!(after.accuracy, again.accuracy);
    }

    #[test]
    fn prediction_shape_matches_labels() {
        let (train_prep, _, config, vocab_size, n_labels) = setup();
        let model = KgLinkModel::new(&config, vocab_size, n_labels);
        for pt in train_prep.iter().take(3) {
            let preds = predict_table(&model, &config, pt);
            assert_eq!(preds.len(), pt.labels.len());
            for p in preds {
                assert!((p.index()) < n_labels);
            }
        }
    }
}
