//! Part 1, Step 2: entity pruning and the row filter (paper Eq. 3–6).

use crate::config::RowFilter;
use crate::linking::LinkedTable;
use kglink_kg::{EntityId, GraphAccess};
use kglink_table::Table;
use std::collections::HashMap;

/// A candidate entity that survived pruning.
#[derive(Debug, Clone, Copy)]
pub struct PrunedEntity {
    pub entity: EntityId,
    /// BM25 linking score from Step 1.
    pub linking_score: f32,
    /// Overlapping score (Eq. 6): how many times this entity appears in the
    /// one-hop neighborhoods of candidate entities from *other* columns of
    /// the same row. Zero for fallback entities.
    pub overlap_score: u32,
}

/// The pruned candidate set `Ê` of one cell.
#[derive(Debug, Clone, Default)]
pub struct PrunedCell {
    /// Entities of `Ê`, best linking score first.
    pub entities: Vec<PrunedEntity>,
    /// True when the intersection of Eq. 3 was empty and the best raw
    /// candidate was kept instead (overlap score 0). The paper's formulas
    /// leave this case implicit; keeping the best entity preserves the
    /// feature-vector coverage reported in their Table III (SemTab has no
    /// columns without feature-vector information despite imperfect
    /// overlap).
    pub fallback: bool,
}

impl PrunedCell {
    /// Cell linking score (Eq. 4): max over the pruned set.
    pub fn linking_score(&self) -> f32 {
        self.entities
            .iter()
            .map(|e| e.linking_score)
            .fold(0.0, f32::max)
    }

    /// The entity with the best linking score, if any.
    pub fn best_entity(&self) -> Option<PrunedEntity> {
        self.entities
            .iter()
            .copied()
            .max_by(|a, b| a.linking_score.total_cmp(&b.linking_score))
    }
}

/// The output of Step 2: a row-filtered table with pruned candidate sets.
#[derive(Debug, Clone)]
pub struct FilteredTable {
    /// Top-k rows of the original table, in filter order.
    pub table: Table,
    /// `cells[c][r]` aligned with `table`.
    pub cells: Vec<Vec<PrunedCell>>,
    /// Original row indices that were kept, in kept order.
    pub row_order: Vec<usize>,
    /// Row linking scores (Eq. 5) of the kept rows.
    pub row_scores: Vec<f32>,
}

/// Prune candidate entity sets with the one-hop-intersection rule (Eq. 3),
/// compute overlapping scores (Eq. 6), and keep the top-`k` rows by row
/// linking score (Eq. 4–5) — or the first `k` rows when `row_filter` is
/// [`RowFilter::Original`] (the Table V baseline).
pub fn prune_and_filter(
    table: &Table,
    linked: &LinkedTable,
    graph: &dyn GraphAccess,
    k: usize,
    row_filter: RowFilter,
) -> FilteredTable {
    let n_rows = table.n_rows();
    let n_cols = table.n_cols();
    let mut one_hop_cache: HashMap<EntityId, Vec<EntityId>> = HashMap::new();
    let mut hop = |e: EntityId| -> Vec<EntityId> {
        one_hop_cache
            .entry(e)
            .or_insert_with(|| graph.one_hop(e))
            .clone()
    };

    // Prune every cell row by row.
    let mut pruned: Vec<Vec<PrunedCell>> = vec![vec![PrunedCell::default(); n_rows]; n_cols];
    let mut row_scores = vec![0.0f32; n_rows];
    for r in 0..n_rows {
        // Per column: multiset of one-hop neighbors of all candidates.
        let neighbor_counts: Vec<HashMap<EntityId, u32>> = (0..n_cols)
            .map(|c| {
                let mut counts: HashMap<EntityId, u32> = HashMap::new();
                for &(e, _) in &linked.cell(r, c).candidates {
                    for n in hop(e) {
                        *counts.entry(n).or_insert(0) += 1;
                    }
                }
                counts
            })
            .collect();
        for (c1, pruned_col) in pruned.iter_mut().enumerate() {
            let link = linked.cell(r, c1);
            if link.candidates.is_empty() {
                continue;
            }
            let mut kept: Vec<PrunedEntity> = Vec::new();
            for &(e, ls) in &link.candidates {
                // Eq. 3 / Eq. 6: membership count across other columns.
                let os: u32 = (0..n_cols)
                    .filter(|&c2| c2 != c1)
                    .map(|c2| neighbor_counts[c2].get(&e).copied().unwrap_or(0))
                    .sum();
                if os > 0 {
                    kept.push(PrunedEntity {
                        entity: e,
                        linking_score: ls,
                        overlap_score: os,
                    });
                }
            }
            let fallback = kept.is_empty();
            if fallback {
                // Keep the single best raw candidate with zero overlap.
                let &(e, ls) = &link.candidates[0];
                kept.push(PrunedEntity {
                    entity: e,
                    linking_score: ls,
                    overlap_score: 0,
                });
            }
            kept.sort_by(|a, b| b.linking_score.total_cmp(&a.linking_score));
            let cell = PrunedCell {
                entities: kept,
                fallback,
            };
            row_scores[r] += cell.linking_score();
            pruned_col[r] = cell;
        }
    }

    // Row selection.
    let keep = k.min(n_rows).max(usize::from(n_rows > 0));
    let row_order: Vec<usize> = match row_filter {
        RowFilter::LinkScore => {
            let mut idx: Vec<usize> = (0..n_rows).collect();
            // Stable ordering: score descending, then original index.
            idx.sort_by(|&a, &b| {
                row_scores[b]
                    .total_cmp(&row_scores[a])
                    .then(a.cmp(&b))
            });
            idx.truncate(keep);
            idx
        }
        RowFilter::Original => (0..keep.min(n_rows)).collect(),
    };

    let filtered_table = table.select_rows(&row_order);
    let cells: Vec<Vec<PrunedCell>> = (0..n_cols)
        .map(|c| row_order.iter().map(|&r| pruned[c][r].clone()).collect())
        .collect();
    let kept_scores: Vec<f32> = row_order.iter().map(|&r| row_scores[r]).collect();
    FilteredTable {
        table: filtered_table,
        cells,
        row_order,
        row_scores: kept_scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_kg::{Entity, KgBuilder, NeSchema};
    use kglink_search::EntitySearcher;
    use kglink_table::{CellValue, LabelId, TableId};

    /// Build the paper's Figure 5 situation: album "Rust" performed by
    /// "Peter Steele", plus an unrelated city "Rustville" that also matches
    /// the mention "Rust".
    fn figure5() -> (kglink_kg::KnowledgeGraph, Table, EntityId, EntityId) {
        let mut b = KgBuilder::new();
        let musician = b.add_type("Musician", None);
        let album_ty = b.add_type("Album", None);
        let city_ty = b.add_type("City", None);
        let steele = b.add_instance(Entity::new("Peter Steele", NeSchema::Person), musician);
        let rust_album = b.add_instance(Entity::new("Rust", NeSchema::Work), album_ty);
        let _rust_city = b.add_instance(Entity::new("Rust", NeSchema::Place), city_ty);
        let performer = b.predicate("performer");
        b.relate(rust_album, performer, steele);
        let g = b.build();
        let table = Table::new(
            TableId(0),
            vec![],
            vec![
                vec![CellValue::parse("Rust")],
                vec![CellValue::parse("Peter Steele")],
            ],
            vec![LabelId(0), LabelId(1)],
        );
        (g, table, rust_album, steele)
    }

    #[test]
    fn overlap_disambiguates_figure5() {
        let (g, table, rust_album, steele) = figure5();
        let searcher = EntitySearcher::build(&g);
        let linked = LinkedTable::link(&table, &searcher, 10);
        // Both Rust entities are retrieved for the ambiguous mention.
        assert!(linked.cell(0, 0).candidates.len() >= 2);
        let filtered = prune_and_filter(&table, &linked, &g, 10, RowFilter::LinkScore);
        // The album survives pruning with positive overlap (its neighbor
        // Peter Steele is a candidate of column 1); the city falls back out.
        let cell = &filtered.cells[0][0];
        assert!(!cell.fallback);
        assert_eq!(cell.entities.len(), 1);
        assert_eq!(cell.entities[0].entity, rust_album);
        assert!(cell.entities[0].overlap_score > 0);
        // Symmetric for Peter Steele.
        let cell1 = &filtered.cells[1][0];
        assert!(cell1.entities.iter().any(|e| e.entity == steele && e.overlap_score > 0));
    }

    #[test]
    fn fallback_keeps_best_raw_candidate() {
        let mut b = KgBuilder::new();
        let city_ty = b.add_type("City", None);
        b.add_instance(Entity::new("Springfield", NeSchema::Place), city_ty);
        let g = b.build();
        // Single linkable column: no other column to overlap with.
        let table = Table::new(
            TableId(0),
            vec![],
            vec![vec![CellValue::parse("Springfield")]],
            vec![LabelId(0)],
        );
        let searcher = EntitySearcher::build(&g);
        let linked = LinkedTable::link(&table, &searcher, 10);
        let filtered = prune_and_filter(&table, &linked, &g, 5, RowFilter::LinkScore);
        let cell = &filtered.cells[0][0];
        assert!(cell.fallback);
        assert_eq!(cell.entities.len(), 1);
        assert_eq!(cell.entities[0].overlap_score, 0);
        assert!(cell.linking_score() > 0.0);
    }

    #[test]
    fn top_k_keeps_best_rows() {
        let mut b = KgBuilder::new();
        let city_ty = b.add_type("City", None);
        let country_ty = b.add_type("Country", None);
        let norland = b.add_instance(Entity::new("Norland", NeSchema::Place), country_ty);
        let spring = b.add_instance(Entity::new("Springfield", NeSchema::Place), city_ty);
        let located = b.predicate("country");
        b.relate(spring, located, norland);
        let g = b.build();
        let table = Table::new(
            TableId(0),
            vec![],
            vec![
                vec![
                    CellValue::parse("Nowhere Qqq"),
                    CellValue::parse("Springfield"),
                ],
                vec![CellValue::parse("Zzz Yyy"), CellValue::parse("Norland")],
            ],
            vec![LabelId(0), LabelId(1)],
        );
        let searcher = EntitySearcher::build(&g);
        let linked = LinkedTable::link(&table, &searcher, 10);
        let filtered = prune_and_filter(&table, &linked, &g, 1, RowFilter::LinkScore);
        assert_eq!(filtered.table.n_rows(), 1);
        // Row 1 (Springfield/Norland) links; row 0 does not — row 1 wins.
        assert_eq!(filtered.row_order, vec![1]);
        assert!(filtered.row_scores[0] > 0.0);
        // The filtered table's cells moved accordingly.
        assert_eq!(
            filtered.table.cell(0, 0),
            &CellValue::Text("Springfield".into())
        );
    }

    #[test]
    fn original_filter_preserves_order() {
        let (g, table, ..) = figure5();
        let searcher = EntitySearcher::build(&g);
        let linked = LinkedTable::link(&table, &searcher, 10);
        let filtered = prune_and_filter(&table, &linked, &g, 1, RowFilter::Original);
        assert_eq!(filtered.row_order, vec![0]);
    }

    #[test]
    fn k_larger_than_rows_keeps_all() {
        let (g, table, ..) = figure5();
        let searcher = EntitySearcher::build(&g);
        let linked = LinkedTable::link(&table, &searcher, 10);
        let filtered = prune_and_filter(&table, &linked, &g, 100, RowFilter::LinkScore);
        assert_eq!(filtered.table.n_rows(), table.n_rows());
    }
}
