//! Part 2 model: encoder + vocabulary projection + classifier + composition.

use crate::config::KgLinkConfig;
use kglink_nn::layers::linear::Linear;
use kglink_nn::layers::param::{HasParams, Param};
use kglink_nn::{Encoder, MlmHead, Tensor, UncertaintyWeights};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The KGLink network.
///
/// * `encoder` — the shared PLM (MiniLM here, BERT in the paper);
/// * `head` — `W_o`, the hidden→vocabulary projection used by the DMLM
///   column-type representation generation task (Eq. 14);
/// * `classifier` — the hidden→label projection for the annotation task;
/// * `feature_proj` — the composition function `φ` (Eq. 15), implemented
///   as `Y_col = Y_cls + W_f · Y_fv` with `φ` collapsing to identity when
///   a column has no feature vector;
/// * `uw` — the trainable uncertainty weights of the combined loss (Eq. 17).
pub struct KgLinkModel {
    pub encoder: Encoder,
    pub head: MlmHead,
    pub classifier: Linear,
    pub feature_proj: Linear,
    pub uw: UncertaintyWeights,
    /// Whether the uncertainty weights are pinned (Figure 8(a) sweeps).
    pub fixed_sigmas: bool,
}

impl KgLinkModel {
    /// Build a model for `n_labels` classes on a `vocab_size` vocabulary.
    pub fn new(config: &KgLinkConfig, vocab_size: usize, n_labels: usize) -> Self {
        let enc_cfg = config.encoder_config(vocab_size);
        let encoder = Encoder::new(enc_cfg);
        let d = encoder.d_model();
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xbeef);
        let classifier = Linear::new(d, n_labels, &mut rng);
        let feature_proj = Linear::new(d, d, &mut rng);
        let head = MlmHead::new(d, vocab_size, config.seed ^ 0xcafe);
        let uw = match config.fixed_log_sigmas {
            Some((s0, s1)) => UncertaintyWeights::fixed(s0, s1),
            None => UncertaintyWeights::new(0.0),
        };
        KgLinkModel {
            encoder,
            head,
            classifier,
            feature_proj,
            uw,
            fixed_sigmas: config.fixed_log_sigmas.is_some(),
        }
    }

    /// Compose a column representation from its `[CLS]` encoding and an
    /// optional feature vector (inference path).
    pub fn compose(&self, y_cls: &[f32], y_fv: Option<&[f32]>) -> Tensor {
        let d = y_cls.len();
        let mut y = Tensor::from_vec(1, d, y_cls.to_vec());
        if let Some(fv) = y_fv {
            let fv_t = Tensor::from_vec(1, d, fv.to_vec());
            y.add_assign(&self.feature_proj.infer(&fv_t));
        }
        y
    }

    /// Class logits for a composed column representation.
    pub fn classify(&self, y_col: &Tensor) -> Vec<f32> {
        self.classifier.infer(y_col).data().to_vec()
    }

    /// Number of classes.
    pub fn n_labels(&self) -> usize {
        self.classifier.d_out()
    }
}

impl HasParams for KgLinkModel {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.encoder.visit_params(f);
        self.head.visit_params(f);
        self.classifier.visit_params(f);
        self.feature_proj.visit_params(f);
        if !self.fixed_sigmas {
            self.uw.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> KgLinkModel {
        let mut cfg = KgLinkConfig::fast_test();
        cfg.seed = 7;
        KgLinkModel::new(&cfg, 64, 5)
    }

    #[test]
    fn shapes_are_consistent() {
        let m = model();
        assert_eq!(m.n_labels(), 5);
        let d = m.encoder.d_model();
        let y = m.compose(&vec![0.1; d], None);
        assert_eq!(y.shape(), (1, d));
        assert_eq!(m.classify(&y).len(), 5);
    }

    #[test]
    fn composition_without_feature_is_identity() {
        let m = model();
        let d = m.encoder.d_model();
        let cls = vec![0.3f32; d];
        let y = m.compose(&cls, None);
        assert_eq!(y.data(), &cls[..]);
    }

    #[test]
    fn composition_with_feature_changes_representation() {
        let m = model();
        let d = m.encoder.d_model();
        let cls = vec![0.3f32; d];
        let fv = vec![1.0f32; d];
        let with = m.compose(&cls, Some(&fv));
        let without = m.compose(&cls, None);
        assert_ne!(with.data(), without.data());
    }

    #[test]
    fn fixed_sigmas_are_excluded_from_optimization() {
        let mut cfg = KgLinkConfig::fast_test();
        let mut trainable = KgLinkModel::new(&cfg, 64, 3);
        cfg.fixed_log_sigmas = Some((0.5, 1.0));
        let mut pinned = KgLinkModel::new(&cfg, 64, 3);
        assert_eq!(trainable.param_count(), pinned.param_count() + 2);
    }
}
