//! Part 1 orchestration: linking → filtering → candidate types → features.
//!
//! Retrieval runs through the fallible [`KgBackend`] trait. Columns whose
//! retrieval failed are *degraded*: every candidate is dropped and the
//! column takes the same no-linkage path as a column the KG simply knows
//! nothing about (paper Table IV) — `[MASK]`-only serialization, numeric
//! statistics when applicable, no candidate types, no feature vector.

use crate::candidates::{candidate_types, CandidateType};
use crate::config::KgLinkConfig;
use crate::error::KgLinkError;
use crate::feature::feature_sequences;
use crate::filter::prune_and_filter;
use crate::linking::LinkedTable;
use kglink_kg::GraphAccess;
use kglink_obs::Tracer;
use kglink_search::{Deadline, KgBackend};
use kglink_table::table::NumericStats;
use kglink_table::{LabelId, Table};

/// The fully preprocessed form of one (column-chunk of a) table, ready for
/// Part 2 serialization.
#[derive(Debug, Clone)]
pub struct ProcessedTable {
    /// Row-filtered table (top-k rows in filter order, ≤ max_columns cols).
    pub table: Table,
    /// Per column: candidate type labels, best first (empty when the KG
    /// yielded nothing — the serializer emits padding instead).
    pub candidate_type_names: Vec<Vec<String>>,
    /// Per column: scored candidate type entities (for analysis).
    pub candidate_type_entities: Vec<Vec<CandidateType>>,
    /// Per column: numeric statistics when the column is numeric (these
    /// replace candidate types in the serialization, per the paper).
    pub numeric_stats: Vec<Option<NumericStats>>,
    /// Per column: feature sequence `S(e)`, or `None` (padding).
    pub feature_seqs: Vec<Option<String>>,
    /// Per column: whether any cell linked to the KG.
    pub has_linkage: Vec<bool>,
    /// Per column: true when KG retrieval failed for at least one cell and
    /// the whole column was degraded to the no-linkage path.
    pub degraded: Vec<bool>,
    /// Cells of this chunk whose retrieval was attempted but failed.
    pub failed_cells: usize,
    /// Ground-truth labels (copied from the table for convenience).
    pub labels: Vec<LabelId>,
}

impl ProcessedTable {
    /// Whether column `c` is numeric (Table III definition).
    pub fn is_numeric_column(&self, c: usize) -> bool {
        self.numeric_stats[c].is_some() && self.table.is_numeric_column(c)
    }

    /// Number of degraded columns in this chunk.
    pub fn degraded_columns(&self) -> usize {
        self.degraded.iter().filter(|&&d| d).count()
    }
}

/// Runs Part 1 for tables against a fixed KG + retrieval backend.
pub struct Preprocessor<'a> {
    pub graph: &'a (dyn GraphAccess + 'a),
    pub backend: &'a (dyn KgBackend + 'a),
    pub config: KgLinkConfig,
    /// Observability sink for the `retrieval` / `filter` / `feature` stage
    /// spans and `degrade.column` events; disabled by default.
    pub tracer: Tracer,
}

impl<'a> Preprocessor<'a> {
    pub fn new(
        graph: &'a (dyn GraphAccess + 'a),
        backend: &'a (dyn KgBackend + 'a),
        config: KgLinkConfig,
    ) -> Self {
        Preprocessor {
            graph,
            backend,
            config,
            tracer: Tracer::disabled(),
        }
    }

    /// Attach a tracer to every table this preprocessor handles.
    pub fn with_tracer(mut self, tracer: &Tracer) -> Self {
        self.tracer = tracer.clone();
        self
    }

    /// Process one table. Tables wider than `max_columns` are split into
    /// chunks (the paper: ">8 columns … divide it into multiple tables"),
    /// each processed independently.
    ///
    /// Degenerate inputs (zero-column tables) are *skipped* — the result is
    /// empty rather than a panic. Use [`try_process`](Self::try_process) to
    /// observe the error.
    pub fn process(&self, table: &Table) -> Vec<ProcessedTable> {
        self.try_process(table).unwrap_or_default()
    }

    /// [`process`](Self::process) with typed errors: a zero-column table is
    /// [`KgLinkError::DegenerateTable`], a zero `max_columns` configuration
    /// is [`KgLinkError::InvalidConfig`].
    pub fn try_process(&self, table: &Table) -> Result<Vec<ProcessedTable>, KgLinkError> {
        if self.config.max_columns == 0 {
            return Err(KgLinkError::invalid_config("max_columns must be positive"));
        }
        if table.n_cols() == 0 {
            return Err(KgLinkError::degenerate(table.id, "table has no columns"));
        }
        Ok(table
            .split_columns(self.config.max_columns)
            .into_iter()
            .map(|chunk| {
                preprocess_table_traced(&chunk, self.graph, self.backend, &self.config, &self.tracer)
            })
            .collect())
    }
}

/// Run Part 1 on a single (≤ max_columns) table.
///
/// Retrieval failures never propagate from here: a column with any failed
/// cell is degraded to the no-linkage path and reported through
/// [`ProcessedTable::degraded`] / [`ProcessedTable::failed_cells`].
pub fn preprocess_table(
    table: &Table,
    graph: &dyn GraphAccess,
    backend: &dyn KgBackend,
    config: &KgLinkConfig,
) -> ProcessedTable {
    preprocess_table_traced(table, graph, backend, config, &Tracer::disabled())
}

/// [`preprocess_table`] with stage spans: `retrieval` covers linking and
/// degradation, `filter` the row filter, `feature` candidate types, feature
/// sequences, and assembly. Every degraded column emits a `degrade.column`
/// event while the `retrieval` span is open, so event order is causal.
pub fn preprocess_table_traced(
    table: &Table,
    graph: &dyn GraphAccess,
    backend: &dyn KgBackend,
    config: &KgLinkConfig,
    tracer: &Tracer,
) -> ProcessedTable {
    let deadline = Deadline::from_us(config.retrieval_deadline_us);
    let (linked, failed_cells, degraded) = {
        let _retrieval = tracer.span("retrieval");
        let mut linked = LinkedTable::link_with_deadline(
            table,
            backend,
            config.max_entities_per_mention,
            deadline,
        );
        let failed_cells = linked.failed_cells();
        let degraded: Vec<bool> = (0..table.n_cols())
            .map(|c| linked.column_failed(c))
            .collect();
        for (c, &was_degraded) in degraded.iter().enumerate() {
            if was_degraded {
                // Full-column degradation: a partially linked column would make
                // results depend on *which* cells happened to fail; clearing all
                // candidates reproduces the deterministic no-linkage path.
                linked.degrade_column(c);
                tracer.event_with(
                    "degrade.column",
                    vec![
                        ("table", table.id.0.to_string()),
                        ("column", c.to_string()),
                    ],
                );
            }
        }
        (linked, failed_cells, degraded)
    };
    let filtered = {
        let _filter = tracer.span("filter");
        prune_and_filter(table, &linked, graph, config.top_k_rows, config.row_filter)
    };
    let _feature = tracer.span("feature");
    let cts = candidate_types(&filtered, graph, config.max_candidate_types);
    let feats = feature_sequences(&filtered, graph);
    let n_cols = filtered.table.n_cols();
    let numeric_stats: Vec<Option<NumericStats>> = (0..n_cols)
        .map(|c| {
            if filtered.table.is_numeric_column(c) {
                filtered.table.numeric_stats(c)
            } else {
                None
            }
        })
        .collect();
    let has_linkage: Vec<bool> = (0..n_cols)
        .map(|c| filtered.cells[c].iter().any(|cell| !cell.entities.is_empty()))
        .collect();
    let candidate_type_names: Vec<Vec<String>> = cts
        .iter()
        .map(|col| {
            col.iter()
                .map(|ct| graph.label(ct.entity))
                .collect()
        })
        .collect();
    let labels = filtered.table.labels.clone();
    ProcessedTable {
        table: filtered.table,
        candidate_type_names,
        candidate_type_entities: cts,
        numeric_stats,
        feature_seqs: feats,
        has_linkage,
        degraded,
        failed_cells,
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_datagen::{semtab_like, SemTabConfig};
    use kglink_kg::{SyntheticWorld, WorldConfig};
    use kglink_search::{EntitySearcher, FaultConfig, FaultyBackend};
    use kglink_table::{CellValue, TableId};

    #[test]
    fn preprocess_semtab_like_tables_end_to_end() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(21));
        let bench = semtab_like(&world, &SemTabConfig::tiny(21));
        let searcher = EntitySearcher::build(&world.graph);
        let pre = Preprocessor::new(&world.graph, &searcher, KgLinkConfig::fast_test());
        let mut with_ct = 0usize;
        let mut with_fv = 0usize;
        let mut total = 0usize;
        for table in bench.dataset.tables.iter().take(10) {
            for pt in pre.process(table) {
                assert!(pt.table.n_rows() <= pre.config.top_k_rows);
                assert_eq!(pt.candidate_type_names.len(), pt.table.n_cols());
                assert_eq!(pt.feature_seqs.len(), pt.table.n_cols());
                assert_eq!(pt.degraded.len(), pt.table.n_cols());
                assert_eq!(pt.failed_cells, 0, "healthy backend never fails");
                for c in 0..pt.table.n_cols() {
                    total += 1;
                    if !pt.candidate_type_names[c].is_empty() {
                        with_ct += 1;
                    }
                    if pt.feature_seqs[c].is_some() {
                        with_fv += 1;
                    }
                    assert!(pt.candidate_type_names[c].len() <= pre.config.max_candidate_types);
                    // SemTab-like has no numeric columns.
                    assert!(pt.numeric_stats[c].is_none());
                    assert!(!pt.degraded[c]);
                }
            }
        }
        assert!(total > 0);
        // SemTab-like is KG-derived: most columns have KG information.
        assert!(
            with_fv * 10 >= total * 9,
            "feature vectors should cover nearly all columns: {with_fv}/{total}"
        );
        assert!(
            with_ct * 2 >= total,
            "candidate types should cover most columns: {with_ct}/{total}"
        );
    }

    #[test]
    fn wide_tables_are_split() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(22));
        let searcher = EntitySearcher::build(&world.graph);
        let mut cfg = KgLinkConfig::fast_test();
        cfg.max_columns = 2;
        let pre = Preprocessor::new(&world.graph, &searcher, cfg);
        // Build the wide table directly instead of hoping the generator
        // produced one (a degenerate dataset used to panic here).
        let wide = Table::new(
            TableId(900),
            vec![],
            (0..5)
                .map(|c| vec![CellValue::parse(&format!("cell {c}"))])
                .collect(),
            (0..5u32).map(LabelId).collect(),
        );
        let parts = pre.process(&wide);
        assert!(parts.len() >= 2);
        let total_cols: usize = parts.iter().map(|p| p.table.n_cols()).sum();
        assert_eq!(total_cols, wide.n_cols());
    }

    #[test]
    fn zero_column_table_is_a_typed_error_not_a_panic() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(23));
        let searcher = EntitySearcher::build(&world.graph);
        let pre = Preprocessor::new(&world.graph, &searcher, KgLinkConfig::fast_test());
        let empty = Table::new(TableId(901), vec![], vec![], vec![]);
        match pre.try_process(&empty) {
            Err(KgLinkError::DegenerateTable { table, .. }) => assert_eq!(table, TableId(901)),
            other => panic!("expected DegenerateTable, got {other:?}"),
        }
        // The infallible path skips instead of panicking.
        assert!(pre.process(&empty).is_empty());
    }

    #[test]
    fn zero_max_columns_is_an_invalid_config_error() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(24));
        let searcher = EntitySearcher::build(&world.graph);
        let mut cfg = KgLinkConfig::fast_test();
        cfg.max_columns = 0;
        let pre = Preprocessor::new(&world.graph, &searcher, cfg);
        let bench = semtab_like(&world, &SemTabConfig::tiny(24));
        let table = &bench.dataset.tables[0];
        assert!(matches!(
            pre.try_process(table),
            Err(KgLinkError::InvalidConfig { .. })
        ));
        assert!(pre.process(table).is_empty());
    }

    #[test]
    fn full_outage_degrades_every_linkable_column() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(25));
        let bench = semtab_like(&world, &SemTabConfig::tiny(25));
        let searcher = EntitySearcher::build(&world.graph);
        let dead = FaultyBackend::new(&searcher, FaultConfig::with_fault_rate(7, 1.0));
        let pre = Preprocessor::new(&world.graph, &dead, KgLinkConfig::fast_test());
        let healthy_pre =
            Preprocessor::new(&world.graph, &searcher, KgLinkConfig::fast_test());
        let mut degraded_cols = 0usize;
        let mut failed = 0usize;
        for table in bench.dataset.tables.iter().take(5) {
            for pt in pre.process(table) {
                degraded_cols += pt.degraded_columns();
                failed += pt.failed_cells;
                for c in 0..pt.table.n_cols() {
                    // Degraded columns carry zero KG information — exactly
                    // the no-linkage serialization path.
                    if pt.degraded[c] {
                        assert!(!pt.has_linkage[c]);
                        assert!(pt.candidate_type_names[c].is_empty());
                        assert!(pt.feature_seqs[c].is_none());
                    }
                }
            }
            // Every column the healthy run links must be degraded here.
            for (pt_dead, pt_ok) in pre.process(table).iter().zip(healthy_pre.process(table)) {
                for c in 0..pt_ok.table.n_cols() {
                    if pt_ok.has_linkage[c] {
                        assert!(pt_dead.degraded[c]);
                    }
                }
            }
        }
        assert!(degraded_cols > 0, "SemTab-like tables have linkable columns");
        assert!(failed > 0);
    }
}
