//! Part 1 orchestration: linking → filtering → candidate types → features.

use crate::candidates::{candidate_types, CandidateType};
use crate::config::KgLinkConfig;
use crate::feature::feature_sequences;
use crate::filter::prune_and_filter;
use crate::linking::LinkedTable;
use kglink_kg::KnowledgeGraph;
use kglink_search::EntitySearcher;
use kglink_table::table::NumericStats;
use kglink_table::{LabelId, Table};

/// The fully preprocessed form of one (column-chunk of a) table, ready for
/// Part 2 serialization.
#[derive(Debug, Clone)]
pub struct ProcessedTable {
    /// Row-filtered table (top-k rows in filter order, ≤ max_columns cols).
    pub table: Table,
    /// Per column: candidate type labels, best first (empty when the KG
    /// yielded nothing — the serializer emits padding instead).
    pub candidate_type_names: Vec<Vec<String>>,
    /// Per column: scored candidate type entities (for analysis).
    pub candidate_type_entities: Vec<Vec<CandidateType>>,
    /// Per column: numeric statistics when the column is numeric (these
    /// replace candidate types in the serialization, per the paper).
    pub numeric_stats: Vec<Option<NumericStats>>,
    /// Per column: feature sequence `S(e)`, or `None` (padding).
    pub feature_seqs: Vec<Option<String>>,
    /// Per column: whether any cell linked to the KG.
    pub has_linkage: Vec<bool>,
    /// Ground-truth labels (copied from the table for convenience).
    pub labels: Vec<LabelId>,
}

impl ProcessedTable {
    /// Whether column `c` is numeric (Table III definition).
    pub fn is_numeric_column(&self, c: usize) -> bool {
        self.numeric_stats[c].is_some() && self.table.is_numeric_column(c)
    }
}

/// Runs Part 1 for tables against a fixed KG + search index.
pub struct Preprocessor<'a> {
    pub graph: &'a KnowledgeGraph,
    pub searcher: &'a EntitySearcher,
    pub config: KgLinkConfig,
}

impl<'a> Preprocessor<'a> {
    pub fn new(graph: &'a KnowledgeGraph, searcher: &'a EntitySearcher, config: KgLinkConfig) -> Self {
        Preprocessor {
            graph,
            searcher,
            config,
        }
    }

    /// Process one table. Tables wider than `max_columns` are split into
    /// chunks (the paper: ">8 columns … divide it into multiple tables"),
    /// each processed independently.
    pub fn process(&self, table: &Table) -> Vec<ProcessedTable> {
        table
            .split_columns(self.config.max_columns)
            .into_iter()
            .map(|chunk| preprocess_table(&chunk, self.graph, self.searcher, &self.config))
            .collect()
    }
}

/// Run Part 1 on a single (≤ max_columns) table.
pub fn preprocess_table(
    table: &Table,
    graph: &KnowledgeGraph,
    searcher: &EntitySearcher,
    config: &KgLinkConfig,
) -> ProcessedTable {
    let linked = LinkedTable::link(table, searcher, config.max_entities_per_mention);
    let filtered = prune_and_filter(table, &linked, graph, config.top_k_rows, config.row_filter);
    let cts = candidate_types(&filtered, graph, config.max_candidate_types);
    let feats = feature_sequences(&filtered, graph);
    let n_cols = filtered.table.n_cols();
    let numeric_stats: Vec<Option<NumericStats>> = (0..n_cols)
        .map(|c| {
            if filtered.table.is_numeric_column(c) {
                filtered.table.numeric_stats(c)
            } else {
                None
            }
        })
        .collect();
    let has_linkage: Vec<bool> = (0..n_cols)
        .map(|c| filtered.cells[c].iter().any(|cell| !cell.entities.is_empty()))
        .collect();
    let candidate_type_names: Vec<Vec<String>> = cts
        .iter()
        .map(|col| {
            col.iter()
                .map(|ct| graph.label(ct.entity).to_string())
                .collect()
        })
        .collect();
    let labels = filtered.table.labels.clone();
    ProcessedTable {
        table: filtered.table,
        candidate_type_names,
        candidate_type_entities: cts,
        numeric_stats,
        feature_seqs: feats,
        has_linkage,
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_datagen::{semtab_like, SemTabConfig};
    use kglink_kg::{SyntheticWorld, WorldConfig};

    #[test]
    fn preprocess_semtab_like_tables_end_to_end() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(21));
        let bench = semtab_like(&world, &SemTabConfig::tiny(21));
        let searcher = EntitySearcher::build(&world.graph);
        let pre = Preprocessor::new(&world.graph, &searcher, KgLinkConfig::fast_test());
        let mut with_ct = 0usize;
        let mut with_fv = 0usize;
        let mut total = 0usize;
        for table in bench.dataset.tables.iter().take(10) {
            for pt in pre.process(table) {
                assert!(pt.table.n_rows() <= pre.config.top_k_rows);
                assert_eq!(pt.candidate_type_names.len(), pt.table.n_cols());
                assert_eq!(pt.feature_seqs.len(), pt.table.n_cols());
                for c in 0..pt.table.n_cols() {
                    total += 1;
                    if !pt.candidate_type_names[c].is_empty() {
                        with_ct += 1;
                    }
                    if pt.feature_seqs[c].is_some() {
                        with_fv += 1;
                    }
                    assert!(pt.candidate_type_names[c].len() <= pre.config.max_candidate_types);
                    // SemTab-like has no numeric columns.
                    assert!(pt.numeric_stats[c].is_none());
                }
            }
        }
        assert!(total > 0);
        // SemTab-like is KG-derived: most columns have KG information.
        assert!(
            with_fv * 10 >= total * 9,
            "feature vectors should cover nearly all columns: {with_fv}/{total}"
        );
        assert!(
            with_ct * 2 >= total,
            "candidate types should cover most columns: {with_ct}/{total}"
        );
    }

    #[test]
    fn wide_tables_are_split() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(22));
        let searcher = EntitySearcher::build(&world.graph);
        let mut cfg = KgLinkConfig::fast_test();
        cfg.max_columns = 2;
        let pre = Preprocessor::new(&world.graph, &searcher, cfg);
        let bench = semtab_like(&world, &SemTabConfig::tiny(22));
        let wide = bench
            .dataset
            .tables
            .iter()
            .find(|t| t.n_cols() >= 3)
            .expect("some table has 3+ columns");
        let parts = pre.process(wide);
        assert!(parts.len() >= 2);
        let total_cols: usize = parts.iter().map(|p| p.table.n_cols()).sum();
        assert_eq!(total_cols, wide.n_cols());
    }
}
