//! Linkage statistics (paper Table III).

use crate::preprocess::ProcessedTable;
use serde::{Deserialize, Serialize};

/// The linkage class of a column, per the paper's Table III taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkageClass {
    /// All cells numeric/date — never linked to the KG.
    Numeric,
    /// Non-numeric, but zero KG linkage: no feature vector possible
    /// ("Non-numeric columns w/o fv").
    NoKgInfo,
    /// Non-numeric with some linkage but no candidate types survived
    /// ("Non-numeric columns w/o ct").
    NoCandidateTypes,
    /// Non-numeric with candidate types.
    Full,
}

/// Aggregate linkage statistics over a dataset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkStatistics {
    pub numeric_columns: usize,
    /// Non-numeric columns with no KG information at all (w/o fv).
    pub non_numeric_without_fv: usize,
    /// Non-numeric columns with no candidate type (w/o ct) — includes the
    /// w/o fv columns, matching the paper's nesting.
    pub non_numeric_without_ct: usize,
    pub total_columns: usize,
}

impl LinkStatistics {
    /// Classify one column of a processed table.
    pub fn classify(pt: &ProcessedTable, c: usize) -> LinkageClass {
        if pt.is_numeric_column(c) {
            LinkageClass::Numeric
        } else if !pt.has_linkage[c] {
            LinkageClass::NoKgInfo
        } else if pt.candidate_type_names[c].is_empty() {
            LinkageClass::NoCandidateTypes
        } else {
            LinkageClass::Full
        }
    }

    /// Accumulate statistics over processed tables.
    pub fn compute<'a, I: IntoIterator<Item = &'a ProcessedTable>>(tables: I) -> Self {
        let mut s = LinkStatistics::default();
        for pt in tables {
            for c in 0..pt.table.n_cols() {
                s.total_columns += 1;
                match Self::classify(pt, c) {
                    LinkageClass::Numeric => s.numeric_columns += 1,
                    LinkageClass::NoKgInfo => {
                        s.non_numeric_without_fv += 1;
                        s.non_numeric_without_ct += 1;
                    }
                    LinkageClass::NoCandidateTypes => s.non_numeric_without_ct += 1,
                    LinkageClass::Full => {}
                }
            }
        }
        s
    }

    /// Percentage helper.
    pub fn pct(&self, count: usize) -> f64 {
        if self.total_columns == 0 {
            0.0
        } else {
            100.0 * count as f64 / self.total_columns as f64
        }
    }
}

impl std::fmt::Display for LinkStatistics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Numeric columns:               {:>6} ({:.1}%)",
            self.numeric_columns,
            self.pct(self.numeric_columns)
        )?;
        writeln!(
            f,
            "Non-numeric columns w/o fv:    {:>6} ({:.1}%)",
            self.non_numeric_without_fv,
            self.pct(self.non_numeric_without_fv)
        )?;
        writeln!(
            f,
            "Non-numeric columns w/o ct:    {:>6} ({:.1}%)",
            self.non_numeric_without_ct,
            self.pct(self.non_numeric_without_ct)
        )?;
        write!(f, "Total columns:                 {:>6} (100%)", self.total_columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KgLinkConfig;
    use crate::preprocess::Preprocessor;
    use kglink_datagen::{viznet_like, VizNetConfig};
    use kglink_kg::{SyntheticWorld, WorldConfig};
    use kglink_search::EntitySearcher;

    #[test]
    fn viznet_like_statistics_have_the_papers_shape() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(31));
        let bench = viznet_like(&world, &VizNetConfig::tiny(31));
        let searcher = EntitySearcher::build(&world.graph);
        let pre = Preprocessor::new(&world.graph, &searcher, KgLinkConfig::fast_test());
        let processed: Vec<_> = bench
            .dataset
            .tables
            .iter()
            .flat_map(|t| pre.process(t))
            .collect();
        let stats = LinkStatistics::compute(&processed);
        assert!(stats.total_columns > 0);
        assert!(stats.numeric_columns > 0, "VizNet-like has numeric columns");
        assert!(
            stats.non_numeric_without_fv > 0,
            "address/code columns lack KG info"
        );
        assert!(
            stats.non_numeric_without_ct >= stats.non_numeric_without_fv,
            "w/o ct nests w/o fv"
        );
        assert!(stats.numeric_columns + stats.non_numeric_without_ct <= stats.total_columns);
    }

    #[test]
    fn display_renders_percentages() {
        let s = LinkStatistics {
            numeric_columns: 1,
            non_numeric_without_fv: 2,
            non_numeric_without_ct: 3,
            total_columns: 10,
        };
        let text = s.to_string();
        assert!(text.contains("10.0%"));
        assert!(text.contains("30.0%"));
        assert_eq!(s.pct(5), 50.0);
    }

    #[test]
    fn empty_stats() {
        let s = LinkStatistics::default();
        assert_eq!(s.pct(0), 0.0);
    }
}
