//! Linkage statistics (paper Table III) and retrieval degradation
//! accounting for the resilience layer.

use crate::preprocess::ProcessedTable;
use kglink_search::MetricsSnapshot;
use serde::{Deserialize, Serialize};

/// The linkage class of a column, per the paper's Table III taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkageClass {
    /// All cells numeric/date — never linked to the KG.
    Numeric,
    /// Non-numeric, but zero KG linkage: no feature vector possible
    /// ("Non-numeric columns w/o fv").
    NoKgInfo,
    /// Non-numeric with some linkage but no candidate types survived
    /// ("Non-numeric columns w/o ct").
    NoCandidateTypes,
    /// Non-numeric with candidate types.
    Full,
}

/// Aggregate linkage statistics over a dataset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkStatistics {
    pub numeric_columns: usize,
    /// Non-numeric columns with no KG information at all (w/o fv).
    pub non_numeric_without_fv: usize,
    /// Non-numeric columns with no candidate type (w/o ct) — includes the
    /// w/o fv columns, matching the paper's nesting.
    pub non_numeric_without_ct: usize,
    pub total_columns: usize,
}

impl LinkStatistics {
    /// Classify one column of a processed table.
    pub fn classify(pt: &ProcessedTable, c: usize) -> LinkageClass {
        if pt.is_numeric_column(c) {
            LinkageClass::Numeric
        } else if !pt.has_linkage[c] {
            LinkageClass::NoKgInfo
        } else if pt.candidate_type_names[c].is_empty() {
            LinkageClass::NoCandidateTypes
        } else {
            LinkageClass::Full
        }
    }

    /// Accumulate statistics over processed tables.
    pub fn compute<'a, I: IntoIterator<Item = &'a ProcessedTable>>(tables: I) -> Self {
        let mut s = LinkStatistics::default();
        for pt in tables {
            for c in 0..pt.table.n_cols() {
                s.total_columns += 1;
                match Self::classify(pt, c) {
                    LinkageClass::Numeric => s.numeric_columns += 1,
                    LinkageClass::NoKgInfo => {
                        s.non_numeric_without_fv += 1;
                        s.non_numeric_without_ct += 1;
                    }
                    LinkageClass::NoCandidateTypes => s.non_numeric_without_ct += 1,
                    LinkageClass::Full => {}
                }
            }
        }
        s
    }

    /// Percentage helper.
    pub fn pct(&self, count: usize) -> f64 {
        if self.total_columns == 0 {
            0.0
        } else {
            100.0 * count as f64 / self.total_columns as f64
        }
    }
}

impl std::fmt::Display for LinkStatistics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Numeric columns:               {:>6} ({:.1}%)",
            self.numeric_columns,
            self.pct(self.numeric_columns)
        )?;
        writeln!(
            f,
            "Non-numeric columns w/o fv:    {:>6} ({:.1}%)",
            self.non_numeric_without_fv,
            self.pct(self.non_numeric_without_fv)
        )?;
        writeln!(
            f,
            "Non-numeric columns w/o ct:    {:>6} ({:.1}%)",
            self.non_numeric_without_ct,
            self.pct(self.non_numeric_without_ct)
        )?;
        write!(f, "Total columns:                 {:>6} (100%)", self.total_columns)
    }
}

/// How much of a preprocessing pass ran in degraded (no-KG) mode, plus the
/// retrieval-layer counters when the backend exposes them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DegradationStats {
    /// Columns seen across all processed chunks.
    pub total_columns: usize,
    /// Columns degraded to the no-linkage path by retrieval failures.
    pub degraded_columns: usize,
    /// Cells whose retrieval was attempted but failed.
    pub failed_cells: usize,
    /// Retry attempts made by the resilient decorator (0 without one).
    pub retries: u64,
    /// Circuit-breaker trips (0 without one).
    pub breaker_trips: u64,
    /// Queries rejected outright by an open breaker (0 without one).
    pub breaker_rejections: u64,
    /// p50 simulated latency of successful retrievals, microseconds.
    pub retrieval_p50_us: u64,
    /// p99 simulated latency of successful retrievals, microseconds.
    pub retrieval_p99_us: u64,
}

impl DegradationStats {
    /// Column/cell accounting from processed tables.
    pub fn from_processed<'a, I: IntoIterator<Item = &'a ProcessedTable>>(tables: I) -> Self {
        let mut s = DegradationStats::default();
        for pt in tables {
            s.total_columns += pt.table.n_cols();
            s.degraded_columns += pt.degraded_columns();
            s.failed_cells += pt.failed_cells;
        }
        s
    }

    /// Merge in the retrieval-layer counters of a resilient backend.
    pub fn with_backend(mut self, m: &MetricsSnapshot) -> Self {
        self.retries = m.retries;
        self.breaker_trips = m.breaker_trips;
        self.breaker_rejections = m.breaker_rejections;
        self.retrieval_p50_us = m.latency_p50_us();
        self.retrieval_p99_us = m.latency_p99_us();
        self
    }

    /// Fraction of columns that degraded, in [0, 1].
    pub fn degraded_fraction(&self) -> f64 {
        if self.total_columns == 0 {
            0.0
        } else {
            self.degraded_columns as f64 / self.total_columns as f64
        }
    }
}

impl std::fmt::Display for DegradationStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Degraded columns:   {:>6} / {} ({:.1}%)",
            self.degraded_columns,
            self.total_columns,
            100.0 * self.degraded_fraction()
        )?;
        writeln!(f, "Failed cells:       {:>6}", self.failed_cells)?;
        writeln!(
            f,
            "Retries:            {:>6}   breaker trips: {}   breaker rejections: {}",
            self.retries, self.breaker_trips, self.breaker_rejections
        )?;
        write!(
            f,
            "Retrieval latency:  p50 {}us, p99 {}us (simulated)",
            self.retrieval_p50_us, self.retrieval_p99_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KgLinkConfig;
    use crate::preprocess::Preprocessor;
    use kglink_datagen::{viznet_like, VizNetConfig};
    use kglink_kg::{SyntheticWorld, WorldConfig};
    use kglink_search::EntitySearcher;

    #[test]
    fn viznet_like_statistics_have_the_papers_shape() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(31));
        let bench = viznet_like(&world, &VizNetConfig::tiny(31));
        let searcher = EntitySearcher::build(&world.graph);
        let pre = Preprocessor::new(&world.graph, &searcher, KgLinkConfig::fast_test());
        let processed: Vec<_> = bench
            .dataset
            .tables
            .iter()
            .flat_map(|t| pre.process(t))
            .collect();
        let stats = LinkStatistics::compute(&processed);
        assert!(stats.total_columns > 0);
        assert!(stats.numeric_columns > 0, "VizNet-like has numeric columns");
        assert!(
            stats.non_numeric_without_fv > 0,
            "address/code columns lack KG info"
        );
        assert!(
            stats.non_numeric_without_ct >= stats.non_numeric_without_fv,
            "w/o ct nests w/o fv"
        );
        assert!(stats.numeric_columns + stats.non_numeric_without_ct <= stats.total_columns);
    }

    #[test]
    fn display_renders_percentages() {
        let s = LinkStatistics {
            numeric_columns: 1,
            non_numeric_without_fv: 2,
            non_numeric_without_ct: 3,
            total_columns: 10,
        };
        let text = s.to_string();
        assert!(text.contains("10.0%"));
        assert!(text.contains("30.0%"));
        assert_eq!(s.pct(5), 50.0);
    }

    #[test]
    fn empty_stats() {
        let s = LinkStatistics::default();
        assert_eq!(s.pct(0), 0.0);
    }

    #[test]
    fn degradation_stats_track_outages() {
        use kglink_datagen::{semtab_like, SemTabConfig};
        use kglink_search::{FaultConfig, FaultyBackend, ResilienceConfig, ResilientBackend};

        let world = SyntheticWorld::generate(&WorldConfig::tiny(32));
        let bench = semtab_like(&world, &SemTabConfig::tiny(32));
        let searcher = EntitySearcher::build(&world.graph);

        // Healthy backend: nothing degrades.
        let pre = Preprocessor::new(&world.graph, &searcher, KgLinkConfig::fast_test());
        let healthy: Vec<_> = bench
            .dataset
            .tables
            .iter()
            .take(4)
            .flat_map(|t| pre.process(t))
            .collect();
        let s = DegradationStats::from_processed(&healthy);
        assert!(s.total_columns > 0);
        assert_eq!(s.degraded_columns, 0);
        assert_eq!(s.failed_cells, 0);
        assert_eq!(s.degraded_fraction(), 0.0);

        // Full outage behind the resilient decorator: everything linkable
        // degrades and the decorator's counters surface.
        let faulty = FaultyBackend::new(&searcher, FaultConfig::with_fault_rate(5, 1.0));
        let resilient = ResilientBackend::new(&faulty, ResilienceConfig::default());
        let pre = Preprocessor::new(&world.graph, &resilient, KgLinkConfig::fast_test());
        let dead: Vec<_> = bench
            .dataset
            .tables
            .iter()
            .take(4)
            .flat_map(|t| pre.process(t))
            .collect();
        let s = DegradationStats::from_processed(&dead).with_backend(&resilient.metrics());
        assert!(s.degraded_columns > 0);
        assert!(s.failed_cells > 0);
        assert!(s.retries > 0, "transient faults are retried before giving up");
        assert!(s.degraded_fraction() > 0.0);
        let text = s.to_string();
        assert!(text.contains("Degraded columns"));
        assert!(text.contains("breaker trips"));
    }
}
