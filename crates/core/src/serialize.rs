//! Part 2, Step 1: table serialization (paper Eq. 10–11, extended).
//!
//! The Doduo-style multi-column serialization puts a `[CLS]` before every
//! column and one `[SEP]` at the end (Eq. 11). KGLink extends each column's
//! span with (a) a label *slot* — `[MASK]` in the masked table, the ground
//! truth label in the teacher table — and (b) the KG information: candidate
//! types for entity columns, or mean/variance/median buckets for numeric
//! columns:
//!
//! ```text
//! [CLS] <slot> <ct_0 … ct_j | numeric stats> <cell tokens…> [CLS] … [SEP]
//! ```

use crate::config::KgLinkConfig;
use crate::preprocess::ProcessedTable;
use kglink_nn::{special, Tokenizer};
use kglink_table::{CellValue, LabelVocab};

/// How the label slot is filled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotFill {
    /// `[MASK]` — used for training inputs and at inference.
    Mask,
    /// The ground-truth label's first token — the detached teacher table.
    GroundTruth,
}

/// A serialized table with per-column anchor positions.
#[derive(Debug, Clone)]
pub struct SerializedTable {
    pub ids: Vec<u32>,
    /// Position of each column's `[CLS]` token.
    pub cls: Vec<usize>,
    /// Position of each column's label slot (empty when the mask task is
    /// disabled).
    pub slot: Vec<usize>,
}

/// Serialize a processed table.
pub fn serialize_table(
    pt: &ProcessedTable,
    tokenizer: &Tokenizer,
    labels: &LabelVocab,
    config: &KgLinkConfig,
    fill: SlotFill,
) -> SerializedTable {
    let mut ids = Vec::new();
    let mut cls = Vec::with_capacity(pt.table.n_cols());
    let mut slot = Vec::with_capacity(pt.table.n_cols());
    for c in 0..pt.table.n_cols() {
        cls.push(ids.len());
        ids.push(special::CLS);
        if config.use_mask_task {
            slot.push(ids.len());
            match fill {
                SlotFill::Mask => ids.push(special::MASK),
                SlotFill::GroundTruth => {
                    let name = labels.name(pt.labels[c]);
                    let toks = tokenizer.encode_text(name);
                    ids.push(toks.first().copied().unwrap_or(special::UNK));
                }
            }
        }
        let budget_end = ids.len() + config.tokens_per_column;
        if config.use_candidate_types {
            if let Some(stats) = pt.numeric_stats[c] {
                // Numeric column: "the column's mean, variance, and average
                // value" — encoded as magnitude buckets.
                ids.push(tokenizer.encode_number(stats.mean));
                ids.push(tokenizer.encode_number(stats.variance));
                ids.push(tokenizer.encode_number(stats.median));
            } else {
                for ct_name in &pt.candidate_type_names[c] {
                    for t in tokenizer.encode_text(ct_name).into_iter().take(3) {
                        ids.push(t);
                    }
                    if ids.len() + 2 >= budget_end {
                        break;
                    }
                }
            }
        }
        // Cell tokens, rows in filter order, until the column budget.
        'cells: for cell in pt.table.column(c) {
            let toks = match cell {
                CellValue::Text(s) => tokenizer.encode_text(s),
                CellValue::Number(n) => vec![tokenizer.encode_number(*n)],
                CellValue::Date(d) => {
                    // Years bucket to [YEAR]; full dates too.
                    let year = d.get(..4).and_then(|y| y.parse::<f64>().ok()).unwrap_or(0.0);
                    vec![tokenizer.encode_number(year)]
                }
                CellValue::Empty => continue,
            };
            for t in toks {
                if ids.len() >= budget_end {
                    break 'cells;
                }
                ids.push(t);
            }
        }
    }
    ids.push(special::SEP);
    SerializedTable { ids, cls, slot }
}

/// Tokenize the per-column feature sequences: `[CLS]` + up to
/// `feature_seq_tokens` tokens. `None` stays `None` (the paper's padding
/// sequence — the model simply skips composition for those columns).
pub fn serialize_features(
    pt: &ProcessedTable,
    tokenizer: &Tokenizer,
    config: &KgLinkConfig,
) -> Vec<Option<Vec<u32>>> {
    pt.feature_seqs
        .iter()
        .map(|fs| {
            fs.as_ref().map(|text| {
                let mut ids = vec![special::CLS];
                ids.extend(
                    tokenizer
                        .encode_text(text)
                        .into_iter()
                        .take(config.feature_seq_tokens),
                );
                ids
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::preprocess_table;
    use kglink_kg::{Entity, KgBuilder, NeSchema};
    use kglink_nn::Vocab;
    use kglink_search::EntitySearcher;
    use kglink_table::{LabelId, Table, TableId};

    fn setup() -> (ProcessedTable, Tokenizer, LabelVocab) {
        let mut b = KgBuilder::new();
        let musician = b.add_type("Musician", None);
        let band_ty = b.add_type("Musical group", None);
        let member = b.predicate("member of");
        let band = b.add_instance(Entity::new("Iron Prophets", NeSchema::Organization), band_ty);
        for name in ["Peter Steele", "Anna Kovacs"] {
            let m = b.add_instance(Entity::new(name, NeSchema::Person), musician);
            b.relate(m, member, band);
        }
        let g = b.build();
        let searcher = EntitySearcher::build(&g);
        let table = Table::new(
            TableId(0),
            vec![],
            vec![
                vec![CellValue::parse("Peter Steele"), CellValue::parse("Anna Kovacs")],
                vec![CellValue::parse("180"), CellValue::parse("190")],
            ],
            vec![LabelId(0), LabelId(1)],
        );
        let cfg = KgLinkConfig::fast_test();
        let pt = preprocess_table(&table, &g, &searcher, &cfg);
        let vocab = Vocab::build(
            [
                "peter steele anna kovacs musician iron prophets member of musical group name height",
            ],
            1,
            1000,
        );
        let mut labels = LabelVocab::new();
        labels.intern("name");
        labels.intern("height");
        (pt, Tokenizer::new(vocab), labels)
    }

    #[test]
    fn masked_and_gt_tables_align() {
        let (pt, tok, labels) = setup();
        let cfg = KgLinkConfig::fast_test();
        let masked = serialize_table(&pt, &tok, &labels, &cfg, SlotFill::Mask);
        let gt = serialize_table(&pt, &tok, &labels, &cfg, SlotFill::GroundTruth);
        assert_eq!(masked.ids.len(), gt.ids.len(), "token-aligned tables");
        assert_eq!(masked.cls, gt.cls);
        assert_eq!(masked.slot, gt.slot);
        for (i, (&m, &g)) in masked.ids.iter().zip(&gt.ids).enumerate() {
            if masked.slot.contains(&i) {
                assert_eq!(m, special::MASK);
                assert_ne!(g, special::MASK);
            } else {
                assert_eq!(m, g, "only slots differ");
            }
        }
    }

    #[test]
    fn structure_follows_eq11() {
        let (pt, tok, labels) = setup();
        let cfg = KgLinkConfig::fast_test();
        let s = serialize_table(&pt, &tok, &labels, &cfg, SlotFill::Mask);
        assert_eq!(s.cls.len(), 2);
        assert_eq!(s.ids[s.cls[0]], special::CLS);
        assert_eq!(s.ids[s.cls[1]], special::CLS);
        assert_eq!(*s.ids.last().unwrap(), special::SEP);
        assert_eq!(s.ids.iter().filter(|&&t| t == special::SEP).count(), 1);
    }

    #[test]
    fn numeric_column_gets_stat_buckets() {
        let (pt, tok, labels) = setup();
        let cfg = KgLinkConfig::fast_test();
        let s = serialize_table(&pt, &tok, &labels, &cfg, SlotFill::Mask);
        // Column 1 is numeric (heights 180/190): its span should contain
        // numeric bucket tokens right after the slot.
        let start = s.cls[1];
        let span = &s.ids[start..];
        assert!(span
            .iter()
            .any(|&t| (special::NUM_NEG..=special::YEAR).contains(&t)));
    }

    #[test]
    fn mask_task_disabled_removes_slots() {
        let (pt, tok, labels) = setup();
        let cfg = KgLinkConfig::fast_test().without_mask_task();
        let s = serialize_table(&pt, &tok, &labels, &cfg, SlotFill::Mask);
        assert!(s.slot.is_empty());
        assert!(!s.ids.contains(&special::MASK));
    }

    #[test]
    fn without_candidate_types_omits_kg_tokens() {
        let (pt, tok, labels) = setup();
        let with = serialize_table(&pt, &tok, &labels, &KgLinkConfig::fast_test(), SlotFill::Mask);
        let cfg = KgLinkConfig::fast_test().without_kg();
        let without = serialize_table(&pt, &tok, &labels, &cfg, SlotFill::Mask);
        assert!(without.ids.len() < with.ids.len());
    }

    #[test]
    fn feature_sequences_start_with_cls() {
        let (pt, tok, _) = setup();
        let cfg = KgLinkConfig::fast_test();
        let feats = serialize_features(&pt, &tok, &cfg);
        assert_eq!(feats.len(), 2);
        let f0 = feats[0].as_ref().expect("linked column has features");
        assert_eq!(f0[0], special::CLS);
        assert!(f0.len() <= 1 + cfg.feature_seq_tokens);
        assert!(feats[1].is_none(), "numeric column has no feature sequence");
    }

    #[test]
    fn column_token_budget_is_respected() {
        let (pt, tok, labels) = setup();
        let mut cfg = KgLinkConfig::fast_test();
        cfg.tokens_per_column = 4;
        let s = serialize_table(&pt, &tok, &labels, &cfg, SlotFill::Mask);
        // Each column span: CLS + slot + at most tokens_per_column + a few
        // stat tokens; total stays well-bounded.
        assert!(s.ids.len() <= 2 * (2 + 4 + 3) + 1);
    }
}
