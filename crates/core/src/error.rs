//! Typed errors for the KGLink pipeline.
//!
//! Data-dependent failure modes (degenerate tables, invalid configurations,
//! retrieval faults) surface as [`KgLinkError`] instead of panics: callers
//! choose between propagating (`try_*` APIs) and skipping (the annotator
//! falls back to a default label rather than crash on one bad table).

use kglink_nn::checkpoint::CheckpointError;
use kglink_search::RetrievalError;
use kglink_table::TableId;
use std::fmt;

/// Everything that can go wrong while preprocessing or annotating.
#[derive(Debug, Clone, PartialEq)]
pub enum KgLinkError {
    /// A table that cannot be meaningfully annotated (e.g. zero columns).
    DegenerateTable { table: TableId, reason: String },
    /// A configuration value outside its valid domain.
    InvalidConfig { reason: String },
    /// A required resource (KG, retrieval backend, tokenizer) was not
    /// supplied to [`ResourcesBuilder`](crate::pipeline::ResourcesBuilder).
    MissingResource { what: &'static str },
    /// KG retrieval failed and no degraded path was applicable.
    Retrieval(RetrievalError),
    /// A training checkpoint could not be written, read, or applied.
    Checkpoint(CheckpointError),
}

impl KgLinkError {
    pub fn degenerate(table: TableId, reason: impl Into<String>) -> Self {
        KgLinkError::DegenerateTable {
            table,
            reason: reason.into(),
        }
    }

    pub fn invalid_config(reason: impl Into<String>) -> Self {
        KgLinkError::InvalidConfig {
            reason: reason.into(),
        }
    }

    pub fn missing_resource(what: &'static str) -> Self {
        KgLinkError::MissingResource { what }
    }
}

impl fmt::Display for KgLinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KgLinkError::DegenerateTable { table, reason } => {
                write!(f, "degenerate table {table:?}: {reason}")
            }
            KgLinkError::InvalidConfig { reason } => write!(f, "invalid config: {reason}"),
            KgLinkError::MissingResource { what } => {
                write!(f, "missing resource: no {what} was provided")
            }
            KgLinkError::Retrieval(e) => write!(f, "retrieval failed: {e}"),
            KgLinkError::Checkpoint(e) => write!(f, "checkpoint failed: {e}"),
        }
    }
}

impl std::error::Error for KgLinkError {}

impl From<RetrievalError> for KgLinkError {
    fn from(e: RetrievalError) -> Self {
        KgLinkError::Retrieval(e)
    }
}

impl From<CheckpointError> for KgLinkError {
    fn from(e: CheckpointError) -> Self {
        KgLinkError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format_and_convert() {
        let e = KgLinkError::degenerate(TableId(7), "no columns");
        assert!(e.to_string().contains("no columns"));
        let e: KgLinkError = RetrievalError::Transient.into();
        assert!(matches!(e, KgLinkError::Retrieval(RetrievalError::Transient)));
        assert!(e.to_string().contains("transient"));
    }
}
