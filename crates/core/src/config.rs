//! KGLink configuration: paper hyper-parameters plus ablation switches.

use kglink_nn::{AdamWConfig, EncoderConfig};
use serde::{Deserialize, Serialize};

/// How the top-k rows fed to the PLM are chosen (paper Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RowFilter {
    /// KGLink's filter: rows sorted by descending row linking score (Eq. 5).
    #[default]
    LinkScore,
    /// Baseline: the table's first k rows in original order.
    Original,
}

/// Which encoder size Part 2 uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EncoderSize {
    /// The shared "MiniLM" (BERT stand-in) used by all compared methods.
    #[default]
    Mini,
    /// A larger encoder (DeBERTa's role in the Table II ablation).
    Large,
}

/// Full pipeline configuration.
///
/// Defaults follow the paper's experimental settings, scaled to this
/// reproduction: the paper retrieves up to 10 entities per mention,
/// generates up to 3 candidate types, keeps k = 25 rows, limits columns to
/// 8 and column tokens to 64 (we keep the same entity/type counts and scale
/// the token budgets to the MiniLM's context).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KgLinkConfig {
    // ---- Part 1: KG stage --------------------------------------------
    /// Maximum entities retrieved from the KG per cell mention (paper: 10).
    pub max_entities_per_mention: usize,
    /// Maximum candidate types kept per column (paper: 3).
    pub max_candidate_types: usize,
    /// Top-k row filter size (paper: 25; Figure 10 sweeps {10, 25, 50, all}).
    pub top_k_rows: usize,
    /// Row filter mechanism (Table V).
    pub row_filter: RowFilter,
    /// Maximum columns per table before splitting (paper: 8).
    pub max_columns: usize,
    /// Per-query KG retrieval deadline in simulated microseconds
    /// (`u64::MAX` = unbounded; only bites when the backend simulates
    /// latency). Queries past the deadline fail and degrade their column to
    /// the no-linkage path.
    pub retrieval_deadline_us: u64,

    // ---- Part 2: serialization + model --------------------------------
    /// Token budget per column in the serialized table (paper: 64).
    pub tokens_per_column: usize,
    /// Token budget for each feature sequence.
    pub feature_seq_tokens: usize,
    /// Encoder size.
    pub encoder: EncoderSize,
    /// DMLM temperature `T` (paper: 2, following Hinton et al.).
    pub temperature: f32,
    /// Train-time dropout on the encoder's output states (paper: 0.1 on
    /// SemTab, 0.2 on VizNet).
    pub dropout: f32,

    // ---- Ablation switches (paper Table II) ----------------------------
    /// Enable the column-type representation generation sub-task
    /// (`KGLink w/o msk` disables this).
    pub use_mask_task: bool,
    /// Prepend KG candidate types to each column
    /// (`KGLink w/o ct` disables this *and* the feature vector).
    pub use_candidate_types: bool,
    /// Compose the KG feature vector into the column representation
    /// (`KGLink w/o fv` disables this).
    pub use_feature_vector: bool,

    // ---- Training -------------------------------------------------------
    /// Training epochs (the paper uses 50 on SemTab, 20 on VizNet; scaled).
    pub epochs: usize,
    /// Gradient-accumulation batch size in tables (paper: 16).
    pub batch_size: usize,
    /// Early-stopping patience in epochs (0 disables).
    pub patience: usize,
    /// Optimizer settings (paper: AdamW, lr 3e-5, eps 1e-6, linear decay).
    /// The scaled-down model trains from a higher LR.
    pub optimizer: AdamWConfig,
    /// Initial `log σ²` values of the uncertainty weights; `None` trains
    /// them from 0, `Some` pins them (Figure 8(a) sensitivity sweep).
    pub fixed_log_sigmas: Option<(f32, f32)>,
    /// RNG seed for training-time shuffling and masking.
    pub seed: u64,
}

impl Default for KgLinkConfig {
    fn default() -> Self {
        KgLinkConfig {
            max_entities_per_mention: 10,
            max_candidate_types: 3,
            top_k_rows: 25,
            row_filter: RowFilter::LinkScore,
            max_columns: 8,
            retrieval_deadline_us: u64::MAX,
            tokens_per_column: 18,
            feature_seq_tokens: 24,
            encoder: EncoderSize::Mini,
            temperature: 2.0,
            dropout: 0.1,
            use_mask_task: true,
            use_candidate_types: true,
            use_feature_vector: true,
            epochs: 6,
            batch_size: 16,
            patience: 2,
            optimizer: AdamWConfig {
                lr: 4e-4,
                ..Default::default()
            },
            fixed_log_sigmas: None,
            seed: 1234,
        }
    }
}

impl KgLinkConfig {
    /// A fast configuration for tests.
    pub fn fast_test() -> Self {
        KgLinkConfig {
            epochs: 2,
            top_k_rows: 6,
            tokens_per_column: 10,
            feature_seq_tokens: 12,
            patience: 0,
            ..Default::default()
        }
    }

    /// Resolve the encoder architecture for a vocabulary size.
    pub fn encoder_config(&self, vocab_size: usize) -> EncoderConfig {
        match self.encoder {
            EncoderSize::Mini => EncoderConfig::mini(vocab_size),
            EncoderSize::Large => EncoderConfig::large(vocab_size),
        }
    }

    /// The `KGLink w/o msk` ablation.
    pub fn without_mask_task(mut self) -> Self {
        self.use_mask_task = false;
        self
    }

    /// The `KGLink w/o ct` ablation (drops *all* KG information).
    pub fn without_kg(mut self) -> Self {
        self.use_candidate_types = false;
        self.use_feature_vector = false;
        self
    }

    /// The `KGLink w/o fv` ablation.
    pub fn without_feature_vector(mut self) -> Self {
        self.use_feature_vector = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = KgLinkConfig::default();
        assert_eq!(c.max_entities_per_mention, 10);
        assert_eq!(c.max_candidate_types, 3);
        assert_eq!(c.top_k_rows, 25);
        assert_eq!(c.max_columns, 8);
        assert_eq!(c.temperature, 2.0);
        assert!(c.use_mask_task && c.use_candidate_types && c.use_feature_vector);
    }

    #[test]
    fn ablation_builders() {
        let c = KgLinkConfig::default().without_mask_task();
        assert!(!c.use_mask_task);
        let c = KgLinkConfig::default().without_kg();
        assert!(!c.use_candidate_types && !c.use_feature_vector);
        let c = KgLinkConfig::default().without_feature_vector();
        assert!(c.use_candidate_types && !c.use_feature_vector);
    }

    #[test]
    fn encoder_config_resolution() {
        let mut c = KgLinkConfig::default();
        let mini = c.encoder_config(100);
        c.encoder = EncoderSize::Large;
        let large = c.encoder_config(100);
        assert!(large.d_model > mini.d_model || large.n_layers > mini.n_layers);
    }
}
