//! The user-facing KGLink annotator API.

use crate::config::KgLinkConfig;
use crate::model::KgLinkModel;
use crate::preprocess::{Preprocessor, ProcessedTable};
use crate::train::{self, prepare_tables};
pub use crate::train::TrainReport;
use kglink_kg::KnowledgeGraph;
use kglink_nn::layers::param::HasParams;
use kglink_nn::serialize::load_params;
use kglink_nn::{Tokenizer, Vocab};
use kglink_search::{Deadline, KgBackend};
use kglink_table::{Dataset, EvalSummary, LabelId, LabelVocab, Split, Table};

/// Everything external a KGLink instance needs: the KG, a retrieval backend
/// over it (the in-process searcher, or any resilient/faulty decorator
/// stack), the tokenizer, and (optionally) pre-trained MiniLM weights shared
/// across the experiment grid.
pub struct Resources<'a> {
    pub graph: &'a KnowledgeGraph,
    pub backend: &'a (dyn KgBackend + 'a),
    pub tokenizer: &'a Tokenizer,
    /// Serialized encoder weights from MLM pre-training (the BERT
    /// checkpoint stand-in). Loaded when the architecture matches.
    pub pretrained_encoder: Option<&'a [u8]>,
}

impl<'a> Resources<'a> {
    pub fn new(
        graph: &'a KnowledgeGraph,
        backend: &'a (dyn KgBackend + 'a),
        tokenizer: &'a Tokenizer,
    ) -> Self {
        Resources {
            graph,
            backend,
            tokenizer,
            pretrained_encoder: None,
        }
    }

    pub fn with_pretrained(mut self, blob: &'a [u8]) -> Self {
        self.pretrained_encoder = Some(blob);
        self
    }
}

/// Build the shared vocabulary for a world + datasets: the MLM corpus plus
/// label names, candidate-type vocabulary (KG labels/predicates are already
/// in the corpus), and dataset cell text.
pub fn build_vocab<'a>(
    corpus: impl IntoIterator<Item = &'a str>,
    datasets: &[&Dataset],
    max_size: usize,
) -> Vocab {
    let mut texts: Vec<String> = corpus.into_iter().map(str::to_string).collect();
    for ds in datasets {
        for (_, name) in ds.labels.iter() {
            texts.push(name.to_string());
        }
        for t in &ds.tables {
            for col in &t.columns {
                for cell in col {
                    if let Some(s) = cell.as_text() {
                        texts.push(s.to_string());
                    }
                }
            }
        }
    }
    Vocab::build(texts.iter().map(String::as_str), 1, max_size)
}

/// Labels plus degradation accounting for one annotated table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotateOutcome {
    /// One predicted label per column of the input table.
    pub labels: Vec<LabelId>,
    /// Columns degraded to the no-linkage path by retrieval failures.
    pub degraded_columns: usize,
    /// Cells whose retrieval was attempted but failed.
    pub failed_cells: usize,
}

/// A trained KGLink annotator.
pub struct KgLink {
    pub config: KgLinkConfig,
    pub model: KgLinkModel,
    pub labels: LabelVocab,
}

impl KgLink {
    /// Train KGLink on a dataset's train split, early-stopping on its
    /// validation split. Returns the annotator and the training trace.
    pub fn fit(resources: &Resources<'_>, dataset: &Dataset, config: KgLinkConfig) -> (Self, TrainReport) {
        let pre = Preprocessor::new(resources.graph, resources.backend, config.clone());
        let process = |split: Split| -> Vec<ProcessedTable> {
            dataset
                .tables_in(split)
                .flat_map(|t| pre.process(t))
                .collect()
        };
        let train_pt = process(Split::Train);
        let val_pt = process(Split::Validation);
        Self::fit_processed(resources, &train_pt, &val_pt, &dataset.labels, config)
    }

    /// Train from already-preprocessed tables (lets the experiment harness
    /// share one Part-1 pass across models and ablations).
    pub fn fit_processed(
        resources: &Resources<'_>,
        train_pt: &[ProcessedTable],
        val_pt: &[ProcessedTable],
        labels: &LabelVocab,
        config: KgLinkConfig,
    ) -> (Self, TrainReport) {
        let tokenizer = resources.tokenizer;
        let train_prep = prepare_tables(train_pt, tokenizer, labels, &config, true);
        let val_prep = prepare_tables(val_pt, tokenizer, labels, &config, false);
        let mut model = KgLinkModel::new(&config, tokenizer.vocab.len(), labels.len());
        if let Some(blob) = resources.pretrained_encoder {
            // Best effort: only a matching architecture can load.
            let _ = load_params(&mut model.encoder, blob);
        }
        let report = train::train(&mut model, &config, &train_prep, &val_prep);
        (
            KgLink {
                config,
                model,
                labels: labels.clone(),
            },
            report,
        )
    }

    /// Annotate one raw table: runs Part 1 and Part 2 end to end and
    /// returns one label per column.
    pub fn annotate(&self, resources: &Resources<'_>, table: &Table) -> Vec<LabelId> {
        self.annotate_outcome(resources, table, Deadline::UNBOUNDED)
            .labels
    }

    /// [`annotate`](Self::annotate) under a per-request retrieval budget:
    /// `deadline` tightens the configured `retrieval_deadline_us` for every
    /// KG query this annotation issues. Queries past the budget fail and
    /// degrade their column to the no-linkage path — the output arity never
    /// changes.
    pub fn annotate_with_deadline(
        &self,
        resources: &Resources<'_>,
        table: &Table,
        deadline: Deadline,
    ) -> Vec<LabelId> {
        self.annotate_outcome(resources, table, deadline).labels
    }

    /// The full annotation entry point: labels plus degradation accounting,
    /// under a per-request retrieval deadline. This is what the serving
    /// layer (`kglink-serve`) calls per request.
    pub fn annotate_outcome(
        &self,
        resources: &Resources<'_>,
        table: &Table,
        deadline: Deadline,
    ) -> AnnotateOutcome {
        let mut config = self.config.clone();
        config.retrieval_deadline_us = config.retrieval_deadline_us.min(deadline.budget_us());
        let pre = Preprocessor::new(resources.graph, resources.backend, config.clone());
        let mut labels = Vec::with_capacity(table.n_cols());
        let mut degraded_columns = 0;
        let mut failed_cells = 0;
        for pt in pre.process(table) {
            degraded_columns += pt.degraded_columns();
            failed_cells += pt.failed_cells;
            let prep = prepare_tables(
                std::slice::from_ref(&pt),
                resources.tokenizer,
                &self.labels,
                &config,
                false,
            );
            labels.extend(train::predict_table(&self.model, &config, &prep[0]));
        }
        // Degenerate or skipped chunks must not change the output arity:
        // pad with the first label as a deterministic fallback.
        labels.resize(table.n_cols(), LabelId(0));
        AnnotateOutcome {
            labels,
            degraded_columns,
            failed_cells,
        }
    }

    /// Annotate one raw table, returning label names.
    pub fn annotate_names(&self, resources: &Resources<'_>, table: &Table) -> Vec<String> {
        self.annotate(resources, table)
            .into_iter()
            .map(|l| self.labels.name(l).to_string())
            .collect()
    }

    /// Evaluate on preprocessed tables.
    pub fn evaluate_processed(
        &self,
        resources: &Resources<'_>,
        tables: &[ProcessedTable],
    ) -> EvalSummary {
        let prep = prepare_tables(tables, resources.tokenizer, &self.labels, &self.config, false);
        train::evaluate(&self.model, &self.config, &prep)
    }

    /// Evaluate on a dataset split (preprocessing included).
    pub fn evaluate(
        &self,
        resources: &Resources<'_>,
        dataset: &Dataset,
        split: Split,
    ) -> EvalSummary {
        let pre = Preprocessor::new(resources.graph, resources.backend, self.config.clone());
        let tables: Vec<ProcessedTable> = dataset
            .tables_in(split)
            .flat_map(|t| pre.process(t))
            .collect();
        self.evaluate_processed(resources, &tables)
    }

    /// Per-table predictions over preprocessed tables (for subset analyses
    /// like the paper's Table IV).
    pub fn predict_processed(
        &self,
        resources: &Resources<'_>,
        tables: &[ProcessedTable],
    ) -> Vec<Vec<LabelId>> {
        let prep = prepare_tables(tables, resources.tokenizer, &self.labels, &self.config, false);
        prep.iter()
            .map(|p| train::predict_table(&self.model, &self.config, p))
            .collect()
    }

    /// Total trainable parameters.
    pub fn param_count(&mut self) -> usize {
        self.model.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_datagen::{pretrain_corpus, semtab_like, SemTabConfig};
    use kglink_kg::{SyntheticWorld, WorldConfig};
    use kglink_search::EntitySearcher;

    #[test]
    fn fit_annotate_evaluate_end_to_end() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(77));
        let bench = semtab_like(&world, &SemTabConfig::tiny(77));
        let searcher = EntitySearcher::build(&world.graph);
        let corpus = pretrain_corpus(&world, 2);
        let vocab = build_vocab(
            corpus.iter().map(String::as_str),
            &[&bench.dataset],
            6000,
        );
        let tokenizer = Tokenizer::new(vocab);
        let resources = Resources::new(&world.graph, &searcher, &tokenizer);
        let config = KgLinkConfig {
            epochs: 10,
            patience: 0,
            ..KgLinkConfig::fast_test()
        };
        let (kglink, report) = KgLink::fit(&resources, &bench.dataset, config);
        assert!(!report.epoch_loss.is_empty());
        let test_summary = kglink.evaluate(&resources, &bench.dataset, Split::Test);
        assert!(test_summary.support > 0);
        assert!(
            test_summary.accuracy > 1.0 / bench.dataset.labels.len() as f64,
            "better than random: {}",
            test_summary.accuracy
        );
        // Annotate a raw test table.
        let t = bench.dataset.tables_in(Split::Test).next().unwrap();
        let names = kglink.annotate_names(&resources, t);
        assert_eq!(names.len(), t.n_cols());
    }

    #[test]
    fn annotate_outcome_reports_degradation_under_tight_deadlines() {
        use kglink_search::{FaultConfig, FaultyBackend};

        let world = SyntheticWorld::generate(&WorldConfig::tiny(79));
        let bench = semtab_like(&world, &SemTabConfig::tiny(79));
        let searcher = EntitySearcher::build(&world.graph);
        let corpus = pretrain_corpus(&world, 2);
        let vocab = build_vocab(corpus.iter().map(String::as_str), &[&bench.dataset], 6000);
        let tokenizer = Tokenizer::new(vocab);
        let resources = Resources::new(&world.graph, &searcher, &tokenizer);
        let (kglink, _) = KgLink::fit(&resources, &bench.dataset, KgLinkConfig::fast_test());
        let t = bench.dataset.tables_in(Split::Test).next().unwrap();

        // Unbounded deadline over a healthy backend: nothing degrades, and
        // the outcome's labels are exactly what `annotate` returns.
        let clean = kglink.annotate_outcome(&resources, t, Deadline::UNBOUNDED);
        assert_eq!(clean.labels, kglink.annotate(&resources, t));
        assert_eq!(clean.labels.len(), t.n_cols());
        assert_eq!(clean.degraded_columns, 0);
        assert_eq!(clean.failed_cells, 0);

        // A zero budget over a latency-injecting backend times out every
        // retrieval: the outcome keeps its arity and reports degradation.
        let slow = FaultyBackend::new(&searcher, FaultConfig::healthy(79));
        let slow_resources = Resources::new(&world.graph, &slow, &tokenizer);
        let expired = kglink.annotate_outcome(&slow_resources, t, Deadline::from_us(0));
        assert_eq!(expired.labels.len(), t.n_cols());
        assert!(expired.failed_cells > 0, "every retrieval must time out");
        assert!(expired.degraded_columns > 0);
        assert_eq!(
            expired.labels,
            kglink.annotate_with_deadline(&slow_resources, t, Deadline::from_us(0)),
            "degraded annotation is deterministic"
        );
    }

    #[test]
    fn build_vocab_includes_labels_and_cells() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(78));
        let bench = semtab_like(&world, &SemTabConfig::tiny(78));
        let vocab = build_vocab(["hello world"], &[&bench.dataset], 6000);
        let tok = Tokenizer::new(vocab);
        // Label names tokenize to known ids.
        let (_, name) = bench.dataset.labels.iter().next().unwrap();
        let ids = tok.encode_text(name);
        assert!(ids.iter().any(|&i| i != kglink_nn::special::UNK));
    }
}
