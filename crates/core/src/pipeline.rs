//! The user-facing KGLink annotator API.

use crate::config::KgLinkConfig;
use crate::error::KgLinkError;
use crate::model::KgLinkModel;
use crate::preprocess::{Preprocessor, ProcessedTable};
use crate::train::{self, prepare_tables};
pub use crate::train::{FitOptions, GuardPolicy, TrainReport};
use kglink_kg::GraphAccess;
use kglink_nn::layers::param::HasParams;
use kglink_nn::serialize::load_params;
use kglink_nn::{Tokenizer, Vocab};
use kglink_obs::Tracer;
use kglink_search::{Deadline, KgBackend};
use kglink_table::{Dataset, EvalSummary, LabelId, LabelVocab, Split, Table};

/// Everything external a KGLink instance needs: the KG, a retrieval backend
/// over it (the in-process searcher, or any resilient/faulty decorator
/// stack), the tokenizer, and (optionally) pre-trained MiniLM weights shared
/// across the experiment grid.
///
/// Construct through [`Resources::builder`], which validates the bundle
/// instead of allowing inconsistent states.
pub struct Resources<'a> {
    pub graph: &'a (dyn GraphAccess + 'a),
    pub backend: &'a (dyn KgBackend + 'a),
    pub tokenizer: &'a Tokenizer,
    /// Serialized encoder weights from MLM pre-training (the BERT
    /// checkpoint stand-in). Loaded when the architecture matches.
    pub pretrained_encoder: Option<&'a [u8]>,
    /// Observability sink every pipeline call threads through (stage spans,
    /// degradation events). Disabled by default; requests can override it
    /// per call with [`AnnotateRequest::trace`].
    pub tracer: Tracer,
}

impl<'a> Resources<'a> {
    /// Start a validating [`ResourcesBuilder`].
    pub fn builder() -> ResourcesBuilder<'a> {
        ResourcesBuilder::default()
    }

    #[deprecated(
        note = "use `Resources::builder()`, which validates the bundle and \
                reports `KgLinkError::MissingResource` instead of allowing \
                inconsistent states"
    )]
    pub fn new(
        graph: &'a (dyn GraphAccess + 'a),
        backend: &'a (dyn KgBackend + 'a),
        tokenizer: &'a Tokenizer,
    ) -> Self {
        Resources {
            graph,
            backend,
            tokenizer,
            pretrained_encoder: None,
            tracer: Tracer::disabled(),
        }
    }

    pub fn with_pretrained(mut self, blob: &'a [u8]) -> Self {
        self.pretrained_encoder = Some(blob);
        self
    }

    /// Attach a tracer to every pipeline call made through this bundle.
    pub fn with_tracer(mut self, tracer: &Tracer) -> Self {
        self.tracer = tracer.clone();
        self
    }
}

/// Validating builder for [`Resources`]: [`build`](Self::build) fails with
/// [`KgLinkError::MissingResource`] when the KG, backend, or tokenizer is
/// absent, and with [`KgLinkError::InvalidConfig`] when the tokenizer's
/// vocabulary is empty (an annotator over it could never see a token).
#[derive(Default)]
pub struct ResourcesBuilder<'a> {
    graph: Option<&'a (dyn GraphAccess + 'a)>,
    backend: Option<&'a (dyn KgBackend + 'a)>,
    tokenizer: Option<&'a Tokenizer>,
    pretrained_encoder: Option<&'a [u8]>,
    tracer: Tracer,
}

impl<'a> ResourcesBuilder<'a> {
    /// The knowledge graph candidates and feature sequences come from —
    /// the in-memory [`kglink_kg::KnowledgeGraph`] or any other
    /// [`GraphAccess`] store (e.g. `kglink-store`'s disk-backed world).
    pub fn graph(mut self, graph: &'a (dyn GraphAccess + 'a)) -> Self {
        self.graph = Some(graph);
        self
    }

    /// The retrieval backend (searcher or any decorator stack over it).
    pub fn backend(mut self, backend: &'a (dyn KgBackend + 'a)) -> Self {
        self.backend = Some(backend);
        self
    }

    /// The tokenizer shared by serialization and the PLM.
    pub fn tokenizer(mut self, tokenizer: &'a Tokenizer) -> Self {
        self.tokenizer = Some(tokenizer);
        self
    }

    /// Serialized encoder weights from MLM pre-training.
    pub fn pretrained(mut self, blob: &'a [u8]) -> Self {
        self.pretrained_encoder = Some(blob);
        self
    }

    /// Observability sink for every pipeline call (default: disabled).
    pub fn tracer(mut self, tracer: &Tracer) -> Self {
        self.tracer = tracer.clone();
        self
    }

    /// Validate and assemble the bundle.
    pub fn build(self) -> Result<Resources<'a>, KgLinkError> {
        let graph = self
            .graph
            .ok_or(KgLinkError::missing_resource("knowledge graph"))?;
        let backend = self
            .backend
            .ok_or(KgLinkError::missing_resource("retrieval backend"))?;
        let tokenizer = self
            .tokenizer
            .ok_or(KgLinkError::missing_resource("tokenizer"))?;
        if tokenizer.vocab.is_empty() {
            return Err(KgLinkError::invalid_config(
                "tokenizer vocabulary is empty",
            ));
        }
        Ok(Resources {
            graph,
            backend,
            tokenizer,
            pretrained_encoder: self.pretrained_encoder,
            tracer: self.tracer,
        })
    }
}

/// Build the shared vocabulary for a world + datasets: the MLM corpus plus
/// label names, candidate-type vocabulary (KG labels/predicates are already
/// in the corpus), and dataset cell text.
pub fn build_vocab<'a>(
    corpus: impl IntoIterator<Item = &'a str>,
    datasets: &[&Dataset],
    max_size: usize,
) -> Vocab {
    let mut texts: Vec<String> = corpus.into_iter().map(str::to_string).collect();
    for ds in datasets {
        for (_, name) in ds.labels.iter() {
            texts.push(name.to_string());
        }
        for t in &ds.tables {
            for col in &t.columns {
                for cell in col {
                    if let Some(s) = cell.as_text() {
                        texts.push(s.to_string());
                    }
                }
            }
        }
    }
    Vocab::build(texts.iter().map(String::as_str), 1, max_size)
}

/// How much of the KG-linkage pipeline a request was served with.
///
/// The serving layer's brownout controller walks this ladder under
/// overload: quality is shed one rung at a time before any request is
/// shed. The paper's ablation (Table IV) shows the model still produces
/// useful annotations with linkage disabled, which is what makes rung 2 a
/// principled fallback rather than an error path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DegradationRung {
    /// Rung 0: full KG retrieval through the configured backend stack.
    #[default]
    Full,
    /// Rung 1: retrieval served only from cache hits; misses degrade the
    /// column instead of reaching the backend.
    CacheOnly,
    /// Rung 2: no retrieval at all — the paper's no-linkage path.
    NoLinkage,
}

impl DegradationRung {
    /// Numeric rung (0 = full service), for metrics and comparisons.
    pub fn level(self) -> u8 {
        match self {
            DegradationRung::Full => 0,
            DegradationRung::CacheOnly => 1,
            DegradationRung::NoLinkage => 2,
        }
    }

    /// Inverse of [`level`](Self::level); saturates at the worst rung.
    pub fn from_level(level: u8) -> Self {
        match level {
            0 => DegradationRung::Full,
            1 => DegradationRung::CacheOnly,
            _ => DegradationRung::NoLinkage,
        }
    }

    /// Stable lower-case name, used in metrics and trace events.
    pub fn name(self) -> &'static str {
        match self {
            DegradationRung::Full => "full",
            DegradationRung::CacheOnly => "cache_only",
            DegradationRung::NoLinkage => "no_linkage",
        }
    }
}

/// Labels plus degradation accounting for one annotated table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotateOutcome {
    /// One predicted label per column of the input table.
    pub labels: Vec<LabelId>,
    /// Columns degraded to the no-linkage path by retrieval failures.
    pub degraded_columns: usize,
    /// Cells whose retrieval was attempted but failed.
    pub failed_cells: usize,
    /// The degradation rung the request was served at (copied from the
    /// [`AnnotateRequest`]; the pipeline itself does not select rungs).
    pub rung: DegradationRung,
}

impl AnnotateOutcome {
    /// Resolve the predicted labels to their names.
    pub fn names(&self, labels: &LabelVocab) -> Vec<String> {
        self.labels
            .iter()
            .map(|&l| labels.name(l).to_string())
            .collect()
    }
}

/// One annotation request: the table plus per-call options. This is the
/// single entry point every `annotate*` wrapper routes through, so
/// degradation accounting and metrics are identical no matter how the call
/// is spelled.
///
/// ```ignore
/// let outcome = kglink.annotate_request(&resources, req(&table).deadline(d).trace(&tracer));
/// ```
#[derive(Clone, Copy)]
pub struct AnnotateRequest<'r> {
    table: &'r Table,
    deadline: Deadline,
    tracer: Option<&'r Tracer>,
    rung: DegradationRung,
}

/// Shorthand constructor for an [`AnnotateRequest`].
pub fn req(table: &Table) -> AnnotateRequest<'_> {
    AnnotateRequest::new(table)
}

impl<'r> AnnotateRequest<'r> {
    /// A request with an unbounded deadline and the resources' tracer.
    pub fn new(table: &'r Table) -> Self {
        AnnotateRequest {
            table,
            deadline: Deadline::UNBOUNDED,
            tracer: None,
            rung: DegradationRung::Full,
        }
    }

    /// Per-request retrieval budget: tightens the configured
    /// `retrieval_deadline_us` for every KG query this annotation issues.
    pub fn deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// Trace this request through `tracer`, overriding the tracer carried
    /// by the [`Resources`] bundle.
    pub fn trace(mut self, tracer: &'r Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Record the degradation rung this request is being served at. Purely
    /// descriptive — the *caller* (e.g. the serving layer's brownout
    /// controller) selects the rung by choosing the backend; this stamps
    /// the choice onto the [`AnnotateOutcome`] for accounting.
    pub fn rung(mut self, rung: DegradationRung) -> Self {
        self.rung = rung;
        self
    }

    /// The table to annotate.
    pub fn table(&self) -> &'r Table {
        self.table
    }
}

/// A trained KGLink annotator.
pub struct KgLink {
    pub config: KgLinkConfig,
    pub model: KgLinkModel,
    pub labels: LabelVocab,
}

impl KgLink {
    /// Train KGLink on a dataset's train split, early-stopping on its
    /// validation split. Returns the annotator and the training trace.
    pub fn fit(resources: &Resources<'_>, dataset: &Dataset, config: KgLinkConfig) -> (Self, TrainReport) {
        Self::fit_with(resources, dataset, config, &FitOptions::default())
            // kglink-lint: allow(panic-in-lib) — structural: every TrainError
            // is checkpoint I/O, and default FitOptions do no checkpoint I/O.
            .expect("fit without checkpoint I/O cannot fail")
    }

    /// [`fit`](Self::fit) with crash-safety options: periodic atomic
    /// checkpoints, resume from a previous run's checkpoint, and
    /// divergence guards.
    ///
    /// ```ignore
    /// let options = FitOptions::new()
    ///     .checkpoint_every("run/model.kgck", 50)
    ///     .resume_from("run/model.kgck")
    ///     .guard(GuardPolicy::SkipStep);
    /// let (kglink, report) = KgLink::fit_with(&resources, &dataset, config, &options)?;
    /// ```
    pub fn fit_with(
        resources: &Resources<'_>,
        dataset: &Dataset,
        config: KgLinkConfig,
        options: &FitOptions,
    ) -> Result<(Self, TrainReport), KgLinkError> {
        let tracer = &resources.tracer;
        let _fit = tracer.span("fit");
        let pre = Preprocessor::new(resources.graph, resources.backend, config.clone())
            .with_tracer(tracer);
        let process = |split: Split| -> Vec<ProcessedTable> {
            dataset
                .tables_in(split)
                .flat_map(|t| pre.process(t))
                .collect()
        };
        let (train_pt, val_pt) = {
            let _preprocess = tracer.span("fit.preprocess");
            (process(Split::Train), process(Split::Validation))
        };
        Self::fit_processed_with(resources, &train_pt, &val_pt, &dataset.labels, config, options)
    }

    /// Train from already-preprocessed tables (lets the experiment harness
    /// share one Part-1 pass across models and ablations).
    pub fn fit_processed(
        resources: &Resources<'_>,
        train_pt: &[ProcessedTable],
        val_pt: &[ProcessedTable],
        labels: &LabelVocab,
        config: KgLinkConfig,
    ) -> (Self, TrainReport) {
        Self::fit_processed_with(
            resources,
            train_pt,
            val_pt,
            labels,
            config,
            &FitOptions::default(),
        )
        // kglink-lint: allow(panic-in-lib) — structural: every TrainError is
        // checkpoint I/O, and default FitOptions do no checkpoint I/O.
        .expect("fit without checkpoint I/O cannot fail")
    }

    /// [`fit_processed`](Self::fit_processed) with crash-safety options.
    pub fn fit_processed_with(
        resources: &Resources<'_>,
        train_pt: &[ProcessedTable],
        val_pt: &[ProcessedTable],
        labels: &LabelVocab,
        config: KgLinkConfig,
        options: &FitOptions,
    ) -> Result<(Self, TrainReport), KgLinkError> {
        let tokenizer = resources.tokenizer;
        let tracer = &resources.tracer;
        let (train_prep, val_prep) = {
            let _prepare = tracer.span("fit.prepare");
            (
                prepare_tables(train_pt, tokenizer, labels, &config, true),
                prepare_tables(val_pt, tokenizer, labels, &config, false),
            )
        };
        let mut model = KgLinkModel::new(&config, tokenizer.vocab.len(), labels.len());
        if let Some(blob) = resources.pretrained_encoder {
            // Best effort: only a matching architecture can load.
            let _ = load_params(&mut model.encoder, blob);
        }
        let report = {
            let _train = tracer.span("fit.train");
            train::train_with(&mut model, &config, &train_prep, &val_prep, options, tracer)?
        };
        Ok((
            KgLink {
                config,
                model,
                labels: labels.clone(),
            },
            report,
        ))
    }

    /// The single annotation entry point: labels plus degradation
    /// accounting, under the request's retrieval deadline and tracer. Every
    /// `annotate*` wrapper routes through here, and this is what the
    /// serving layer (`kglink-serve`) calls per request.
    ///
    /// Stage spans: the whole call runs under an `annotate` span;
    /// preprocessing contributes `retrieval` / `filter` / `feature`, and
    /// Part 2 contributes `encode` (serialization + tokenization) and
    /// `classify` (the forward pass) per chunk; the batched encoder time
    /// inside `classify` is broken out as a nested `nn.forward` span.
    pub fn annotate_request(
        &self,
        resources: &Resources<'_>,
        request: AnnotateRequest<'_>,
    ) -> AnnotateOutcome {
        let tracer = request
            .tracer
            .cloned()
            .unwrap_or_else(|| resources.tracer.clone());
        let _annotate = tracer.span("annotate");
        let table = request.table;
        let mut config = self.config.clone();
        config.retrieval_deadline_us = config
            .retrieval_deadline_us
            .min(request.deadline.budget_us());
        let pre = Preprocessor::new(resources.graph, resources.backend, config.clone())
            .with_tracer(&tracer);
        let mut labels = Vec::with_capacity(table.n_cols());
        let mut degraded_columns = 0;
        let mut failed_cells = 0;
        for pt in pre.process(table) {
            degraded_columns += pt.degraded_columns();
            failed_cells += pt.failed_cells;
            let prep = {
                let _encode = tracer.span("encode");
                prepare_tables(
                    std::slice::from_ref(&pt),
                    resources.tokenizer,
                    &self.labels,
                    &config,
                    false,
                )
            };
            let _classify = tracer.span("classify");
            labels.extend(train::predict_table_traced(
                &self.model,
                &config,
                &prep[0],
                &tracer,
            ));
        }
        // Degenerate or skipped chunks must not change the output arity:
        // pad with the first label as a deterministic fallback.
        labels.resize(table.n_cols(), LabelId(0));
        AnnotateOutcome {
            labels,
            degraded_columns,
            failed_cells,
            rung: request.rung,
        }
    }

    /// Annotate one raw table: runs Part 1 and Part 2 end to end and
    /// returns one label per column.
    #[deprecated(note = "use `annotate_request(resources, req(table))`")]
    pub fn annotate(&self, resources: &Resources<'_>, table: &Table) -> Vec<LabelId> {
        self.annotate_request(resources, AnnotateRequest::new(table))
            .labels
    }

    /// Annotate under a per-request retrieval budget: `deadline` tightens
    /// the configured `retrieval_deadline_us` for every KG query this
    /// annotation issues. Queries past the budget fail and degrade their
    /// column to the no-linkage path — the output arity never changes.
    #[deprecated(note = "use `annotate_request(resources, req(table).deadline(deadline))`")]
    pub fn annotate_with_deadline(
        &self,
        resources: &Resources<'_>,
        table: &Table,
        deadline: Deadline,
    ) -> Vec<LabelId> {
        self.annotate_request(resources, AnnotateRequest::new(table).deadline(deadline))
            .labels
    }

    /// Labels plus degradation accounting under a retrieval deadline.
    #[deprecated(note = "use `annotate_request(resources, req(table).deadline(deadline))`")]
    pub fn annotate_outcome(
        &self,
        resources: &Resources<'_>,
        table: &Table,
        deadline: Deadline,
    ) -> AnnotateOutcome {
        self.annotate_request(resources, AnnotateRequest::new(table).deadline(deadline))
    }

    /// Annotate one raw table, returning label names.
    #[deprecated(
        note = "use `annotate_request(resources, req(table))` and resolve names \
                with `AnnotateOutcome::names`"
    )]
    pub fn annotate_names(&self, resources: &Resources<'_>, table: &Table) -> Vec<String> {
        self.annotate_request(resources, AnnotateRequest::new(table))
            .names(&self.labels)
    }

    /// Evaluate on preprocessed tables.
    pub fn evaluate_processed(
        &self,
        resources: &Resources<'_>,
        tables: &[ProcessedTable],
    ) -> EvalSummary {
        let prep = prepare_tables(tables, resources.tokenizer, &self.labels, &self.config, false);
        train::evaluate(&self.model, &self.config, &prep)
    }

    /// Evaluate on a dataset split (preprocessing included).
    pub fn evaluate(
        &self,
        resources: &Resources<'_>,
        dataset: &Dataset,
        split: Split,
    ) -> EvalSummary {
        let pre = Preprocessor::new(resources.graph, resources.backend, self.config.clone())
            .with_tracer(&resources.tracer);
        let tables: Vec<ProcessedTable> = dataset
            .tables_in(split)
            .flat_map(|t| pre.process(t))
            .collect();
        self.evaluate_processed(resources, &tables)
    }

    /// Per-table predictions over preprocessed tables (for subset analyses
    /// like the paper's Table IV).
    pub fn predict_processed(
        &self,
        resources: &Resources<'_>,
        tables: &[ProcessedTable],
    ) -> Vec<Vec<LabelId>> {
        let prep = prepare_tables(tables, resources.tokenizer, &self.labels, &self.config, false);
        prep.iter()
            .map(|p| train::predict_table(&self.model, &self.config, p))
            .collect()
    }

    /// Total trainable parameters.
    pub fn param_count(&mut self) -> usize {
        self.model.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_datagen::{pretrain_corpus, semtab_like, SemTabConfig};
    use kglink_kg::{SyntheticWorld, WorldConfig};
    use kglink_search::EntitySearcher;

    #[test]
    fn fit_annotate_evaluate_end_to_end() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(77));
        let bench = semtab_like(&world, &SemTabConfig::tiny(77));
        let searcher = EntitySearcher::build(&world.graph);
        let corpus = pretrain_corpus(&world, 2);
        let vocab = build_vocab(
            corpus.iter().map(String::as_str),
            &[&bench.dataset],
            6000,
        );
        let tokenizer = Tokenizer::new(vocab);
        let resources = Resources::builder()
            .graph(&world.graph)
            .backend(&searcher)
            .tokenizer(&tokenizer)
            .build()
            .expect("complete resource bundle");
        let config = KgLinkConfig {
            epochs: 10,
            patience: 0,
            ..KgLinkConfig::fast_test()
        };
        let (kglink, report) = KgLink::fit(&resources, &bench.dataset, config);
        assert!(!report.epoch_loss.is_empty());
        let test_summary = kglink.evaluate(&resources, &bench.dataset, Split::Test);
        assert!(test_summary.support > 0);
        assert!(
            test_summary.accuracy > 1.0 / bench.dataset.labels.len() as f64,
            "better than random: {}",
            test_summary.accuracy
        );
        // Annotate a raw test table.
        let t = bench.dataset.tables_in(Split::Test).next().unwrap();
        let names = kglink
            .annotate_request(&resources, req(t))
            .names(&kglink.labels);
        assert_eq!(names.len(), t.n_cols());
    }

    #[test]
    fn resources_builder_validates_the_bundle() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(80));
        let searcher = EntitySearcher::build(&world.graph);
        let tokenizer = Tokenizer::new(Vocab::build(["hello world"], 1, 100));

        match Resources::builder().backend(&searcher).tokenizer(&tokenizer).build() {
            Err(KgLinkError::MissingResource { what }) => assert_eq!(what, "knowledge graph"),
            other => panic!("expected MissingResource, got {:?}", other.is_ok()),
        }
        match Resources::builder().graph(&world.graph).tokenizer(&tokenizer).build() {
            Err(KgLinkError::MissingResource { what }) => assert_eq!(what, "retrieval backend"),
            other => panic!("expected MissingResource, got {:?}", other.is_ok()),
        }
        match Resources::builder().graph(&world.graph).backend(&searcher).build() {
            Err(KgLinkError::MissingResource { what }) => assert_eq!(what, "tokenizer"),
            other => panic!("expected MissingResource, got {:?}", other.is_ok()),
        }
        let empty_tok = Tokenizer::new(Vocab::build(std::iter::empty::<&str>(), 1, 100));
        if !empty_tok.vocab.is_empty() {
            // Special tokens may keep the vocab non-empty; skip the check.
            return;
        }
        assert!(matches!(
            Resources::builder()
                .graph(&world.graph)
                .backend(&searcher)
                .tokenizer(&empty_tok)
                .build(),
            Err(KgLinkError::InvalidConfig { .. })
        ));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_delegate_to_annotate_request() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(81));
        let bench = semtab_like(&world, &SemTabConfig::tiny(81));
        let searcher = EntitySearcher::build(&world.graph);
        let corpus = pretrain_corpus(&world, 2);
        let vocab = build_vocab(corpus.iter().map(String::as_str), &[&bench.dataset], 6000);
        let tokenizer = Tokenizer::new(vocab);
        let resources = Resources::new(&world.graph, &searcher, &tokenizer);
        let (kglink, _) = KgLink::fit(&resources, &bench.dataset, KgLinkConfig::fast_test());
        let t = bench.dataset.tables_in(Split::Test).next().unwrap();
        let canonical = kglink.annotate_request(&resources, req(t));
        assert_eq!(kglink.annotate(&resources, t), canonical.labels);
        assert_eq!(
            kglink.annotate_with_deadline(&resources, t, Deadline::UNBOUNDED),
            canonical.labels
        );
        assert_eq!(
            kglink.annotate_outcome(&resources, t, Deadline::UNBOUNDED),
            canonical
        );
        assert_eq!(
            kglink.annotate_names(&resources, t),
            canonical.names(&kglink.labels)
        );
    }

    #[test]
    fn annotate_outcome_reports_degradation_under_tight_deadlines() {
        use kglink_search::{FaultConfig, FaultyBackend};

        let world = SyntheticWorld::generate(&WorldConfig::tiny(79));
        let bench = semtab_like(&world, &SemTabConfig::tiny(79));
        let searcher = EntitySearcher::build(&world.graph);
        let corpus = pretrain_corpus(&world, 2);
        let vocab = build_vocab(corpus.iter().map(String::as_str), &[&bench.dataset], 6000);
        let tokenizer = Tokenizer::new(vocab);
        let resources = Resources::builder()
            .graph(&world.graph)
            .backend(&searcher)
            .tokenizer(&tokenizer)
            .build()
            .expect("complete resource bundle");
        let (kglink, _) = KgLink::fit(&resources, &bench.dataset, KgLinkConfig::fast_test());
        let t = bench.dataset.tables_in(Split::Test).next().unwrap();

        // Unbounded deadline over a healthy backend: nothing degrades, and
        // the default request deadline is unbounded.
        let clean = kglink.annotate_request(&resources, req(t).deadline(Deadline::UNBOUNDED));
        assert_eq!(
            clean.labels,
            kglink.annotate_request(&resources, req(t)).labels
        );
        assert_eq!(clean.labels.len(), t.n_cols());
        assert_eq!(clean.degraded_columns, 0);
        assert_eq!(clean.failed_cells, 0);

        // A zero budget over a latency-injecting backend times out every
        // retrieval: the outcome keeps its arity and reports degradation.
        let slow = FaultyBackend::new(&searcher, FaultConfig::healthy(79));
        let slow_resources = Resources::builder()
            .graph(&world.graph)
            .backend(&slow)
            .tokenizer(&tokenizer)
            .build()
            .expect("complete resource bundle");
        let expired =
            kglink.annotate_request(&slow_resources, req(t).deadline(Deadline::from_us(0)));
        assert_eq!(expired.labels.len(), t.n_cols());
        assert!(expired.failed_cells > 0, "every retrieval must time out");
        assert!(expired.degraded_columns > 0);
        assert_eq!(
            expired,
            kglink.annotate_request(&slow_resources, req(t).deadline(Deadline::from_us(0))),
            "degraded annotation is deterministic"
        );
    }

    #[test]
    fn build_vocab_includes_labels_and_cells() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(78));
        let bench = semtab_like(&world, &SemTabConfig::tiny(78));
        let vocab = build_vocab(["hello world"], &[&bench.dataset], 6000);
        let tok = Tokenizer::new(vocab);
        // Label names tokenize to known ids.
        let (_, name) = bench.dataset.labels.iter().next().unwrap();
        let ids = tok.encode_text(name);
        assert!(ids.iter().any(|&i| i != kglink_nn::special::UNK));
    }
}
