//! KGLink: column type annotation combining a knowledge graph with a
//! pre-trained language model (ICDE 2024 reproduction).
//!
//! The pipeline has two parts, mirroring the paper's Figure 3:
//!
//! **Part 1 — KG candidate type extraction** (modules [`linking`],
//! [`filter`], [`candidates`], [`feature`], orchestrated by [`preprocess`]):
//!
//! 1. *Table cell mention linking* — every linkable (non-numeric, non-date)
//!    cell is matched against the KG with BM25; the best-matching entities
//!    and their linking scores are retained (Eq. 1–2).
//! 2. *Filters on rows and entities* — candidate entity sets are pruned by
//!    intersecting with one-hop neighborhoods of the other columns' entities
//!    (Eq. 3); cell and row linking scores (Eq. 4–5) drive a top-k row
//!    filter; overlapping scores (Eq. 6) grade entity reliability.
//! 3. *Candidate type generation* — candidate type scores accumulate
//!    overlapping scores over one-hop type entities (Eq. 8), with a
//!    PERSON/DATE label filter; numeric columns get mean/variance/median
//!    statistics instead; a feature sequence `S(e)` (Eq. 9) serializes the
//!    best-linked entity's neighborhood per column.
//!
//! **Part 2 — deep-learning annotator** (modules [`serialize`], [`model`],
//! [`train`]):
//!
//! 1. *Table serialization* — Doduo-style multi-column serialization with a
//!    per-column `[CLS]` (Eq. 11), extended with the `[MASK]`/ground-truth
//!    label slot and the candidate types.
//! 2. *Column-type representation generation* — the DMLM sub-task
//!    (Eq. 13–14) recovers the label's vocabulary distribution from the
//!    `[MASK]` token, using the ground-truth table as a detached teacher.
//! 3. *Adaptive combined loss* — classification cross-entropy (Eq. 16) and
//!    the DMLM loss are merged with trainable uncertainty weights (Eq. 17).
//!
//! The user-facing entry point is [`pipeline::KgLink`].

#![deny(deprecated)]

pub mod candidates;
pub mod config;
pub mod error;
pub mod feature;
pub mod filter;
pub mod linking;
pub mod model;
pub mod pipeline;
pub mod preprocess;
pub mod serialize;
pub mod stats;
pub mod train;

pub use config::{KgLinkConfig, RowFilter};
pub use error::KgLinkError;
pub use linking::{CellLink, LinkedTable};
pub use model::KgLinkModel;
pub use pipeline::{
    req, AnnotateOutcome, AnnotateRequest, DegradationRung, FitOptions, GuardPolicy, KgLink,
    Resources, ResourcesBuilder, TrainReport,
};
pub use preprocess::{preprocess_table, preprocess_table_traced, ProcessedTable, Preprocessor};
pub use stats::{DegradationStats, LinkStatistics, LinkageClass};
