//! Part 1, Step 3: candidate type generation (paper Eq. 7–8).

use crate::filter::FilteredTable;
use kglink_kg::{EntityId, GraphAccess};
use std::collections::HashMap;

/// A scored candidate type for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateType {
    pub entity: EntityId,
    /// Candidate type score `cts` (Eq. 8).
    pub score: f64,
}

/// Generate up to `max_types` candidate types for every column of a
/// filtered table.
///
/// For each column `c`, the pruned entity sets of all rows are united
/// (Eq. 7); every one-hop neighbor `ct` of a pruned entity `e` accumulates
/// `os_e` into its candidate type score (Eq. 8). Per the paper's label-based
/// filter, neighbors whose named-entity schema is `PERSON` or `DATE` are
/// excluded. The `r2 ≠ r1` constraint of Eq. 8 is honored by requiring a
/// candidate type to be supported by entities from at least two distinct
/// rows.
pub fn candidate_types(
    filtered: &FilteredTable,
    graph: &dyn GraphAccess,
    max_types: usize,
) -> Vec<Vec<CandidateType>> {
    let n_cols = filtered.cells.len();
    let mut out = Vec::with_capacity(n_cols);
    let mut hop_cache: HashMap<EntityId, Vec<EntityId>> = HashMap::new();
    for c in 0..n_cols {
        let mut scores: HashMap<EntityId, f64> = HashMap::new();
        let mut row_support: HashMap<EntityId, Vec<usize>> = HashMap::new();
        for (r, cell) in filtered.cells[c].iter().enumerate() {
            for pe in &cell.entities {
                if pe.overlap_score == 0 {
                    continue; // fallback entities carry no weight in Eq. 8
                }
                let neighbors = hop_cache
                    .entry(pe.entity)
                    .or_insert_with(|| graph.one_hop(pe.entity));
                for &ct in neighbors.iter() {
                    if !graph.schema_of(ct).eligible_as_type() {
                        continue;
                    }
                    *scores.entry(ct).or_insert(0.0) += pe.overlap_score as f64;
                    let support = row_support.entry(ct).or_default();
                    if support.last() != Some(&r) {
                        support.push(r);
                    }
                }
            }
        }
        // kglink-lint: allow(nondeterminism) — order-insensitive: the filter
        // is per-element and the very next statement imposes a total order
        // (score via total_cmp, then entity id) before anything is emitted.
        let mut ranked: Vec<CandidateType> = scores
            .into_iter()
            .filter(|(ct, _)| row_support[ct].len() >= 2.min(filtered.table.n_rows()))
            .map(|(entity, score)| CandidateType { entity, score })
            .collect();
        ranked.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.entity.cmp(&b.entity))
        });
        ranked.truncate(max_types);
        out.push(ranked);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RowFilter;
    use crate::filter::prune_and_filter;
    use crate::linking::LinkedTable;
    use kglink_kg::{Entity, KgBuilder, NeSchema};
    use kglink_search::EntitySearcher;
    use kglink_table::{CellValue, LabelId, Table, TableId};

    /// Two-column table of musicians and their bands, where `Musician` (a
    /// type entity) is a one-hop neighbor of every musician, so it should
    /// emerge as the top candidate type for column 0.
    fn setup() -> (kglink_kg::KnowledgeGraph, Table, EntityId, EntityId) {
        let mut b = KgBuilder::new();
        let musician = b.add_type("Musician", None);
        let band_ty = b.add_type("Musical group", None);
        let member_of = b.predicate("member of");
        let band1 = b.add_instance(Entity::new("The Velvet Owls", NeSchema::Organization), band_ty);
        let band2 = b.add_instance(Entity::new("Iron Prophets", NeSchema::Organization), band_ty);
        let names = ["Peter Steele", "Anna Kovacs", "Luca Rossi"];
        let bands = [band1, band2, band1];
        for (name, band) in names.iter().zip(bands) {
            let m = b.add_instance(Entity::new(*name, NeSchema::Person), musician);
            b.relate(m, member_of, band);
        }
        let g = b.build();
        let table = Table::new(
            TableId(0),
            vec![],
            vec![
                names.iter().map(|n| CellValue::parse(n)).collect(),
                vec![
                    CellValue::parse("The Velvet Owls"),
                    CellValue::parse("Iron Prophets"),
                    CellValue::parse("The Velvet Owls"),
                ],
            ],
            vec![LabelId(0), LabelId(1)],
        );
        (g, table, musician, band_ty)
    }

    fn run(
        g: &kglink_kg::KnowledgeGraph,
        table: &Table,
        max_types: usize,
    ) -> Vec<Vec<CandidateType>> {
        let searcher = EntitySearcher::build(g);
        let linked = LinkedTable::link(table, &searcher, 10);
        let filtered = prune_and_filter(table, &linked, g, 25, RowFilter::LinkScore);
        candidate_types(&filtered, g, max_types)
    }

    #[test]
    fn type_entity_wins_for_musician_column() {
        let (g, table, musician, _) = setup();
        let cts = run(&g, &table, 3);
        assert!(!cts[0].is_empty(), "column 0 should have candidate types");
        assert_eq!(cts[0][0].entity, musician, "Musician is the top candidate");
    }

    #[test]
    fn band_column_gets_group_type() {
        let (g, table, _, band_ty) = setup();
        let cts = run(&g, &table, 3);
        assert!(
            cts[1].iter().any(|ct| ct.entity == band_ty),
            "Musical group should be among column 1's candidates: {:?}",
            cts[1]
        );
    }

    #[test]
    fn person_entities_are_filtered_from_types() {
        let (g, table, ..) = setup();
        let cts = run(&g, &table, 10);
        for col in &cts {
            for ct in col {
                assert!(
                    g.entity(ct.entity).schema.eligible_as_type(),
                    "PERSON/DATE must not appear as candidate types"
                );
            }
        }
    }

    #[test]
    fn max_types_caps_output() {
        let (g, table, ..) = setup();
        let cts = run(&g, &table, 1);
        for col in &cts {
            assert!(col.len() <= 1);
        }
    }

    #[test]
    fn scores_are_sorted_descending() {
        let (g, table, ..) = setup();
        let cts = run(&g, &table, 5);
        for col in &cts {
            for pair in col.windows(2) {
                assert!(pair[0].score >= pair[1].score);
            }
        }
    }

    #[test]
    fn single_row_support_requirement_relaxes_for_tiny_tables() {
        // A one-row table can still produce candidate types (2.min(1) == 1).
        let (g, _, musician, _) = setup();
        let table = Table::new(
            TableId(1),
            vec![],
            vec![
                vec![CellValue::parse("Peter Steele")],
                vec![CellValue::parse("The Velvet Owls")],
            ],
            vec![LabelId(0), LabelId(1)],
        );
        let cts = run(&g, &table, 3);
        assert!(cts[0].iter().any(|ct| ct.entity == musician));
    }
}
