//! Part 1, feature sequence construction (paper Eq. 9).

use crate::filter::FilteredTable;
use kglink_kg::GraphAccess;

/// Build the feature sequence `S(e)` for every column of a filtered table.
///
/// Per the paper: from the filtered table, select each column's first cell
/// (the rows are already sorted by row linking score, so the first cell has
/// the best total linking score), take that cell's best-linked entity `e`,
/// and serialize `e` with its one-hop neighborhood:
///
/// `S(e) = s || (‖_{o ∈ N(e)} p || o)`
///
/// where `s` is the entity's label and `p` the predicate name connecting it
/// to neighbor `o`. Columns with no linked entity (numeric columns, or no
/// KG match at all) yield `None`, which the serializer turns into a padding
/// sequence.
pub fn feature_sequences(filtered: &FilteredTable, graph: &dyn GraphAccess) -> Vec<Option<String>> {
    filtered
        .cells
        .iter()
        .map(|col| {
            // First row with a linked cell; rows are in filter order, so
            // this is the best-linked row for the column.
            let best = col.iter().find_map(|cell| cell.best_entity());
            best.map(|pe| {
                let mut parts = vec![graph.label(pe.entity)];
                for (p, o) in graph.one_hop_with_predicates(pe.entity) {
                    parts.push(graph.predicate_name(p));
                    parts.push(graph.label(o));
                }
                parts.join(" ")
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RowFilter;
    use crate::filter::prune_and_filter;
    use crate::linking::LinkedTable;
    use kglink_kg::{Entity, KgBuilder, NeSchema};
    use kglink_search::EntitySearcher;
    use kglink_table::{CellValue, LabelId, Table, TableId};

    fn setup() -> (kglink_kg::KnowledgeGraph, Table) {
        let mut b = KgBuilder::new();
        let musician = b.add_type("Musician", None);
        let album_ty = b.add_type("Album", None);
        let steele = b.add_instance(Entity::new("Peter Steele", NeSchema::Person), musician);
        let rust_album = b.add_instance(Entity::new("Rust", NeSchema::Work), album_ty);
        let performer = b.predicate("performer");
        b.relate(rust_album, performer, steele);
        let g = b.build();
        let table = Table::new(
            TableId(0),
            vec![],
            vec![
                vec![CellValue::parse("Peter Steele")],
                vec![CellValue::parse("1995")],
            ],
            vec![LabelId(0), LabelId(1)],
        );
        (g, table)
    }

    fn features(g: &kglink_kg::KnowledgeGraph, table: &Table) -> Vec<Option<String>> {
        let searcher = EntitySearcher::build(g);
        let linked = LinkedTable::link(table, &searcher, 10);
        let filtered = prune_and_filter(table, &linked, g, 25, RowFilter::LinkScore);
        feature_sequences(&filtered, g)
    }

    #[test]
    fn linked_column_serializes_neighborhood() {
        let (g, table) = setup();
        let f = features(&g, &table);
        let s = f[0].as_ref().expect("column 0 links");
        assert!(s.starts_with("Peter Steele"));
        assert!(s.contains("instance of"));
        assert!(s.contains("Musician"));
        assert!(s.contains("performer"));
        assert!(s.contains("Rust"));
    }

    #[test]
    fn numeric_column_has_no_feature_sequence() {
        let (g, table) = setup();
        let f = features(&g, &table);
        assert!(f[1].is_none(), "date/numeric columns yield padding");
    }

    #[test]
    fn unlinkable_text_column_has_no_feature_sequence() {
        let (g, _) = setup();
        let table = Table::new(
            TableId(1),
            vec![],
            vec![vec![CellValue::parse("qq zz unknown")]],
            vec![LabelId(0)],
        );
        let f = features(&g, &table);
        assert!(f[0].is_none());
    }
}
