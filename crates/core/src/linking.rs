//! Part 1, Step 1: table cell mention linking (paper Eq. 1–2).
//!
//! Linking goes through the fallible [`KgBackend`] trait: a retrieval
//! failure (timeout, transient fault, outage, open circuit breaker) is a
//! first-class outcome recorded on the [`CellLink`], not a panic. Failed
//! cells carry no candidates, which downstream turns into the paper's
//! no-linkage path (Table IV).

use kglink_kg::EntityId;
use kglink_search::{Deadline, KgBackend};
use kglink_table::{MentionKind, Table};

/// KG linkage of a single cell.
#[derive(Debug, Clone)]
pub struct CellLink {
    /// Named-entity-schema verdict for the cell.
    pub kind: MentionKind,
    /// Retrieved candidate entities with BM25 linking scores, best first.
    /// Empty for numeric/date/empty cells (their linking score is 0 by the
    /// paper's rule) and for mentions with no KG match.
    pub candidates: Vec<(EntityId, f32)>,
    /// True when retrieval was attempted but *failed* (as opposed to
    /// succeeding with no hits). Failed cells degrade to the no-linkage
    /// path.
    pub failed: bool,
}

impl CellLink {
    /// The cell's raw linking score before entity pruning: the best
    /// candidate's BM25 score, or 0.
    pub fn best_score(&self) -> f32 {
        self.candidates.first().map_or(0.0, |&(_, s)| s)
    }

    /// Whether any KG entity was retrieved.
    pub fn is_linked(&self) -> bool {
        !self.candidates.is_empty()
    }
}

/// The linked form of a table: one [`CellLink`] per cell, column-major.
#[derive(Debug, Clone)]
pub struct LinkedTable {
    /// `cells[c][r]` aligns with `table.columns[c][r]`.
    pub cells: Vec<Vec<CellLink>>,
}

impl LinkedTable {
    /// Link every cell of `table` against the KG through `backend`,
    /// retrieving up to `max_entities` candidates per mention with no
    /// deadline.
    ///
    /// Cells the named-entity schema classifies as numeric or date are
    /// assigned a linking score of 0 (no retrieval) — the paper: "For
    /// instances where the cell mention corresponds to a number or a date,
    /// it is inappropriate to link it to the KG."
    pub fn link(table: &Table, backend: &dyn KgBackend, max_entities: usize) -> Self {
        Self::link_with_deadline(table, backend, max_entities, Deadline::UNBOUNDED)
    }

    /// [`link`](Self::link) with a per-query retrieval deadline. Retrieval
    /// errors leave the cell unlinked with `failed = true`.
    pub fn link_with_deadline(
        table: &Table,
        backend: &dyn KgBackend,
        max_entities: usize,
        deadline: Deadline,
    ) -> Self {
        let cells = table
            .columns
            .iter()
            .map(|col| {
                col.iter()
                    .map(|cell| {
                        let kind = cell.mention_kind();
                        let (candidates, failed) = if kind == MentionKind::Entity {
                            match backend.search_entities(&cell.surface(), max_entities, deadline)
                            {
                                Ok(outcome) => (outcome.hits, false),
                                Err(_) => (Vec::new(), true),
                            }
                        } else {
                            (Vec::new(), false)
                        };
                        CellLink {
                            kind,
                            candidates,
                            failed,
                        }
                    })
                    .collect()
            })
            .collect();
        LinkedTable { cells }
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.cells.len()
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.cells.first().map_or(0, Vec::len)
    }

    /// The link record of `(row, col)`.
    pub fn cell(&self, row: usize, col: usize) -> &CellLink {
        &self.cells[col][row]
    }

    /// Whether any retrieval in column `c` failed.
    pub fn column_failed(&self, c: usize) -> bool {
        self.cells[c].iter().any(|link| link.failed)
    }

    /// Total cells whose retrieval failed.
    pub fn failed_cells(&self) -> usize {
        self.cells
            .iter()
            .flat_map(|col| col.iter())
            .filter(|link| link.failed)
            .count()
    }

    /// Drop every candidate in column `c` — the full-column degradation
    /// applied when any of its retrievals failed, so the whole column takes
    /// the deterministic no-linkage path instead of a partial one.
    pub fn degrade_column(&mut self, c: usize) {
        for link in &mut self.cells[c] {
            link.candidates.clear();
        }
    }

    /// Fraction of linkable cells that retrieved at least one entity.
    pub fn linkage_rate(&self) -> f64 {
        let mut linkable = 0usize;
        let mut linked = 0usize;
        for col in &self.cells {
            for cell in col {
                if cell.kind == MentionKind::Entity {
                    linkable += 1;
                    if cell.is_linked() {
                        linked += 1;
                    }
                }
            }
        }
        if linkable == 0 {
            0.0
        } else {
            linked as f64 / linkable as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_kg::{Entity, KgBuilder, NeSchema};
    use kglink_search::{EntitySearcher, FaultConfig, FaultyBackend};
    use kglink_table::{CellValue, LabelId, TableId};

    fn setup() -> (kglink_kg::KnowledgeGraph, Table) {
        let mut b = KgBuilder::new();
        let musician = b.add_type("Musician", None);
        b.add_instance(Entity::new("Peter Steele", NeSchema::Person), musician);
        let g = b.build();
        let table = Table::new(
            TableId(0),
            vec![],
            vec![
                vec![
                    CellValue::parse("Peter Steele"),
                    CellValue::parse("Unknown Nobody Xyz"),
                ],
                vec![CellValue::parse("1990"), CellValue::parse("42")],
            ],
            vec![LabelId(0), LabelId(1)],
        );
        (g, table)
    }

    #[test]
    fn linkable_cells_retrieve_entities() {
        let (g, table) = setup();
        let searcher = EntitySearcher::build(&g);
        let linked = LinkedTable::link(&table, &searcher, 5);
        assert!(linked.cell(0, 0).is_linked());
        assert!(linked.cell(0, 0).best_score() > 0.0);
        assert!(!linked.cell(0, 0).failed);
    }

    #[test]
    fn numeric_and_date_cells_get_zero_score() {
        let (g, table) = setup();
        let searcher = EntitySearcher::build(&g);
        let linked = LinkedTable::link(&table, &searcher, 5);
        // Column 1 holds a year (date) and a number.
        assert_eq!(linked.cell(0, 1).kind, MentionKind::Date);
        assert_eq!(linked.cell(1, 1).kind, MentionKind::Numeric);
        assert_eq!(linked.cell(0, 1).best_score(), 0.0);
        assert_eq!(linked.cell(1, 1).best_score(), 0.0);
        assert!(!linked.cell(0, 1).is_linked());
    }

    #[test]
    fn unmatched_mentions_stay_unlinked() {
        let (g, table) = setup();
        let searcher = EntitySearcher::build(&g);
        let linked = LinkedTable::link(&table, &searcher, 5);
        assert!(!linked.cell(1, 0).is_linked());
        assert_eq!(linked.cell(1, 0).best_score(), 0.0);
        assert!(
            !linked.cell(1, 0).failed,
            "an empty result set is not a failure"
        );
    }

    #[test]
    fn linkage_rate_counts_only_entity_cells() {
        let (g, table) = setup();
        let searcher = EntitySearcher::build(&g);
        let linked = LinkedTable::link(&table, &searcher, 5);
        // Two entity cells, one linked.
        assert!((linked.linkage_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn retrieval_failures_mark_cells_and_columns() {
        let (g, table) = setup();
        let searcher = EntitySearcher::build(&g);
        let dead = FaultyBackend::new(&searcher, FaultConfig::with_fault_rate(1, 1.0));
        let linked = LinkedTable::link(&table, &dead, 5);
        // Entity cells fail; numeric/date cells never attempt retrieval.
        assert!(linked.cell(0, 0).failed);
        assert!(linked.cell(1, 0).failed);
        assert!(!linked.cell(0, 1).failed);
        assert!(linked.column_failed(0));
        assert!(!linked.column_failed(1));
        assert_eq!(linked.failed_cells(), 2);
        assert_eq!(linked.linkage_rate(), 0.0);
    }

    #[test]
    fn degrade_column_clears_candidates() {
        let (g, table) = setup();
        let searcher = EntitySearcher::build(&g);
        let mut linked = LinkedTable::link(&table, &searcher, 5);
        assert!(linked.cell(0, 0).is_linked());
        linked.degrade_column(0);
        assert!(!linked.cell(0, 0).is_linked());
    }
}
