//! Part 1, Step 1: table cell mention linking (paper Eq. 1–2).

use kglink_kg::EntityId;
use kglink_search::EntitySearcher;
use kglink_table::{MentionKind, Table};

/// KG linkage of a single cell.
#[derive(Debug, Clone)]
pub struct CellLink {
    /// Named-entity-schema verdict for the cell.
    pub kind: MentionKind,
    /// Retrieved candidate entities with BM25 linking scores, best first.
    /// Empty for numeric/date/empty cells (their linking score is 0 by the
    /// paper's rule) and for mentions with no KG match.
    pub candidates: Vec<(EntityId, f32)>,
}

impl CellLink {
    /// The cell's raw linking score before entity pruning: the best
    /// candidate's BM25 score, or 0.
    pub fn best_score(&self) -> f32 {
        self.candidates.first().map_or(0.0, |&(_, s)| s)
    }

    /// Whether any KG entity was retrieved.
    pub fn is_linked(&self) -> bool {
        !self.candidates.is_empty()
    }
}

/// The linked form of a table: one [`CellLink`] per cell, column-major.
#[derive(Debug, Clone)]
pub struct LinkedTable {
    /// `cells[c][r]` aligns with `table.columns[c][r]`.
    pub cells: Vec<Vec<CellLink>>,
}

impl LinkedTable {
    /// Link every cell of `table` against the KG through `searcher`,
    /// retrieving up to `max_entities` candidates per mention.
    ///
    /// Cells the named-entity schema classifies as numeric or date are
    /// assigned a linking score of 0 (no retrieval) — the paper: "For
    /// instances where the cell mention corresponds to a number or a date,
    /// it is inappropriate to link it to the KG."
    pub fn link(table: &Table, searcher: &EntitySearcher, max_entities: usize) -> Self {
        let cells = table
            .columns
            .iter()
            .map(|col| {
                col.iter()
                    .map(|cell| {
                        let kind = cell.mention_kind();
                        let candidates = if kind == MentionKind::Entity {
                            searcher.link_mention(&cell.surface(), max_entities)
                        } else {
                            Vec::new()
                        };
                        CellLink { kind, candidates }
                    })
                    .collect()
            })
            .collect();
        LinkedTable { cells }
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.cells.len()
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.cells.first().map_or(0, Vec::len)
    }

    /// The link record of `(row, col)`.
    pub fn cell(&self, row: usize, col: usize) -> &CellLink {
        &self.cells[col][row]
    }

    /// Fraction of linkable cells that retrieved at least one entity.
    pub fn linkage_rate(&self) -> f64 {
        let mut linkable = 0usize;
        let mut linked = 0usize;
        for col in &self.cells {
            for cell in col {
                if cell.kind == MentionKind::Entity {
                    linkable += 1;
                    if cell.is_linked() {
                        linked += 1;
                    }
                }
            }
        }
        if linkable == 0 {
            0.0
        } else {
            linked as f64 / linkable as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_kg::{Entity, KgBuilder, NeSchema};
    use kglink_table::{CellValue, LabelId, TableId};

    fn setup() -> (kglink_kg::KnowledgeGraph, Table) {
        let mut b = KgBuilder::new();
        let musician = b.add_type("Musician", None);
        b.add_instance(Entity::new("Peter Steele", NeSchema::Person), musician);
        let g = b.build();
        let table = Table::new(
            TableId(0),
            vec![],
            vec![
                vec![
                    CellValue::parse("Peter Steele"),
                    CellValue::parse("Unknown Nobody Xyz"),
                ],
                vec![CellValue::parse("1990"), CellValue::parse("42")],
            ],
            vec![LabelId(0), LabelId(1)],
        );
        (g, table)
    }

    #[test]
    fn linkable_cells_retrieve_entities() {
        let (g, table) = setup();
        let searcher = EntitySearcher::build(&g);
        let linked = LinkedTable::link(&table, &searcher, 5);
        assert!(linked.cell(0, 0).is_linked());
        assert!(linked.cell(0, 0).best_score() > 0.0);
    }

    #[test]
    fn numeric_and_date_cells_get_zero_score() {
        let (g, table) = setup();
        let searcher = EntitySearcher::build(&g);
        let linked = LinkedTable::link(&table, &searcher, 5);
        // Column 1 holds a year (date) and a number.
        assert_eq!(linked.cell(0, 1).kind, MentionKind::Date);
        assert_eq!(linked.cell(1, 1).kind, MentionKind::Numeric);
        assert_eq!(linked.cell(0, 1).best_score(), 0.0);
        assert_eq!(linked.cell(1, 1).best_score(), 0.0);
        assert!(!linked.cell(0, 1).is_linked());
    }

    #[test]
    fn unmatched_mentions_stay_unlinked() {
        let (g, table) = setup();
        let searcher = EntitySearcher::build(&g);
        let linked = LinkedTable::link(&table, &searcher, 5);
        assert!(!linked.cell(1, 0).is_linked());
        assert_eq!(linked.cell(1, 0).best_score(), 0.0);
    }

    #[test]
    fn linkage_rate_counts_only_entity_cells() {
        let (g, table) = setup();
        let searcher = EntitySearcher::build(&g);
        let linked = LinkedTable::link(&table, &searcher, 5);
        // Two entity cells, one linked.
        assert!((linked.linkage_rate() - 0.5).abs() < 1e-9);
    }
}
