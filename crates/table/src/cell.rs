//! Typed table cells and the named-entity-schema mention detector.

use serde::{Deserialize, Serialize};

/// A table cell value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CellValue {
    /// Free text — the only kind that gets linked to the KG.
    Text(String),
    /// A numeric value (integers and floats both normalize here).
    Number(f64),
    /// A date kept in `YYYY-MM-DD` (or `YYYY`) surface form.
    Date(String),
    /// Missing value.
    Empty,
}

/// What the named-entity schema says about a cell mention.
///
/// KGLink uses spaCy to decide whether a mention "represents a number or a
/// date… unsuitable for linking to the KG. In such cases, we set the linking
/// score of that cell to 0" (paper §IV). This enum is the rule-based
/// equivalent of that decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MentionKind {
    /// Linkable free-text mention.
    Entity,
    /// Numeric — linking score 0.
    Numeric,
    /// Date — linking score 0.
    Date,
    /// Empty — nothing to link.
    Empty,
}

impl CellValue {
    /// Parse a raw string into a typed cell: numbers and dates are detected,
    /// everything else stays text. Empty/whitespace becomes [`CellValue::Empty`].
    pub fn parse(raw: &str) -> CellValue {
        let s = raw.trim();
        if s.is_empty() {
            return CellValue::Empty;
        }
        if let Some(d) = detect_date(s) {
            return CellValue::Date(d);
        }
        if let Some(n) = detect_number(s) {
            return CellValue::Number(n);
        }
        CellValue::Text(s.to_string())
    }

    /// The named-entity-schema category of this cell.
    pub fn mention_kind(&self) -> MentionKind {
        match self {
            CellValue::Text(_) => MentionKind::Entity,
            CellValue::Number(_) => MentionKind::Numeric,
            CellValue::Date(_) => MentionKind::Date,
            CellValue::Empty => MentionKind::Empty,
        }
    }

    /// Whether this cell may be linked to the knowledge graph.
    #[inline]
    pub fn is_linkable(&self) -> bool {
        self.mention_kind() == MentionKind::Entity
    }

    /// Whether this cell is numeric (used for the paper's numeric-column
    /// classification in Table III: a column is numeric iff *all* its cells
    /// are numeric).
    #[inline]
    pub fn is_numeric(&self) -> bool {
        matches!(self, CellValue::Number(_))
    }

    /// Surface form used when serializing the table for the language model.
    pub fn surface(&self) -> String {
        match self {
            CellValue::Text(s) => s.clone(),
            CellValue::Number(n) => format_number(*n),
            CellValue::Date(d) => d.clone(),
            CellValue::Empty => String::new(),
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            CellValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Text content, if this is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            CellValue::Text(s) => Some(s),
            _ => None,
        }
    }
}

/// Render a float without a trailing `.0` for integral values.
fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Detect a numeric mention: optional sign, digits with optional thousands
/// separators and decimal part, optionally a leading currency symbol or a
/// trailing percent sign.
fn detect_number(s: &str) -> Option<f64> {
    let mut t = s;
    if let Some(stripped) = t.strip_prefix(['$', '€', '£']) {
        t = stripped.trim_start();
    }
    if let Some(stripped) = t.strip_suffix('%') {
        t = stripped.trim_end();
    }
    let cleaned: String = t.chars().filter(|&c| c != ',').collect();
    if cleaned.is_empty() {
        return None;
    }
    let body = cleaned.strip_prefix(['-', '+']).unwrap_or(&cleaned);
    if !body.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    if !body.chars().all(|c| c.is_ascii_digit() || c == '.') {
        return None;
    }
    cleaned.parse::<f64>().ok()
}

/// Detect a date mention. Recognizes `YYYY-MM-DD`, `DD/MM/YYYY`,
/// `Month DD, YYYY` (English month names), and bare 4-digit years in the
/// plausible range 1000–2399. Returns a normalized surface form.
fn detect_date(s: &str) -> Option<String> {
    // ISO: 1990-04-01
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() == 3
        && parts[0].len() == 4
        && parts.iter().all(|p| !p.is_empty() && p.chars().all(|c| c.is_ascii_digit()))
    {
        return Some(s.to_string());
    }
    // Slashed: 01/04/1990
    let parts: Vec<&str> = s.split('/').collect();
    if parts.len() == 3 && parts.iter().all(|p| !p.is_empty() && p.chars().all(|c| c.is_ascii_digit())) {
        let (d, m, y) = (parts[0], parts[1], parts[2]);
        if y.len() == 4 {
            return Some(format!("{y}-{m:0>2}-{d:0>2}"));
        }
    }
    // "April 1, 1990" / "Apr 1 1990"
    const MONTHS: [&str; 12] = [
        "january", "february", "march", "april", "may", "june", "july", "august", "september",
        "october", "november", "december",
    ];
    let words: Vec<&str> = s.split([' ', ',']).filter(|w| !w.is_empty()).collect();
    if words.len() == 3 {
        let month = words[0].to_lowercase();
        if let Some(mi) = MONTHS.iter().position(|m| m.starts_with(&month) && month.len() >= 3) {
            let day_ok = words[1].chars().all(|c| c.is_ascii_digit());
            let year_ok = words[2].len() == 4 && words[2].chars().all(|c| c.is_ascii_digit());
            if day_ok && year_ok {
                return Some(format!("{}-{:0>2}-{:0>2}", words[2], mi + 1, words[1]));
            }
        }
    }
    // Bare year.
    if s.len() == 4 && s.chars().all(|c| c.is_ascii_digit()) {
        let year: u32 = s.parse().ok()?;
        if (1000..2400).contains(&year) {
            return Some(s.to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_text() {
        assert_eq!(CellValue::parse("Peter Steele"), CellValue::Text("Peter Steele".into()));
        assert_eq!(CellValue::parse("  trimmed  "), CellValue::Text("trimmed".into()));
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(CellValue::parse("42"), CellValue::Number(42.0));
        assert_eq!(CellValue::parse("-3.5"), CellValue::Number(-3.5));
        assert_eq!(CellValue::parse("1,234,567"), CellValue::Number(1_234_567.0));
        assert_eq!(CellValue::parse("$99.95"), CellValue::Number(99.95));
        assert_eq!(CellValue::parse("85%"), CellValue::Number(85.0));
    }

    #[test]
    fn parses_dates() {
        assert_eq!(CellValue::parse("1990-04-01"), CellValue::Date("1990-04-01".into()));
        assert_eq!(CellValue::parse("01/04/1990"), CellValue::Date("1990-04-01".into()));
        assert_eq!(CellValue::parse("April 1, 1990"), CellValue::Date("1990-04-01".into()));
        // Bare plausible year is a date (the paper treats Year columns as numeric/date-like).
        assert_eq!(CellValue::parse("1990"), CellValue::Date("1990".into()));
        // Implausible "year" is a number.
        assert_eq!(CellValue::parse("9999"), CellValue::Number(9999.0));
    }

    #[test]
    fn empty_cells() {
        assert_eq!(CellValue::parse(""), CellValue::Empty);
        assert_eq!(CellValue::parse("   "), CellValue::Empty);
        assert_eq!(CellValue::Empty.mention_kind(), MentionKind::Empty);
    }

    #[test]
    fn mention_kinds_gate_linkability() {
        assert!(CellValue::parse("Springfield").is_linkable());
        assert!(!CellValue::parse("42").is_linkable());
        assert!(!CellValue::parse("1990-04-01").is_linkable());
        assert!(!CellValue::Empty.is_linkable());
    }

    #[test]
    fn text_with_digits_is_still_text() {
        assert_eq!(CellValue::parse("BRC1"), CellValue::Text("BRC1".into()));
        assert_eq!(CellValue::parse("Area 51 Base"), CellValue::Text("Area 51 Base".into()));
    }

    #[test]
    fn surface_round_trips() {
        assert_eq!(CellValue::Number(42.0).surface(), "42");
        assert_eq!(CellValue::Number(3.25).surface(), "3.25");
        assert_eq!(CellValue::Text("x".into()).surface(), "x");
        assert_eq!(CellValue::Empty.surface(), "");
    }

    #[test]
    fn accessors() {
        assert_eq!(CellValue::Number(5.0).as_number(), Some(5.0));
        assert_eq!(CellValue::Text("t".into()).as_number(), None);
        assert_eq!(CellValue::Text("t".into()).as_text(), Some("t"));
    }

    #[test]
    fn signs_and_malformed_numbers() {
        assert_eq!(CellValue::parse("+7"), CellValue::Number(7.0));
        // Not numbers:
        assert!(matches!(CellValue::parse("3rd"), CellValue::Text(_)));
        assert!(matches!(CellValue::parse("1.2.3"), CellValue::Text(_)));
        assert!(matches!(CellValue::parse("-"), CellValue::Text(_)));
    }
}
