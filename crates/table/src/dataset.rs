//! Labeled datasets with stratified train/validation/test splits.

use crate::table::{ColumnRef, Table};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Identifier of a semantic type (column label) inside a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct LabelId(pub u32);

impl LabelId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The label vocabulary of a dataset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LabelVocab {
    names: Vec<String>,
    by_name: HashMap<String, LabelId>,
}

impl LabelVocab {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a label name.
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = LabelId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Look up a label by name.
    pub fn get(&self, name: &str) -> Option<LabelId> {
        self.by_name.get(name).copied()
    }

    /// Name of a label.
    pub fn name(&self, id: LabelId) -> &str {
        &self.names[id.index()]
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(id, name)`.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (LabelId(i as u32), n.as_str()))
    }
}

/// Which split a table belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Split {
    Train,
    Validation,
    Test,
    /// Excluded from all splits (tables dropped by
    /// [`Dataset::subsample_train`]). Kept in place so `TableId` indices
    /// stay valid.
    Unused,
}

/// Split proportions. The paper uses 7:1:2 everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitSpec {
    pub train: f64,
    pub validation: f64,
    pub test: f64,
}

impl Default for SplitSpec {
    fn default() -> Self {
        SplitSpec {
            train: 0.7,
            validation: 0.1,
            test: 0.2,
        }
    }
}

/// A labeled CTA dataset: tables, a label vocabulary, and a table-level
/// split assignment.
///
/// Splitting is by *table* (a table's columns stay together, as in the
/// paper's setup where whole tables are serialized for multi-column
/// prediction), stratified on each table's dominant label so that "the
/// original sample proportion of each class" is approximately maintained in
/// all splits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    pub name: String,
    pub tables: Vec<Table>,
    pub labels: LabelVocab,
    split: Vec<Split>,
}

impl Dataset {
    /// Create a dataset with every table initially in `Train`.
    pub fn new(name: impl Into<String>, tables: Vec<Table>, labels: LabelVocab) -> Self {
        let split = vec![Split::Train; tables.len()];
        Dataset {
            name: name.into(),
            tables,
            labels,
            split,
        }
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total number of labeled columns.
    pub fn n_columns(&self) -> usize {
        self.tables.iter().map(Table::n_cols).sum()
    }

    /// Assign splits with the given proportions, stratified by each table's
    /// first-column label (a proxy for its class), deterministically.
    pub fn assign_splits(&mut self, spec: SplitSpec, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Group table indices by stratum. A BTreeMap visits strata in
        // ascending label order — the same order the previous
        // collect-keys-and-sort dance produced, so the rng stream (and
        // therefore every historical split) is unchanged.
        let mut strata: BTreeMap<LabelId, Vec<usize>> = BTreeMap::new();
        for (i, t) in self.tables.iter().enumerate() {
            let key = t.labels.first().copied().unwrap_or(LabelId(u32::MAX));
            strata.entry(key).or_default().push(i);
        }
        for (_, mut idxs) in strata {
            idxs.shuffle(&mut rng);
            let n = idxs.len();
            let n_test = ((n as f64) * spec.test).round() as usize;
            let n_val = ((n as f64) * spec.validation).round() as usize;
            for (pos, &i) in idxs.iter().enumerate() {
                self.split[i] = if pos < n_test {
                    Split::Test
                } else if pos < n_test + n_val {
                    Split::Validation
                } else {
                    Split::Train
                };
            }
        }
    }

    /// Split of table `i`.
    pub fn split_of(&self, i: usize) -> Split {
        self.split[i]
    }

    /// Indices of tables in a split.
    pub fn table_indices(&self, split: Split) -> Vec<usize> {
        (0..self.tables.len())
            .filter(|&i| self.split[i] == split)
            .collect()
    }

    /// Tables in a split.
    pub fn tables_in(&self, split: Split) -> impl Iterator<Item = &Table> {
        self.tables
            .iter()
            .zip(&self.split)
            .filter(move |&(_, &s)| s == split)
            .map(|(t, _)| t)
    }

    /// All `(column reference, label)` pairs in a split.
    pub fn columns_in(&self, split: Split) -> Vec<(ColumnRef, LabelId)> {
        let mut out = Vec::new();
        for t in self.tables_in(split) {
            for (c, &label) in t.labels.iter().enumerate() {
                out.push((
                    ColumnRef {
                        table: t.id,
                        column: c,
                    },
                    label,
                ));
            }
        }
        out
    }

    /// Keep only a fraction `p` of the *training* tables (deterministic per
    /// seed), leaving validation and test untouched. This is the paper's
    /// data-efficiency knob for Figure 9.
    pub fn subsample_train(&mut self, p: f64, seed: u64) {
        assert!((0.0..=1.0).contains(&p));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train_idxs = self.table_indices(Split::Train);
        train_idxs.shuffle(&mut rng);
        let keep = ((train_idxs.len() as f64) * p).round() as usize;
        for i in train_idxs.into_iter().skip(keep) {
            self.split[i] = Split::Unused;
        }
    }

    /// Label distribution over columns in a split.
    pub fn label_histogram(&self, split: Split) -> HashMap<LabelId, usize> {
        let mut h = HashMap::new();
        for (_, l) in self.columns_in(split) {
            *h.entry(l).or_insert(0) += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellValue;
    use crate::table::TableId;

    fn make_dataset(n_per_class: usize, n_classes: usize) -> Dataset {
        let mut vocab = LabelVocab::new();
        let labels: Vec<LabelId> = (0..n_classes)
            .map(|i| vocab.intern(&format!("class{i}")))
            .collect();
        let mut tables = Vec::new();
        let mut id = 0u32;
        for &l in &labels {
            for _ in 0..n_per_class {
                tables.push(Table::new(
                    TableId(id),
                    vec![],
                    vec![vec![CellValue::Text("x".into())]],
                    vec![l],
                ));
                id += 1;
            }
        }
        Dataset::new("toy", tables, vocab)
    }

    #[test]
    fn vocab_interning() {
        let mut v = LabelVocab::new();
        let a = v.intern("City");
        let b = v.intern("City");
        assert_eq!(a, b);
        assert_eq!(v.name(a), "City");
        assert_eq!(v.get("City"), Some(a));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn splits_follow_proportions() {
        let mut d = make_dataset(10, 5);
        d.assign_splits(SplitSpec::default(), 1);
        let train = d.table_indices(Split::Train).len();
        let val = d.table_indices(Split::Validation).len();
        let test = d.table_indices(Split::Test).len();
        assert_eq!(train + val + test, 50);
        assert_eq!(test, 10, "20% of 50");
        assert_eq!(val, 5, "10% of 50");
    }

    #[test]
    fn splits_are_stratified() {
        let mut d = make_dataset(10, 4);
        d.assign_splits(SplitSpec::default(), 3);
        let hist = d.label_histogram(Split::Test);
        // Each class contributes exactly 2 test tables (20% of 10).
        for (_, count) in hist {
            assert_eq!(count, 2);
        }
    }

    #[test]
    fn splits_are_deterministic() {
        let mut d1 = make_dataset(8, 3);
        let mut d2 = make_dataset(8, 3);
        d1.assign_splits(SplitSpec::default(), 42);
        d2.assign_splits(SplitSpec::default(), 42);
        for i in 0..d1.len() {
            assert_eq!(d1.split_of(i), d2.split_of(i));
        }
    }

    #[test]
    fn subsample_train_reduces_training_only() {
        let mut d = make_dataset(10, 5);
        d.assign_splits(SplitSpec::default(), 7);
        let test_before = d.table_indices(Split::Test);
        let train_before = d.table_indices(Split::Train).len();
        d.subsample_train(0.5, 9);
        let train_after = d.table_indices(Split::Train).len();
        assert_eq!(train_after, ((train_before as f64) * 0.5).round() as usize);
        assert_eq!(d.table_indices(Split::Test), test_before, "test set unchanged");
    }

    #[test]
    fn columns_in_collects_references() {
        let mut d = make_dataset(5, 2);
        d.assign_splits(SplitSpec::default(), 5);
        let cols = d.columns_in(Split::Train);
        assert_eq!(cols.len(), d.table_indices(Split::Train).len());
    }
}
