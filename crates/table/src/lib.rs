//! Tabular data model for the KGLink reproduction.
//!
//! Column type annotation (CTA) operates on relational web tables whose
//! columns carry semantic-type labels. This crate holds everything the
//! pipeline and every baseline share:
//!
//! * [`CellValue`] — typed cells with the rule-based *named entity schema*
//!   detector that decides which cells are numbers/dates (never linked to
//!   the KG, linking score 0 — paper §IV intro);
//! * [`Table`] — a table with headers, column-major cells, and per-column
//!   ground-truth labels;
//! * [`Dataset`] — a labeled corpus with a shared label vocabulary and the
//!   paper's stratified 7:1:2 train/validation/test split;
//! * [`metrics`] — accuracy, weighted/macro F1 and per-class reports, the
//!   evaluation metrics of every table in the paper.

#![deny(deprecated)]

pub mod cell;
pub mod csv;
pub mod dataset;
pub mod metrics;
pub mod table;

pub use cell::{CellValue, MentionKind};
pub use csv::{table_from_csv, CsvError};
pub use dataset::{Dataset, LabelId, LabelVocab, Split, SplitSpec};
pub use metrics::{per_class_report, ClassReport, EvalSummary};
pub use table::{ColumnRef, Table, TableId};
