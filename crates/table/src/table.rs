//! Tables: headers, column-major cells, and per-column labels.

use crate::cell::CellValue;
use crate::dataset::LabelId;
use serde::{Deserialize, Serialize};

/// Identifier of a table inside a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TableId(pub u32);

/// Reference to one column of one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ColumnRef {
    pub table: TableId,
    pub column: usize,
}

/// A relational web table.
///
/// Cells are stored column-major (`columns[c][r]`), matching how every stage
/// of the pipeline traverses them. All columns have the same number of rows;
/// missing values are [`CellValue::Empty`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    pub id: TableId,
    /// Optional header strings (may be empty — many VizNet tables have none).
    pub headers: Vec<String>,
    /// Column-major cells: `columns[c][r]`.
    pub columns: Vec<Vec<CellValue>>,
    /// Ground-truth semantic type per column.
    pub labels: Vec<LabelId>,
}

impl Table {
    /// Build a table from column-major data. Ragged columns are padded with
    /// [`CellValue::Empty`] to the longest column.
    ///
    /// # Panics
    /// Panics if `labels.len() != columns.len()`, or if `headers` is
    /// non-empty with a mismatched length.
    pub fn new(
        id: TableId,
        headers: Vec<String>,
        mut columns: Vec<Vec<CellValue>>,
        labels: Vec<LabelId>,
    ) -> Self {
        assert_eq!(columns.len(), labels.len(), "one label per column");
        assert!(
            headers.is_empty() || headers.len() == columns.len(),
            "headers must match column count when present"
        );
        let rows = columns.iter().map(Vec::len).max().unwrap_or(0);
        for col in &mut columns {
            col.resize(rows, CellValue::Empty);
        }
        Table {
            id,
            headers,
            columns,
            labels,
        }
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Cell at `(row, col)`.
    #[inline]
    pub fn cell(&self, row: usize, col: usize) -> &CellValue {
        &self.columns[col][row]
    }

    /// One column's cells.
    #[inline]
    pub fn column(&self, col: usize) -> &[CellValue] {
        &self.columns[col]
    }

    /// Whether a column is numeric per the paper's Table III definition:
    /// every non-empty cell is a number or date, and at least one such cell
    /// exists.
    pub fn is_numeric_column(&self, col: usize) -> bool {
        let mut any = false;
        for cell in &self.columns[col] {
            match cell {
                CellValue::Number(_) | CellValue::Date(_) => any = true,
                CellValue::Empty => {}
                CellValue::Text(_) => return false,
            }
        }
        any
    }

    /// Mean, variance and median of a column's numeric cells. Dates count
    /// via their leading year. Returns `None` if the column has no numeric
    /// content. KGLink injects these three statistics in place of candidate
    /// types for numeric columns (paper §III-A step 3).
    pub fn numeric_stats(&self, col: usize) -> Option<NumericStats> {
        let mut values: Vec<f64> = self.columns[col]
            .iter()
            .filter_map(|c| match c {
                CellValue::Number(n) => Some(*n),
                CellValue::Date(d) => d.get(..4).and_then(|y| y.parse::<f64>().ok()),
                _ => None,
            })
            .collect();
        if values.is_empty() {
            return None;
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        values.sort_by(|a, b| a.total_cmp(b));
        let median = values[values.len() / 2];
        Some(NumericStats {
            mean,
            variance,
            median,
        })
    }

    /// Project onto a subset of rows (used by the row filter). Row indices
    /// may repeat and are taken in the given order.
    pub fn select_rows(&self, rows: &[usize]) -> Table {
        let columns = self
            .columns
            .iter()
            .map(|col| rows.iter().map(|&r| col[r].clone()).collect())
            .collect();
        Table {
            id: self.id,
            headers: self.headers.clone(),
            columns,
            labels: self.labels.clone(),
        }
    }

    /// Split into chunks of at most `max_cols` columns, preserving order.
    /// The paper: "we impose a maximum limit of 8 columns per table. If a
    /// table contains more than 8 columns, we divide it into multiple tables
    /// … and conduct the encoding and annotation process separately."
    pub fn split_columns(&self, max_cols: usize) -> Vec<Table> {
        assert!(max_cols > 0);
        if self.n_cols() <= max_cols {
            return vec![self.clone()];
        }
        let mut out = Vec::new();
        let mut start = 0;
        while start < self.n_cols() {
            let end = (start + max_cols).min(self.n_cols());
            out.push(Table {
                id: self.id,
                headers: if self.headers.is_empty() {
                    Vec::new()
                } else {
                    self.headers[start..end].to_vec()
                },
                columns: self.columns[start..end].to_vec(),
                labels: self.labels[start..end].to_vec(),
            });
            start = end;
        }
        out
    }
}

/// Summary statistics of a numeric column.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NumericStats {
    pub mean: f64,
    pub variance: f64,
    pub median: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells(vals: &[&str]) -> Vec<CellValue> {
        vals.iter().map(|v| CellValue::parse(v)).collect()
    }

    fn sample() -> Table {
        Table::new(
            TableId(0),
            vec!["name".into(), "team".into(), "height".into()],
            vec![
                cells(&["Alice Smith", "Bob Jones"]),
                cells(&["Hawks", "Tigers"]),
                cells(&["180", "", "190"]),
            ],
            vec![LabelId(0), LabelId(1), LabelId(2)],
        )
    }

    #[test]
    fn ragged_columns_are_padded() {
        let t = sample();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.cell(2, 0), &CellValue::Empty);
        assert_eq!(t.cell(2, 2), &CellValue::Number(190.0));
    }

    #[test]
    fn numeric_column_detection() {
        let t = sample();
        assert!(!t.is_numeric_column(0));
        assert!(t.is_numeric_column(2), "empty cells do not break numeric-ness");
        let all_empty = Table::new(TableId(1), vec![], vec![cells(&["", ""])], vec![LabelId(0)]);
        assert!(!all_empty.is_numeric_column(0), "all-empty column is not numeric");
    }

    #[test]
    fn numeric_stats_mean_variance_median() {
        let t = Table::new(
            TableId(2),
            vec![],
            vec![cells(&["1", "2", "3", "4"])],
            vec![LabelId(0)],
        );
        let s = t.numeric_stats(0).unwrap();
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.variance, 1.25);
        assert_eq!(s.median, 3.0);
        assert!(sample().numeric_stats(0).is_none());
    }

    #[test]
    fn dates_contribute_years_to_stats() {
        let t = Table::new(
            TableId(3),
            vec![],
            vec![cells(&["1990-04-01", "2000"])],
            vec![LabelId(0)],
        );
        let s = t.numeric_stats(0).unwrap();
        assert_eq!(s.mean, 1995.0);
    }

    #[test]
    fn select_rows_projects_in_order() {
        let t = sample();
        let sel = t.select_rows(&[1, 0]);
        assert_eq!(sel.n_rows(), 2);
        assert_eq!(sel.cell(0, 0), &CellValue::Text("Bob Jones".into()));
        assert_eq!(sel.cell(1, 0), &CellValue::Text("Alice Smith".into()));
        assert_eq!(sel.labels, t.labels);
    }

    #[test]
    fn split_columns_chunks_wide_tables() {
        let cols: Vec<Vec<CellValue>> = (0..10).map(|i| cells(&[&i.to_string()])).collect();
        let labels = (0..10).map(LabelId).collect();
        let t = Table::new(TableId(4), vec![], cols, labels);
        let parts = t.split_columns(8);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].n_cols(), 8);
        assert_eq!(parts[1].n_cols(), 2);
        assert_eq!(parts[1].labels, vec![LabelId(8), LabelId(9)]);
        // Narrow table returned unchanged.
        assert_eq!(sample().split_columns(8).len(), 1);
    }

    #[test]
    #[should_panic(expected = "one label per column")]
    fn mismatched_labels_panic() {
        Table::new(TableId(0), vec![], vec![cells(&["a"])], vec![]);
    }
}
