//! Minimal CSV ingestion — the adoption path for annotating real tables.
//!
//! Hand-rolled (no external dependency): handles quoted fields with
//! embedded commas/newlines and doubled quotes, header detection, and
//! typed-cell parsing through [`CellValue::parse`].

use crate::cell::CellValue;
use crate::dataset::LabelId;
use crate::table::{Table, TableId};

/// CSV parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A quoted field was never closed.
    UnterminatedQuote { line: usize },
    /// The input contained no rows.
    Empty,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::UnterminatedQuote { line } => {
                write!(f, "unterminated quoted field starting on line {line}")
            }
            CsvError::Empty => write!(f, "empty CSV input"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Split CSV text into records of raw fields.
pub fn parse_records(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut quote_start_line = 1usize;
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push('\n');
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' => {
                    in_quotes = true;
                    quote_start_line = line;
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => {
                    line += 1;
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote {
            line: quote_start_line,
        });
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    // Drop fully-empty trailing records.
    records.retain(|r| !(r.len() == 1 && r[0].is_empty()));
    if !any || records.is_empty() {
        return Err(CsvError::Empty);
    }
    Ok(records)
}

/// How [`table_from_csv_with`] treats the first record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HeaderMode {
    /// Sniff with [`looks_like_header`].
    #[default]
    Auto,
    /// The first record is a header.
    Present,
    /// Every record is data.
    Absent,
}

/// Header sniffer, in the spirit of Python's `csv.Sniffer`: the first
/// record is a header when none of its fields parse as a number or date
/// and either (a) some column's body is mostly numeric under a text head,
/// or (b) no first-row field reappears in its own column's body.
///
/// Like every sniffer this is a heuristic — an all-text, headerless table
/// whose first row happens to be unique will be misjudged; pass
/// [`HeaderMode::Absent`] when you know better.
pub fn looks_like_header(records: &[Vec<String>]) -> bool {
    if records.len() < 2 {
        return false;
    }
    let first = &records[0];
    let n_cols = first.len();
    let mut numeric_signal = false;
    let mut any_head_reappears = false;
    for c in 0..n_cols {
        let head = first.get(c).map(String::as_str).unwrap_or("");
        if matches!(CellValue::parse(head), CellValue::Number(_) | CellValue::Date(_)) {
            return false; // numeric heads are data
        }
        let body_numeric = records[1..]
            .iter()
            .filter(|r| {
                matches!(
                    CellValue::parse(r.get(c).map(String::as_str).unwrap_or("")),
                    CellValue::Number(_) | CellValue::Date(_)
                )
            })
            .count();
        if body_numeric * 2 > records.len() - 1 {
            numeric_signal = true;
        }
        if records[1..]
            .iter()
            .any(|r| r.get(c).map(String::as_str) == Some(head))
        {
            any_head_reappears = true;
        }
    }
    numeric_signal || !any_head_reappears
}

/// Parse CSV text into a [`Table`] with header auto-detection. Column
/// labels are initialized to `LabelId(0)` — the annotator fills them in.
/// Ragged rows are padded.
pub fn table_from_csv(id: TableId, text: &str) -> Result<Table, CsvError> {
    table_from_csv_with(id, text, HeaderMode::Auto)
}

/// Parse CSV text into a [`Table`] with explicit header handling.
pub fn table_from_csv_with(id: TableId, text: &str, mode: HeaderMode) -> Result<Table, CsvError> {
    let records = parse_records(text)?;
    let has_header = match mode {
        HeaderMode::Auto => looks_like_header(&records),
        HeaderMode::Present => true,
        HeaderMode::Absent => false,
    };
    let (headers, body) = if has_header {
        (records[0].clone(), &records[1..])
    } else {
        (Vec::new(), &records[..])
    };
    if body.is_empty() {
        return Err(CsvError::Empty);
    }
    let n_cols = body.iter().map(Vec::len).max().unwrap_or(0);
    let mut columns: Vec<Vec<CellValue>> = vec![Vec::with_capacity(body.len()); n_cols];
    for row in body {
        for (c, col) in columns.iter_mut().enumerate() {
            let raw = row.get(c).map(String::as_str).unwrap_or("");
            col.push(CellValue::parse(raw));
        }
    }
    let labels = vec![LabelId(0); n_cols];
    let headers = if has_header {
        let mut h = headers;
        h.resize(n_cols, String::new());
        h
    } else {
        Vec::new()
    };
    Ok(Table::new(id, headers, columns, labels))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_csv() {
        let t = table_from_csv(TableId(0), "name,team\nAlice,Hawks\nBob,Tigers\n").unwrap();
        assert_eq!(t.headers, vec!["name", "team"]);
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.cell(0, 0), &CellValue::Text("Alice".into()));
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let recs = parse_records("a,\"x, y\",\"he said \"\"hi\"\"\"\n1,2,3\n").unwrap();
        assert_eq!(recs[0], vec!["a", "x, y", "he said \"hi\""]);
        assert_eq!(recs[1], vec!["1", "2", "3"]);
    }

    #[test]
    fn quoted_newline_stays_in_field() {
        let recs = parse_records("\"line1\nline2\",b\n").unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0][0], "line1\nline2");
    }

    #[test]
    fn unterminated_quote_errors() {
        assert_eq!(
            parse_records("a,\"oops\nmore"),
            Err(CsvError::UnterminatedQuote { line: 1 })
        );
    }

    #[test]
    fn empty_input_errors() {
        assert_eq!(parse_records(""), Err(CsvError::Empty));
        assert!(table_from_csv(TableId(0), "\n\n").is_err());
    }

    #[test]
    fn header_detection() {
        let with = parse_records("height,age\n180,25\n190,30\n").unwrap();
        assert!(looks_like_header(&with));
        let without = parse_records("180,25\n190,30\n").unwrap();
        assert!(!looks_like_header(&without));
        // All-text table whose head values recur in the body: no header.
        let recurring = parse_records("Hawks,red\nTigers,blue\nHawks,red\n").unwrap();
        assert!(!looks_like_header(&recurring));
    }

    #[test]
    fn explicit_header_modes_override_sniffing() {
        let text = "Alice,Hawks\nBob,Tigers\n";
        let forced = table_from_csv_with(TableId(9), text, HeaderMode::Present).unwrap();
        assert_eq!(forced.headers, vec!["Alice", "Hawks"]);
        assert_eq!(forced.n_rows(), 1);
        let data = table_from_csv_with(TableId(9), text, HeaderMode::Absent).unwrap();
        assert!(data.headers.is_empty());
        assert_eq!(data.n_rows(), 2);
    }

    #[test]
    fn headerless_table_has_no_headers() {
        let t = table_from_csv(TableId(1), "1,2\n3,4\n").unwrap();
        assert!(t.headers.is_empty());
        assert_eq!(t.n_rows(), 2);
        assert!(t.is_numeric_column(0));
    }

    #[test]
    fn ragged_rows_are_padded() {
        let t = table_from_csv(TableId(2), "name,team\nAlice,Hawks\nBob\n").unwrap();
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.cell(1, 1), &CellValue::Empty);
    }

    #[test]
    fn crlf_line_endings() {
        let t = table_from_csv(TableId(3), "name,team\r\nAlice,Hawks\r\n").unwrap();
        assert_eq!(t.n_rows(), 1);
        assert_eq!(t.cell(0, 1), &CellValue::Text("Hawks".into()));
    }

    #[test]
    fn typed_cells_come_from_parse() {
        let t = table_from_csv(TableId(4), "city,population\nSpringfield,30000\n").unwrap();
        assert_eq!(t.cell(0, 1), &CellValue::Number(30000.0));
    }
}
