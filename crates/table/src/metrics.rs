//! CTA evaluation metrics: accuracy, weighted/macro F1, per-class reports.
//!
//! These mirror scikit-learn's definitions, which is what the paper (and
//! every baseline it cites) reports: *weighted F1* averages per-class F1
//! weighted by class support in the ground truth.

use crate::dataset::LabelId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Aggregate evaluation result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalSummary {
    /// Fraction of columns whose predicted label equals the ground truth.
    pub accuracy: f64,
    /// Support-weighted mean of per-class F1.
    pub weighted_f1: f64,
    /// Unweighted mean of per-class F1 over classes with support.
    pub macro_f1: f64,
    /// Number of evaluated columns.
    pub support: usize,
}

impl EvalSummary {
    /// Compute metrics from parallel prediction/truth slices.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn compute(predictions: &[LabelId], truths: &[LabelId]) -> Self {
        assert_eq!(predictions.len(), truths.len());
        let n = truths.len();
        if n == 0 {
            return EvalSummary {
                accuracy: 0.0,
                weighted_f1: 0.0,
                macro_f1: 0.0,
                support: 0,
            };
        }
        let correct = predictions
            .iter()
            .zip(truths)
            .filter(|(p, t)| p == t)
            .count();
        let report = per_class_report(predictions, truths);
        let mut weighted = 0.0;
        let mut macro_sum = 0.0;
        let mut classes = 0usize;
        for r in report.values() {
            if r.support > 0 {
                weighted += r.f1 * r.support as f64;
                macro_sum += r.f1;
                classes += 1;
            }
        }
        EvalSummary {
            accuracy: correct as f64 / n as f64,
            weighted_f1: weighted / n as f64,
            macro_f1: if classes > 0 {
                macro_sum / classes as f64
            } else {
                0.0
            },
            support: n,
        }
    }

    /// Accuracy as a percentage, the unit used in the paper's tables.
    pub fn accuracy_pct(&self) -> f64 {
        self.accuracy * 100.0
    }

    /// Weighted F1 as a percentage.
    pub fn weighted_f1_pct(&self) -> f64 {
        self.weighted_f1 * 100.0
    }
}

/// Precision/recall/F1/support for one class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassReport {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    /// Ground-truth occurrences of this class.
    pub support: usize,
}

/// Per-class precision/recall/F1.
pub fn per_class_report(
    predictions: &[LabelId],
    truths: &[LabelId],
) -> HashMap<LabelId, ClassReport> {
    assert_eq!(predictions.len(), truths.len());
    let mut tp: HashMap<LabelId, usize> = HashMap::new();
    let mut fp: HashMap<LabelId, usize> = HashMap::new();
    let mut fn_: HashMap<LabelId, usize> = HashMap::new();
    let mut support: HashMap<LabelId, usize> = HashMap::new();
    for (&p, &t) in predictions.iter().zip(truths) {
        *support.entry(t).or_insert(0) += 1;
        if p == t {
            *tp.entry(t).or_insert(0) += 1;
        } else {
            *fp.entry(p).or_insert(0) += 1;
            *fn_.entry(t).or_insert(0) += 1;
        }
    }
    let mut all_classes: Vec<LabelId> = support
        .keys()
        .chain(fp.keys())
        .copied()
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    all_classes.sort_unstable();
    let mut out = HashMap::with_capacity(all_classes.len());
    for c in all_classes {
        let tp_c = *tp.get(&c).unwrap_or(&0) as f64;
        let fp_c = *fp.get(&c).unwrap_or(&0) as f64;
        let fn_c = *fn_.get(&c).unwrap_or(&0) as f64;
        let precision = if tp_c + fp_c > 0.0 { tp_c / (tp_c + fp_c) } else { 0.0 };
        let recall = if tp_c + fn_c > 0.0 { tp_c / (tp_c + fn_c) } else { 0.0 };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        out.insert(
            c,
            ClassReport {
                precision,
                recall,
                f1,
                support: *support.get(&c).unwrap_or(&0),
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(ids: &[u32]) -> Vec<LabelId> {
        ids.iter().map(|&i| LabelId(i)).collect()
    }

    #[test]
    fn perfect_predictions() {
        let s = EvalSummary::compute(&l(&[0, 1, 2]), &l(&[0, 1, 2]));
        assert_eq!(s.accuracy, 1.0);
        assert_eq!(s.weighted_f1, 1.0);
        assert_eq!(s.macro_f1, 1.0);
        assert_eq!(s.support, 3);
    }

    #[test]
    fn all_wrong_predictions() {
        let s = EvalSummary::compute(&l(&[1, 2, 0]), &l(&[0, 1, 2]));
        assert_eq!(s.accuracy, 0.0);
        assert_eq!(s.weighted_f1, 0.0);
    }

    #[test]
    fn weighted_f1_matches_sklearn_example() {
        // truths:      [0,0,0,0, 1,1]  preds: [0,0,0,1, 1,0]
        // class0: tp=3 fp=1 fn=1 -> p=0.75 r=0.75 f1=0.75, support 4
        // class1: tp=1 fp=1 fn=1 -> p=0.5  r=0.5  f1=0.5,  support 2
        // weighted = (0.75*4 + 0.5*2)/6 = 4/6 ≈ 0.6667
        let s = EvalSummary::compute(&l(&[0, 0, 0, 1, 1, 0]), &l(&[0, 0, 0, 0, 1, 1]));
        assert!((s.weighted_f1 - 2.0 / 3.0).abs() < 1e-9, "{}", s.weighted_f1);
        assert!((s.accuracy - 4.0 / 6.0).abs() < 1e-9);
        assert!((s.macro_f1 - 0.625).abs() < 1e-9);
    }

    #[test]
    fn per_class_report_details() {
        let preds = l(&[0, 0, 1, 2]);
        let truths = l(&[0, 1, 1, 1]);
        let report = per_class_report(&preds, &truths);
        let c0 = report[&LabelId(0)];
        assert_eq!(c0.support, 1);
        assert!((c0.precision - 0.5).abs() < 1e-9);
        assert_eq!(c0.recall, 1.0);
        let c1 = report[&LabelId(1)];
        assert_eq!(c1.support, 3);
        assert_eq!(c1.precision, 1.0);
        assert!((c1.recall - 1.0 / 3.0).abs() < 1e-9);
        // Class 2 was predicted but never true: precision 0, support 0.
        let c2 = report[&LabelId(2)];
        assert_eq!(c2.support, 0);
        assert_eq!(c2.precision, 0.0);
    }

    #[test]
    fn empty_input() {
        let s = EvalSummary::compute(&[], &[]);
        assert_eq!(s.support, 0);
        assert_eq!(s.accuracy, 0.0);
    }

    #[test]
    fn percentage_helpers() {
        let s = EvalSummary::compute(&l(&[0, 0]), &l(&[0, 1]));
        assert!((s.accuracy_pct() - 50.0).abs() < 1e-9);
        assert!(s.weighted_f1_pct() <= 100.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        EvalSummary::compute(&l(&[0]), &l(&[0, 1]));
    }
}
