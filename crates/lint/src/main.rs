//! kglink-lint CLI.
//!
//! ```text
//! kglink-lint --workspace --deny-all            # lint the whole workspace, fail on findings
//! kglink-lint --workspace --json                # ... and export results/lint.jsonl
//! kglink-lint --deny-all crates/lint/tests/corpus   # lint explicit paths (.rs + .rsfix)
//! kglink-lint --self-test                       # fixture corpus meta-gate
//! kglink-lint --list-rules                      # rule catalog
//! ```
//!
//! Exit codes: 0 clean, 1 findings under `--deny-all` (or a failed
//! self-test), 2 usage/environment errors. Without `--deny-all` the run is
//! advisory: findings are printed but the exit code stays 0.

use kglink_lint::engine::{find_workspace_root, lint_inputs, load_inputs, workspace_files, Input};
use kglink_lint::fixtures::{self, parse_fixture};
use kglink_lint::rules::{all_rules, graph_rules, META_RULES};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
usage: kglink-lint [--workspace] [--deny-all] [--json] [--json-path <file>]
                   [--quiet] [--list-rules] [--self-test [<corpus-dir>]] [PATH...]

  --workspace    lint every .rs file in the enclosing cargo workspace
  --deny-all     exit 1 if any finding survives suppression (CI mode)
  --json         export findings as JSONL to results/lint.jsonl
  --json-path    override the JSONL output path (implies --json)
  --quiet        suppress per-finding lines; print the summary only
  --list-rules   print the rule catalog (ids + one-line descriptions)
  --self-test    lint the fixture corpus against its //@ expect directives;
                 fails if any rule went blind or grew a false positive
  PATH...        extra files or directories to lint (.rs, plus .rsfix
                 fixtures scoped by their //@ path / //@ file directives)";

struct Opts {
    workspace: bool,
    deny_all: bool,
    json: Option<PathBuf>,
    quiet: bool,
    list_rules: bool,
    self_test: bool,
    corpus_dir: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        workspace: false,
        deny_all: false,
        json: None,
        quiet: false,
        list_rules: false,
        self_test: false,
        corpus_dir: None,
        paths: Vec::new(),
    };
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => o.workspace = true,
            "--deny-all" => o.deny_all = true,
            "--json" => {
                o.json.get_or_insert_with(|| PathBuf::from("results/lint.jsonl"));
            }
            "--json-path" => {
                let p = it.next().ok_or("--json-path needs a file argument")?;
                o.json = Some(PathBuf::from(p));
            }
            "--quiet" | "-q" => o.quiet = true,
            "--list-rules" => o.list_rules = true,
            "--self-test" => {
                o.self_test = true;
                if let Some(next) = it.peek() {
                    if !next.starts_with('-') {
                        o.corpus_dir = Some(PathBuf::from(it.next().map(String::as_str).unwrap_or("")));
                    }
                }
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            path => o.paths.push(PathBuf::from(path)),
        }
    }
    Ok(o)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("kglink-lint: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in all_rules() {
            println!("{:28} {}", rule.id(), rule.describe());
        }
        for rule in graph_rules() {
            println!("{:28} {}", rule.id(), rule.describe());
        }
        for (id, desc) in META_RULES {
            println!("{id:28} {desc}");
        }
        return ExitCode::SUCCESS;
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("kglink-lint: cannot determine working directory: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match find_workspace_root(&cwd) {
        Some(r) => r,
        None => {
            eprintln!("kglink-lint: no [workspace] Cargo.toml found above {}", cwd.display());
            return ExitCode::from(2);
        }
    };

    if opts.self_test {
        let dir = opts
            .corpus_dir
            .unwrap_or_else(|| root.join("crates/lint/tests/corpus"));
        let outcome = fixtures::run_corpus(&dir);
        for m in &outcome.mismatches {
            eprintln!("self-test: {m}");
        }
        println!("self-test: {}", outcome.summary());
        return if outcome.ok() {
            ExitCode::SUCCESS
        } else {
            eprintln!("self-test: FAILED — the fixture corpus no longer pins the rule set");
            ExitCode::FAILURE
        };
    }

    if !opts.workspace && opts.paths.is_empty() {
        eprintln!("kglink-lint: nothing to lint (pass --workspace or paths)\n{USAGE}");
        return ExitCode::from(2);
    }

    // Assemble inputs: the workspace walk (.rs only), then explicit paths,
    // where .rsfix fixtures are loaded under their declared virtual path.
    let mut errors = Vec::new();
    let mut inputs: Vec<Input> = Vec::new();
    if opts.workspace {
        let files = workspace_files(&root);
        inputs.extend(load_inputs(&root, &files, &mut errors));
    }
    for p in &opts.paths {
        let abs = if p.is_absolute() { p.clone() } else { cwd.join(p) };
        let mut files: Vec<PathBuf> = Vec::new();
        if abs.is_dir() {
            files.extend(workspace_files(&abs));
            files.extend(fixtures::corpus_files(&abs));
        } else {
            files.push(abs.clone());
        }
        if files.is_empty() {
            eprintln!("kglink-lint: no lintable files under {}", p.display());
        }
        for f in files {
            if f.extension().is_some_and(|e| e == "rsfix") {
                match fs::read_to_string(&f).map_err(|e| e.to_string()).and_then(|text| {
                    parse_fixture(&f, text).map_err(|e| e.to_string())
                }) {
                    Ok(fixture) => inputs.extend(
                        fixture
                            .files
                            .into_iter()
                            .map(|(path, text)| Input { path, text }),
                    ),
                    Err(e) => {
                        eprintln!("kglink-lint: {e}");
                        return ExitCode::from(2);
                    }
                }
            } else {
                inputs.extend(load_inputs(&root, &[f], &mut errors));
            }
        }
    }

    let mut report = lint_inputs(inputs, None);
    report.findings.extend(errors);
    report.sort();

    if !opts.quiet {
        for f in &report.findings {
            println!("{}", f.render());
        }
    }
    println!("kglink-lint: {}", report.summary());

    if let Some(json_path) = &opts.json {
        // Per-rule timing is stdout-only: lint.jsonl must stay byte-identical
        // across runs (see the determinism test), and wall-clock is not.
        for (rule, micros) in &report.timings {
            println!("kglink-lint: timing {rule:28} {micros:>8} µs");
        }
        if !report.suppressed_by_rule.is_empty() {
            let audit: Vec<String> = report
                .suppressed_by_rule
                .iter()
                .map(|(rule, n)| format!("{rule}={n}"))
                .collect();
            println!("kglink-lint: suppression audit: {}", audit.join(", "));
        }
        let json_path = if json_path.is_absolute() {
            json_path.clone()
        } else {
            root.join(json_path)
        };
        if let Err(e) = write_jsonl(&json_path, &report) {
            eprintln!("kglink-lint: cannot write {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
        println!("kglink-lint: wrote {}", json_path.display());
    }

    if opts.deny_all && !report.findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Findings as JSONL (stable rule ids in each record), closed by one
/// deterministic suppression-audit record. No timings: the file is diffed
/// byte-for-byte across runs.
fn write_jsonl(path: &Path, report: &kglink_lint::Report) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut out = fs::File::create(path)?;
    for f in &report.findings {
        writeln!(out, "{}", f.to_json())?;
    }
    writeln!(out, "{}", report.audit_json())?;
    out.flush()
}
