//! A comment/string/raw-string-aware Rust lexer.
//!
//! Deliberately *not* a full Rust lexer: it produces a token tiling that is
//! exact enough for invariant linting — identifiers, punctuation, numeric /
//! string / char literals, lifetimes, and trivia (whitespace + comments) —
//! without external dependencies (`syn` is off the table; the workspace
//! builds offline against vendored stubs only).
//!
//! Two hard guarantees, both property-tested in `tests/lexer_prop.rs`:
//!
//! 1. **Never panics**, for arbitrary input (including invalid Rust,
//!    unterminated strings/comments, and non-ASCII text).
//! 2. **Round-trips**: tokens tile the input exactly — concatenating every
//!    token's span reproduces the source byte-for-byte.
//!
//! Known deviations from rustc's lexer, all harmless for linting purposes:
//! `1.` lexes as `Num(1)` + `Punct(.)`, and a float method call like
//! `1.0e3.sqrt()` splits at the method dot. Nested block comments and raw
//! strings with arbitrary `#` counts are handled correctly.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Run of whitespace (including newlines).
    Whitespace,
    /// `// ...` up to (not including) the newline. Doc comments included.
    LineComment,
    /// `/* ... */`, nested, possibly unterminated (runs to EOF).
    BlockComment,
    /// Identifier or keyword, e.g. `fn`, `unwrap`, `HashMap`.
    Ident,
    /// `'a`, `'_` — a lifetime or loop label.
    Lifetime,
    /// Numeric literal (int or float, any base, with suffix).
    Num,
    /// `"..."`, `b"..."`, `c"..."` — escaped string literal (prefix included).
    Str,
    /// `r"..."`, `r#"..."#`, `br#"..."#` — raw string literal.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'` — char or byte literal.
    Char,
    /// Any single other character (`.`, `!`, `::` is two of these, …).
    Punct,
}

/// One token: a classified byte span of the source plus its 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    /// Byte offset of the first byte of the span.
    pub start: usize,
    /// Byte offset one past the last byte of the span.
    pub end: usize,
    /// 1-based line number of the span's first byte.
    pub line: u32,
}

impl Tok {
    /// The token's text. `src` must be the string the token was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// True for whitespace and comments.
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
        )
    }
}

/// Character cursor over the source. All consumption goes through `bump`,
/// which maintains the byte offset and line count, so spans are always on
/// char boundaries and line numbers are always consistent.
struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    /// Byte offset of the next un-consumed char.
    offset: usize,
    /// 1-based line of the next un-consumed char.
    line: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars().peekable(),
            offset: 0,
            line: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    /// Peek `n` chars ahead (0 = same as `peek`). O(n), used only with n ≤ 2.
    fn peek_nth(&self, n: usize) -> Option<char> {
        self.chars.clone().nth(n)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        self.offset += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn bump_while(&mut self, mut pred: impl FnMut(char) -> bool) {
        while let Some(c) = self.peek() {
            if !pred(c) {
                break;
            }
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lex `src` into a complete tiling of tokens. Total function: never panics,
/// and the concatenation of all spans equals `src`.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor::new(src);
    let mut toks = Vec::new();
    while let Some(c) = cur.peek() {
        let start = cur.offset;
        let line = cur.line;
        let kind = lex_one(&mut cur, c);
        // lex_one always consumes at least one char, but guard against a
        // logic bug turning into an infinite loop: force progress.
        if cur.offset == start {
            cur.bump();
        }
        toks.push(Tok {
            kind,
            start,
            end: cur.offset,
            line,
        });
    }
    toks
}

/// Dispatch on the first character; consumes one full token.
fn lex_one(cur: &mut Cursor<'_>, c: char) -> TokKind {
    if c.is_whitespace() {
        cur.bump_while(|c| c.is_whitespace());
        return TokKind::Whitespace;
    }
    if c == '/' {
        return match cur.peek_nth(1) {
            Some('/') => {
                cur.bump_while(|c| c != '\n');
                TokKind::LineComment
            }
            Some('*') => {
                lex_block_comment(cur);
                TokKind::BlockComment
            }
            _ => {
                cur.bump();
                TokKind::Punct
            }
        };
    }
    if c == '"' {
        lex_quoted(cur);
        return TokKind::Str;
    }
    if c == '\'' {
        return lex_char_or_lifetime(cur);
    }
    if c.is_ascii_digit() {
        lex_number(cur);
        return TokKind::Num;
    }
    if is_ident_start(c) {
        return lex_ident_or_prefixed_literal(cur);
    }
    cur.bump();
    TokKind::Punct
}

/// `/* ... */` with nesting; unterminated comments run to EOF.
fn lex_block_comment(cur: &mut Cursor<'_>) {
    cur.bump(); // '/'
    cur.bump(); // '*'
    let mut depth = 1u32;
    while depth > 0 {
        match cur.peek() {
            None => return,
            Some('*') if cur.peek_nth(1) == Some('/') => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            Some('/') if cur.peek_nth(1) == Some('*') => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            Some(_) => {
                cur.bump();
            }
        }
    }
}

/// `"..."` with `\`-escapes; unterminated strings run to EOF.
fn lex_quoted(cur: &mut Cursor<'_>) {
    cur.bump(); // opening '"'
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump(); // whatever is escaped, even a quote
            }
            '"' => return,
            _ => {}
        }
    }
}

/// Disambiguate `'a` (lifetime / label) from `'x'` / `'\n'` (char literal).
fn lex_char_or_lifetime(cur: &mut Cursor<'_>) -> TokKind {
    // A quote followed by an escape is always a char literal.
    if cur.peek_nth(1) == Some('\\') {
        cur.bump(); // '\''
        cur.bump(); // '\\'
        cur.bump(); // escaped char
        // Consume to the closing quote (handles '\u{1F600}').
        cur.bump_while(|c| c != '\'' && c != '\n');
        if cur.peek() == Some('\'') {
            cur.bump();
        }
        return TokKind::Char;
    }
    // 'X' — exactly one char then a closing quote.
    if cur.peek_nth(2) == Some('\'') {
        cur.bump();
        cur.bump();
        cur.bump();
        return TokKind::Char;
    }
    // Otherwise a lifetime or loop label: consume the quote + ident run.
    cur.bump();
    cur.bump_while(is_ident_continue);
    TokKind::Lifetime
}

/// Numeric literal: `0x1f_u32`, `1_000`, `1.5e-3f64`, …
fn lex_number(cur: &mut Cursor<'_>) {
    let radix_prefixed = cur.peek() == Some('0')
        && matches!(cur.peek_nth(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
    if radix_prefixed {
        cur.bump();
        cur.bump();
        cur.bump_while(|c| c.is_ascii_alphanumeric() || c == '_');
        return;
    }
    cur.bump_while(|c| c.is_ascii_digit() || c == '_');
    // Fractional part only when followed by a digit, so `1..2` and
    // `x.1.max(y)` split correctly for our purposes.
    if cur.peek() == Some('.') && cur.peek_nth(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        cur.bump_while(|c| c.is_ascii_digit() || c == '_');
    }
    // Exponent.
    if matches!(cur.peek(), Some('e' | 'E')) {
        let (sign, first_digit) = (cur.peek_nth(1), cur.peek_nth(2));
        if sign.is_some_and(|c| c.is_ascii_digit()) {
            cur.bump();
            cur.bump_while(|c| c.is_ascii_digit() || c == '_');
        } else if matches!(sign, Some('+' | '-')) && first_digit.is_some_and(|c| c.is_ascii_digit())
        {
            cur.bump();
            cur.bump();
            cur.bump_while(|c| c.is_ascii_digit() || c == '_');
        }
    }
    // Type suffix (`u32`, `f64`, `usize`).
    cur.bump_while(|c| c.is_ascii_alphanumeric() || c == '_');
}

/// An identifier, unless it is a literal prefix (`r`, `b`, `br`, `rb`, `c`,
/// `cr`) immediately followed by a string/char opener.
fn lex_ident_or_prefixed_literal(cur: &mut Cursor<'_>) -> TokKind {
    let start = cur.offset;
    cur.bump_while(is_ident_continue);
    let len = cur.offset - start;
    // Only 1–2 byte prefixes can introduce literals; longer idents never do.
    if len > 2 {
        return TokKind::Ident;
    }
    let raw_capable = {
        // We cannot slice src here (no reference kept); re-derive from length
        // and the chars we can still see is impossible, so the caller-visible
        // contract is simpler: treat any 1–2 char ident followed by a literal
        // opener as a prefix. rustc would reject invalid prefixes anyway, and
        // for linting, classifying `x"…"` as a string is the safe direction.
        true
    };
    match cur.peek() {
        Some('"') => {
            lex_quoted(cur);
            TokKind::Str
        }
        Some('#') if raw_capable && raw_string_follows(cur) => {
            lex_raw_string(cur);
            TokKind::RawStr
        }
        Some('\'') if len == 1 => {
            // b'x' byte literal; 'peek_nth' from the quote mirrors
            // lex_char_or_lifetime's disambiguation.
            match lex_char_or_lifetime(cur) {
                TokKind::Char => TokKind::Char,
                // `b'static` — a prefix then a lifetime: re-classify as ident
                // plus the lifetime we already consumed. Spans must tile, so
                // keep it one token; Lifetime is the closest classification.
                other => other,
            }
        }
        _ => TokKind::Ident,
    }
}

/// After a potential raw prefix, check `#...#"` actually opens a raw string.
fn raw_string_follows(cur: &mut Cursor<'_>) -> bool {
    let mut look = cur.chars.clone();
    loop {
        match look.next() {
            Some('#') => continue,
            Some('"') => return true,
            _ => return false,
        }
    }
}

/// `r#"..."#` (any number of `#`, including zero handled by the `"` arm of
/// the prefix dispatch). Unterminated raw strings run to EOF.
fn lex_raw_string(cur: &mut Cursor<'_>) {
    let mut hashes = 0usize;
    while cur.peek() == Some('#') {
        cur.bump();
        hashes += 1;
    }
    if cur.peek() != Some('"') {
        return; // not actually a raw string; spans still tile
    }
    cur.bump(); // opening quote
    'scan: while let Some(c) = cur.bump() {
        if c != '"' {
            continue;
        }
        // Need `hashes` consecutive '#' to close.
        for _ in 0..hashes {
            if cur.peek() == Some('#') {
                cur.bump();
            } else {
                continue 'scan;
            }
        }
        return;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .iter()
            .filter(|t| !t.is_trivia())
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    fn round_trips(src: &str) {
        let toks = lex(src);
        let mut rebuilt = String::new();
        let mut pos = 0usize;
        for t in &toks {
            assert_eq!(t.start, pos, "gap before token in {src:?}");
            rebuilt.push_str(t.text(src));
            pos = t.end;
        }
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn comments_strings_and_raw_strings_are_opaque() {
        let src = r##"// has .unwrap() inside
let s = "panic!(\"no\")"; /* fs::write */ let r = r#"File::create"#;"##;
        let k = kinds(src);
        assert!(k.iter().any(|(_, t)| t == "let"));
        assert!(!k.iter().any(|(kind, t)| *kind == TokKind::Ident && t == "unwrap"));
        assert!(!k.iter().any(|(kind, t)| *kind == TokKind::Ident && t == "write"));
        assert!(!k.iter().any(|(kind, t)| *kind == TokKind::Ident && t == "create"));
        round_trips(src);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let k = kinds(src);
        assert!(k.contains(&(TokKind::Lifetime, "'a".to_string())));
        assert!(k.contains(&(TokKind::Char, "'x'".to_string())));
        round_trips(src);
        round_trips(r"let c = '\n'; let u = '\u{1F600}'; let b = b'x';");
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn f() {}";
        let k = kinds(src);
        assert_eq!(k[0], (TokKind::Ident, "fn".to_string()));
        round_trips(src);
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "/* abc", "r#\"abc", "'", "'\\", "b\"", "0x"] {
            round_trips(src);
        }
    }

    #[test]
    fn numbers_and_ranges() {
        round_trips("let x = 1..2; let y = 1.5e-3f64; let z = 0xff_u8; a[1].b");
        let k = kinds("1..2");
        assert_eq!(
            k,
            vec![
                (TokKind::Num, "1".to_string()),
                (TokKind::Punct, ".".to_string()),
                (TokKind::Punct, ".".to_string()),
                (TokKind::Num, "2".to_string()),
            ]
        );
    }

    #[test]
    fn line_numbers_are_one_based_and_accurate() {
        let src = "a\nb\n  c";
        let t: Vec<(String, u32)> = lex(src)
            .iter()
            .filter(|t| !t.is_trivia())
            .map(|t| (t.text(src).to_string(), t.line))
            .collect();
        assert_eq!(
            t,
            vec![
                ("a".to_string(), 1),
                ("b".to_string(), 2),
                ("c".to_string(), 3)
            ]
        );
    }
}
