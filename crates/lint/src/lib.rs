//! kglink-lint: the workspace invariant linter.
//!
//! The repo's correctness story rests on invariants the type system cannot
//! see — bit-identical kill+resume, bit-identical multi-worker serving,
//! single-source percentile math, atomic checkpoint writes, panic-free
//! library code. This crate enforces them statically, at CI time, replacing
//! the two path-anchored `grep` gates that used to live in `scripts/ci.sh`
//! (which silently rotted whenever an exempted file was renamed).
//!
//! Std-only by design: the workspace builds offline against vendored stubs,
//! so `syn` is off the table. The [`lexer`] is a comment/string/raw-string
//! aware token tiler — exact enough for invariant linting, property-tested
//! to never panic and to round-trip arbitrary input.
//!
//! The engine is two-phase (DESIGN.md §11): phase 1 parses every file into
//! a lightweight item model, resolves calls into a workspace call graph,
//! and computes per-function summaries propagated to fixpoint; phase 2 runs
//! per-file rules over token streams and interprocedural rules over the
//! assembled [`workspace::Workspace`].
//!
//! Architecture:
//!
//! - [`lexer`] — total-function tokenizer ([`lexer::lex`]).
//! - [`source`] — per-file context: path scoping (lib/bin/test/bench/example),
//!   inline `#[cfg(test)]` regions, `// kglink-lint: allow(<rule>)`
//!   suppressions.
//! - [`items`] — phase-1 item model: fns with signatures/bodies, `impl`
//!   types, inline modules, `use` aliases; total, span-tiling parse.
//! - [`callgraph`] — call-site extraction and name-based resolution with
//!   type narrowing.
//! - [`summary`] — per-fn facts (lock holds, panic/alloc/blocking sites,
//!   `Deadline` discipline) and their fixpoint propagation.
//! - [`workspace`] — the assembled phase-1 product handed to graph rules.
//! - [`rules`] — per-file rules behind [`rules::Rule`] and interprocedural
//!   rules behind [`rules::GraphRule`]; see DESIGN.md §11 for the catalog.
//! - [`engine`] — workspace walk, rule dispatch, per-rule timing,
//!   suppression application, and suppression-hygiene meta-checks
//!   (`allow-unused`, `allow-unknown-rule`, `allow-missing-justification`).
//! - [`diag`] — findings, human `file:line` rendering, JSONL export.

#![deny(deprecated)]

pub mod callgraph;
pub mod diag;
pub mod engine;
pub mod fixtures;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod summary;
pub mod workspace;

pub use diag::{Finding, Report};
pub use engine::{find_workspace_root, lint_files, lint_inputs, workspace_files, Input};
pub use source::{classify_path, Scope, SourceFile};
