//! Per-file lint context: scope classification, `#[cfg(test)]` regions,
//! and `// kglink-lint: allow(...)` suppression comments.

use crate::lexer::{lex, Tok, TokKind};

/// Where a file sits in the workspace, decided from its path. Rules declare
/// which scopes they apply to; e.g. `panic-in-lib` runs only on [`Scope::Lib`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Library code under a crate's `src/` (or the root `src/`).
    Lib,
    /// Binary entry points (`src/main.rs`, `src/bin/*`) and the experiment
    /// harness crate (`crates/bench/`): product code, but panics abort a
    /// process the operator owns, not a caller's.
    Bin,
    /// Integration tests (`tests/` directories).
    Test,
    /// `benches/` directories.
    Bench,
    /// `examples/` directories.
    Example,
}

/// Classify a repo-relative path (forward slashes).
pub fn classify_path(path: &str) -> Scope {
    let has = |seg: &str| path.split('/').any(|c| c == seg);
    if has("tests") {
        return Scope::Test;
    }
    if has("benches") {
        return Scope::Bench;
    }
    if has("examples") {
        return Scope::Example;
    }
    // The bench crate is the experiment harness: binaries plus the shared
    // harness lib they link. It measures wall-clock time and unwraps on
    // setup failure by design.
    if path.starts_with("crates/bench/") {
        return Scope::Bin;
    }
    if has("bin") || path.ends_with("/main.rs") || path == "src/main.rs" {
        return Scope::Bin;
    }
    Scope::Lib
}

/// One `// kglink-lint: allow(rule-a, rule-b) — justification` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule ids listed inside `allow(...)`.
    pub rules: Vec<String>,
    /// 1-based line the suppression *applies to*: the first line at or after
    /// the comment that carries a code token (so a comment directly above a
    /// statement, or trailing on the same line, both work).
    pub target_line: u32,
    /// 1-based line of the comment itself (for diagnostics).
    pub comment_line: u32,
    /// Free text after the closing `)` — the required justification.
    pub justification: String,
    /// Set by the engine when a finding is actually suppressed.
    pub used: std::cell::Cell<bool>,
}

/// A lexed source file plus everything rules need to scope their checks.
pub struct SourceFile {
    /// Repo-relative path with forward slashes.
    pub path: String,
    pub text: String,
    pub scope: Scope,
    /// Full token tiling of `text`.
    pub tokens: Vec<Tok>,
    /// Indices into `tokens` of non-trivia tokens, in order.
    pub code: Vec<usize>,
    /// Byte ranges of `#[cfg(test)]`-gated items (inline test modules).
    test_regions: Vec<(usize, usize)>,
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    pub fn new(path: String, text: String) -> Self {
        let scope = classify_path(&path);
        let tokens = lex(&text);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_trivia())
            .map(|(i, _)| i)
            .collect();
        let mut f = SourceFile {
            path,
            text,
            scope,
            tokens,
            code,
            test_regions: Vec::new(),
            suppressions: Vec::new(),
        };
        f.test_regions = find_cfg_test_regions(&f);
        f.suppressions = find_suppressions(&f);
        f
    }

    /// Text of the `i`-th *code* token (0-based index into `self.code`).
    pub fn code_text(&self, i: usize) -> &str {
        self.code
            .get(i)
            .and_then(|&ti| self.tokens.get(ti))
            .map(|t| t.text(&self.text))
            .unwrap_or("")
    }

    /// The `i`-th code token itself.
    pub fn code_tok(&self, i: usize) -> Option<&Tok> {
        self.code.get(i).and_then(|&ti| self.tokens.get(ti))
    }

    pub fn code_kind(&self, i: usize) -> Option<TokKind> {
        self.code_tok(i).map(|t| t.kind)
    }

    pub fn code_line(&self, i: usize) -> u32 {
        self.code_tok(i).map(|t| t.line).unwrap_or(0)
    }

    /// True if the byte offset falls inside a `#[cfg(test)]` item.
    pub fn in_test_region(&self, byte: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| byte >= s && byte < e)
    }

    /// True if the `i`-th code token is in test code (inline `#[cfg(test)]`
    /// module) — path-level scoping is separate, via [`SourceFile::scope`].
    pub fn code_in_test(&self, i: usize) -> bool {
        self.code_tok(i)
            .map(|t| self.in_test_region(t.start))
            .unwrap_or(false)
    }
}

/// Scan for `#` `[` `cfg` `(` … `test` … `)` `]` attributes and record the
/// byte range of the item they gate (through the matching close brace, or
/// the terminating semicolon for `mod tests;` forms).
fn find_cfg_test_regions(f: &SourceFile) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let n = f.code.len();
    let mut i = 0usize;
    while i < n {
        if f.code_text(i) == "#" && f.code_text(i + 1) == "[" && f.code_text(i + 2) == "cfg" {
            // Find the attribute's closing `]` and check `test` appears as an
            // identifier inside (covers cfg(test) and cfg(all(test, ...))).
            let mut j = i + 3;
            let mut depth = 0i32;
            let mut saw_test = false;
            let mut attr_end = None;
            while j < n {
                match f.code_text(j) {
                    "[" | "(" => depth += 1,
                    "]" if depth == 0 => {
                        attr_end = Some(j);
                        break;
                    }
                    ")" | "]" => depth -= 1,
                    "test" if f.code_kind(j) == Some(TokKind::Ident) => saw_test = true,
                    _ => {}
                }
                j += 1;
            }
            let Some(attr_end) = attr_end else { break };
            if saw_test {
                if let Some(region) = item_extent(f, attr_end + 1) {
                    let start = f.code_tok(i).map(|t| t.start).unwrap_or(0);
                    regions.push((start, region));
                }
            }
            i = attr_end + 1;
        } else {
            i += 1;
        }
    }
    regions
}

/// Byte offset one past the end of the item starting at code index `from`:
/// skips further attributes, then runs to the matching `}` of the first
/// brace block, or the first `;` before any brace opens.
fn item_extent(f: &SourceFile, mut from: usize) -> Option<usize> {
    let n = f.code.len();
    // Skip stacked attributes (`#[cfg(test)] #[allow(...)] mod t { ... }`).
    while from < n && f.code_text(from) == "#" && f.code_text(from + 1) == "[" {
        let mut depth = 0i32;
        let mut j = from + 2;
        while j < n {
            match f.code_text(j) {
                "[" | "(" => depth += 1,
                "]" if depth == 0 => break,
                "]" | ")" => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        from = j + 1;
    }
    let mut depth = 0i32;
    let mut j = from;
    while j < n {
        match f.code_text(j) {
            ";" if depth == 0 => return f.code_tok(j).map(|t| t.end),
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return f.code_tok(j).map(|t| t.end);
                }
            }
            _ => {}
        }
        j += 1;
    }
    // Unbalanced file: gate everything to the end (conservative: treats the
    // remainder as test code rather than producing noise on broken input).
    Some(f.text.len())
}

/// Extract `kglink-lint: allow(...)` comments. The marker must *start* the
/// comment (after the `//`/`//!`/`///`/`/*` opener and whitespace) so prose
/// that merely mentions the syntax — rule docs, this function's own doc —
/// is not parsed as a live suppression.
fn find_suppressions(f: &SourceFile) -> Vec<Suppression> {
    const MARKER: &str = "kglink-lint:";
    let mut out = Vec::new();
    for (ti, tok) in f.tokens.iter().enumerate() {
        if !matches!(tok.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let body = tok.text(&f.text);
        let opener_len = if matches!(tok.kind, TokKind::LineComment) {
            body.len() - body.trim_start_matches(['/', '!']).len()
        } else {
            body.len() - body.trim_start_matches(['/', '*', '!']).len()
        };
        let content = body[opener_len..].trim_start();
        if !content.starts_with(MARKER) {
            continue;
        }
        let m = body.len() - content.len();
        let rest = body[m + MARKER.len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            continue;
        };
        let Some(close) = rest.find(')') else { continue };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let mut justification = rest[close + 1..].trim();
        justification = justification
            .trim_start_matches(['—', '-', ':', ' '])
            .trim_end_matches("*/")
            .trim();
        // The suppression applies to the first line at/after the comment
        // that carries a code token.
        let target_line = f.tokens[ti + 1..]
            .iter()
            .find(|t| !t.is_trivia())
            .map(|t| t.line)
            // Trailing comment: it ends the line, so the code it guards is
            // the line the comment starts on.
            .unwrap_or(tok.line);
        let trailing = f.tokens[..ti]
            .iter()
            .rev()
            .take_while(|t| t.line == tok.line)
            .any(|t| !t.is_trivia());
        let target_line = if trailing { tok.line } else { target_line };
        out.push(Suppression {
            rules,
            target_line,
            comment_line: tok.line,
            justification: justification.to_string(),
            used: std::cell::Cell::new(false),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_classification() {
        assert_eq!(classify_path("crates/kg/src/io.rs"), Scope::Lib);
        assert_eq!(classify_path("crates/kg/tests/x.rs"), Scope::Test);
        assert_eq!(classify_path("tests/serve.rs"), Scope::Test);
        assert_eq!(classify_path("benches/b.rs"), Scope::Bench);
        assert_eq!(classify_path("examples/quickstart.rs"), Scope::Example);
        assert_eq!(classify_path("crates/bench/src/lib.rs"), Scope::Bin);
        assert_eq!(classify_path("crates/lint/src/main.rs"), Scope::Bin);
        assert_eq!(classify_path("crates/serve/src/bin/tool.rs"), Scope::Bin);
        assert_eq!(classify_path("src/lib.rs"), Scope::Lib);
    }

    #[test]
    fn cfg_test_regions_cover_inline_modules() {
        let src = "fn lib_code() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn more() {}\n";
        let f = SourceFile::new("crates/x/src/lib.rs".into(), src.into());
        let unwrap_at = src.find("unwrap").unwrap_or(0);
        assert!(f.in_test_region(unwrap_at));
        let more_at = src.rfind("more").unwrap_or(0);
        assert!(!f.in_test_region(more_at));
        let lib_at = src.find("lib_code").unwrap_or(0);
        assert!(!f.in_test_region(lib_at));
    }

    #[test]
    fn cfg_all_test_counts_and_stacked_attrs_skipped() {
        let src = "#[cfg(all(test, feature = \"x\"))]\n#[allow(dead_code)]\nmod t { fn f() {} }\nfn after() {}\n";
        let f = SourceFile::new("crates/x/src/lib.rs".into(), src.into());
        assert!(f.in_test_region(src.find("fn f").unwrap_or(0)));
        assert!(!f.in_test_region(src.find("after").unwrap_or(0)));
    }

    #[test]
    fn suppressions_target_next_code_line_or_same_line() {
        let src = "\
// kglink-lint: allow(panic-in-lib) — capacity invariant, checked at build
let a = x.unwrap();
let b = y.unwrap(); // kglink-lint: allow(nondeterminism): timing only
";
        let f = SourceFile::new("crates/x/src/lib.rs".into(), src.into());
        assert_eq!(f.suppressions.len(), 2);
        assert_eq!(f.suppressions[0].rules, vec!["panic-in-lib".to_string()]);
        assert_eq!(f.suppressions[0].target_line, 2);
        assert!(f.suppressions[0].justification.contains("capacity"));
        assert_eq!(f.suppressions[1].target_line, 3);
        assert_eq!(f.suppressions[1].justification, "timing only");
    }

    #[test]
    fn suppression_in_string_literal_is_ignored() {
        let src = "let s = \"kglink-lint: allow(panic-in-lib)\";\n";
        let f = SourceFile::new("crates/x/src/lib.rs".into(), src.into());
        assert!(f.suppressions.is_empty());
    }

    #[test]
    fn doc_prose_mentioning_the_syntax_is_not_a_suppression() {
        let src = "\
//! Escape hatch: a `// kglink-lint: allow(panic-in-lib)` comment.
/// Use `kglink-lint: allow(...)` to silence a rule.
fn f() {}
/* kglink-lint: allow(nondeterminism) — block form, at comment start */
fn g() {}
";
        let f = SourceFile::new("crates/x/src/lib.rs".into(), src.into());
        assert_eq!(f.suppressions.len(), 1);
        assert_eq!(f.suppressions[0].rules, vec!["nondeterminism".to_string()]);
    }
}
