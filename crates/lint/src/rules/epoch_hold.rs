//! `epoch-hold`: the lifecycle epoch mutex is a slot, not a region.
//!
//! The zero-downtime swap design (DESIGN.md §15) hinges on the epoch lock
//! being held only long enough to clone or replace the `Arc<ModelEpoch>`
//! inside: workers take one clone per micro-batch and serve from it
//! lock-free, and `promote` swaps the slot *between* micro-batches. If any
//! serve-path code holds the epoch guard across a micro-batch boundary —
//! pulling the next batch, serving a request, or anything that blocks —
//! a promotion stalls behind live traffic and the "swap between
//! micro-batches" guarantee silently becomes "swap when the slowest
//! request finishes". This rule flags any acquisition of an epoch lock
//! (receiver containing `epoch`) in `crates/serve` lib code whose guard
//! outlives its own statement *and* whose hold region reaches a blocking
//! operation, a call into (transitively) blocking code, or a micro-batch
//! boundary function.

use super::GraphRule;
use crate::diag::Finding;
use crate::rules::stmt_range;
use crate::source::Scope;
use crate::workspace::Workspace;

pub struct EpochHold;

/// Functions that constitute a micro-batch boundary on the serve path.
const BOUNDARY_FNS: &[&str] = &["pop_batch", "serve_request", "annotate_request", "annotate"];

impl GraphRule for EpochHold {
    fn id(&self) -> &'static str {
        "epoch-hold"
    }

    fn describe(&self) -> &'static str {
        "the lifecycle epoch mutex must not be held across a micro-batch boundary in serve lib code"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for (i, (file_ix, item)) in ws.fns.iter().enumerate() {
            let f = &ws.files[*file_ix];
            if f.scope != Scope::Lib || !f.path.starts_with("crates/serve/") || item.in_test {
                continue;
            }
            for lk in &ws.locals[i].locks {
                if !lk.name.to_ascii_lowercase().contains("epoch") {
                    continue;
                }
                // A guard confined to its own statement (clone-out /
                // replace-in) is the sanctioned slot access.
                let (_, stmt_end) = stmt_range(f, lk.ix);
                let reach = reaches_boundary(ws, i, stmt_end.max(lk.hold.0), lk.hold.1);
                let Some(why) = reach else { continue };
                out.push(Finding::new(
                    self.id(),
                    &f.path,
                    lk.line,
                    format!(
                        "`{}` holds the epoch lock `{}` across {} — promotion \
                         stalls behind live traffic; clone the `Arc` out of the \
                         slot and drop the guard before the boundary",
                        item.name, lk.name, why,
                    ),
                ));
            }
        }
    }
}

/// First micro-batch-boundary reason inside code range `[from, to)` of fn
/// `i`: a direct blocking site, a boundary-named call, or a call into a
/// (transitively) blocking callee.
fn reaches_boundary(ws: &Workspace, i: usize, from: usize, to: usize) -> Option<String> {
    for b in &ws.locals[i].blocking {
        if from <= b.ix && b.ix < to {
            return Some(format!("a blocking {}", b.what));
        }
    }
    for call in &ws.calls[i] {
        if call.site.ix < from || call.site.ix >= to {
            continue;
        }
        if BOUNDARY_FNS.contains(&call.site.name.as_str()) {
            return Some(format!("the micro-batch boundary `{}`", call.site.name));
        }
        for &callee in &call.callees {
            if callee == i {
                continue;
            }
            if let Some(w) = &ws.props[callee].may_block {
                return Some(format!(
                    "`{}`, which blocks on {}{}",
                    call.site.name,
                    w.site.what,
                    w.via_text()
                ));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: Vec<(&str, &str)>) -> Vec<(String, u32, String)> {
        let ws = Workspace::from_sources(files);
        let mut out = Vec::new();
        EpochHold.check(&ws, &mut out);
        out.into_iter()
            .map(|x| (x.path, x.line, x.message))
            .collect()
    }

    #[test]
    fn slot_clone_and_slot_replace_are_the_sanctioned_shapes() {
        let src = "\
impl Lifecycle {
    fn current(&self) -> Arc<ModelEpoch> {
        Arc::clone(&self.epoch.lock().unwrap_or_else(PoisonError::into_inner))
    }
    fn install(&self, next: Arc<ModelEpoch>) -> Arc<ModelEpoch> {
        let mut slot = self.epoch.lock().unwrap_or_else(PoisonError::into_inner);
        mem::replace(&mut *slot, next)
    }
}
";
        assert!(run(vec![("crates/serve/src/lifecycle.rs", src)]).is_empty());
    }

    #[test]
    fn epoch_guard_held_across_pop_batch_is_flagged() {
        let src = "\
impl Worker {
    fn turn(&self, queue: &BoundedQueue<Req>) {
        let epoch = self.lifecycle.epoch.lock().unwrap_or_else(PoisonError::into_inner);
        let batch = queue.pop_batch(8);
        serve(&epoch, batch);
    }
}
";
        let hits = run(vec![("crates/serve/src/worker.rs", src)]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].1, 3);
        assert!(hits[0].2.contains("pop_batch"), "{}", hits[0].2);
    }

    #[test]
    fn epoch_guard_held_across_blocking_callee_is_flagged() {
        let src = "\
impl Worker {
    fn turn(&self) {
        let guard = self.epoch_slot.lock().unwrap_or_else(PoisonError::into_inner);
        self.refill();
        guard.version;
    }
    fn refill(&self) {
        let next = self.rx.recv();
    }
}
";
        let hits = run(vec![("crates/serve/src/worker.rs", src)]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].2.contains("`refill`"), "{}", hits[0].2);
    }

    #[test]
    fn dropped_guard_and_non_epoch_locks_are_clean() {
        let dropped = "\
impl Worker {
    fn turn(&self, queue: &BoundedQueue<Req>) {
        let epoch = self.lifecycle.epoch.lock().unwrap_or_else(PoisonError::into_inner);
        let current = Arc::clone(&epoch);
        drop(epoch);
        let batch = queue.pop_batch(8);
    }
}
";
        assert!(run(vec![("crates/serve/src/worker.rs", dropped)]).is_empty());
        let other_lock = "\
impl Worker {
    fn turn(&self, queue: &BoundedQueue<Req>) {
        let stats = self.stats.lock().unwrap_or_else(PoisonError::into_inner);
        let batch = queue.pop_batch(8);
    }
}
";
        assert!(run(vec![("crates/serve/src/worker.rs", other_lock)]).is_empty());
    }
}
