//! `segment-atomicity`: store segment bytes reach disk only through the
//! atomic temp→fsync→rename path.
//!
//! The disk world's crash-safety argument (DESIGN.md §13) rests on two
//! facts: every segment file is published by rename, and the manifest is
//! written last. Both collapse if any writer calls `fs::write` /
//! `File::create` on a segment directly — a crash mid-write would leave a
//! torn `entities-*.kges`, `index.kgbm` or `world.kgsm` that the manifest
//! still vouches for. This is the [`CheckpointAtomicity`] argument lifted
//! from one file to a directory, with the same enforcement shape: the one
//! legitimate writer (`kglink_store::atomic`) carries an allow-comment,
//! and tests that forge corrupt segments on purpose are exempt by scope.
//!
//! [`CheckpointAtomicity`]: super::CheckpointAtomicity

use super::{stmt_range, Rule};
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::source::SourceFile;

pub struct SegmentAtomicity;

const SEGMENT_MARKERS: &[&str] = &["kges", "kgbm", "kgsm", "segment"];

fn mentions_segment(text: &str) -> bool {
    let lower = text.to_ascii_lowercase();
    SEGMENT_MARKERS.iter().any(|m| lower.contains(m))
}

impl Rule for SegmentAtomicity {
    fn id(&self) -> &'static str {
        "segment-atomicity"
    }

    fn describe(&self) -> &'static str {
        "store segments (.kges/.kgbm/.kgsm) are written only via kglink_store::atomic"
    }

    fn check_file(&mut self, f: &SourceFile, out: &mut Vec<Finding>) {
        // Product code only: lib and binaries. Tests forge torn segments.
        if !matches!(
            f.scope,
            crate::source::Scope::Lib | crate::source::Scope::Bin
        ) {
            return;
        }
        for i in 0..f.code.len() {
            if f.code_kind(i) != Some(TokKind::Ident) || f.code_in_test(i) {
                continue;
            }
            let t = f.code_text(i);
            let is_write = t == "fs"
                && f.code_text(i + 1) == ":"
                && f.code_text(i + 2) == ":"
                && f.code_text(i + 3) == "write";
            let is_create = t == "File"
                && f.code_text(i + 1) == ":"
                && f.code_text(i + 2) == ":"
                && matches!(f.code_text(i + 3), "create" | "create_new");
            if !is_write && !is_create {
                continue;
            }
            let (s, e) = stmt_range(f, i);
            let segmenty = (s..e).any(|j| {
                matches!(
                    f.code_kind(j),
                    Some(TokKind::Ident | TokKind::Str | TokKind::RawStr)
                ) && mentions_segment(f.code_text(j))
            });
            if segmenty {
                let call = if is_write { "fs::write" } else { "File::create" };
                out.push(Finding::new(
                    self.id(),
                    &f.path,
                    f.code_line(i),
                    format!(
                        "`{call}` of segment data outside the atomic writer: a crash \
                         mid-write leaves a torn segment the manifest still vouches \
                         for; go through kglink_store::atomic"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<u32> {
        let f = SourceFile::new(path.into(), src.into());
        let mut out = Vec::new();
        SegmentAtomicity.check_file(&f, &mut out);
        out.into_iter().map(|x| x.line).collect()
    }

    #[test]
    fn flags_bare_segment_writes_by_ident_or_string() {
        let src = "\
fn save(segment_path: &Path, bytes: &[u8]) {
    fs::write(segment_path, bytes);
    let f = File::create(\"index.kgbm\");
    std::fs::write(\"world.kgsm\", data);
    std::fs::write(other, data);
}
";
        assert_eq!(run("crates/store/src/bad.rs", src), vec![2, 3, 4]);
    }

    #[test]
    fn unrelated_writes_and_tests_are_exempt() {
        let src = "fn dump(p: &Path) { fs::write(p, \"results\"); }\n";
        assert!(run("crates/store/src/world.rs", src).is_empty());
        let forged = "fn t() { fs::write(\"torn.kges\", b\"junk\"); }\n";
        assert!(run("crates/store/tests/corruption.rs", forged).is_empty());
        let inline = "#[cfg(test)]\nmod t { fn f() { fs::write(\"x.kgsm\", b\"j\"); } }\n";
        assert!(run("crates/store/src/manifest.rs", inline).is_empty());
    }
}
