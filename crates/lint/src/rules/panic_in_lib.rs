//! `panic-in-lib`: no panic paths in library crates — now interprocedural.
//!
//! The PR-1 bug class: a `.unwrap()` on a data-dependent value deep in the
//! retrieval or training pipeline turns one malformed table into a crashed
//! worker. Library code must return typed errors; the only sanctioned
//! escapes are a `// kglink-lint: allow(panic-in-lib) — <why the invariant
//! holds>` comment, or genuinely test-scoped code (`tests/`, `benches/`,
//! `examples/`, binaries, and inline `#[cfg(test)]` modules are exempt).
//!
//! Two layers:
//!
//! 1. **Direct sites** — the original per-file scan, unchanged: panic
//!    macros and `.unwrap()`/`.expect()` at any lib-scope token.
//! 2. **Cross-scope reach** — a lib function calling (through any resolved
//!    chain) a function whose panic site lives *outside* lib scope, where
//!    the direct scan cannot see it. Sites inside lib scope are not
//!    re-reported through calls: the direct layer already anchors them, and
//!    one finding per site keeps allow-comments one-per-site too. A panic
//!    site excused by a justified allow does not propagate — the vouched
//!    invariant covers callers as well.

use super::GraphRule;
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::source::{Scope, SourceFile};
use crate::workspace::Workspace;
use std::collections::BTreeSet;

pub struct PanicInLib;

/// Macros that abort: `name!(...)`.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
/// Panicking combinators: `.name(...)`.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

impl GraphRule for PanicInLib {
    fn id(&self) -> &'static str {
        "panic-in-lib"
    }

    fn describe(&self) -> &'static str {
        "no panic paths in library code, including calls into non-lib helpers that panic"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for f in &ws.files {
            check_direct(self.id(), f, out);
        }
        // Interprocedural: lib fn → (chain) → panic site the direct scan
        // cannot anchor (non-lib scope). One finding per (caller line,
        // callee) even when several callees resolve.
        let mut seen: BTreeSet<(usize, u32, String)> = BTreeSet::new();
        for (i, (file_ix, item)) in ws.fns.iter().enumerate() {
            let f = &ws.files[*file_ix];
            if f.scope != Scope::Lib || item.in_test {
                continue;
            }
            for call in &ws.calls[i] {
                for &callee in &call.callees {
                    let Some(w) = &ws.props[callee].may_panic else {
                        continue;
                    };
                    if ws.files[w.site.file].scope == Scope::Lib {
                        continue; // direct layer owns lib-scope sites
                    }
                    if !seen.insert((*file_ix, call.site.line, call.site.name.clone())) {
                        continue;
                    }
                    out.push(Finding::new(
                        self.id(),
                        &f.path,
                        call.site.line,
                        format!(
                            "calls `{}` which can panic at {}:{} ({}){} — the site is \
                             outside lib scope so the direct scan cannot flag it; \
                             return a typed error from the helper or isolate the call",
                            call.site.name,
                            ws.files[w.site.file].path,
                            w.site.line,
                            w.site.what,
                            w.via_text(),
                        ),
                    ));
                }
            }
        }
    }
}

/// The original per-file scan, verbatim.
fn check_direct(id: &'static str, f: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..f.code.len() {
        if f.code_kind(i) != Some(TokKind::Ident) || !super::is_lib_code(f, i) {
            continue;
        }
        let t = f.code_text(i);
        if PANIC_MACROS.contains(&t) && f.code_text(i + 1) == "!" {
            out.push(Finding::new(
                id,
                &f.path,
                f.code_line(i),
                format!("`{t}!` in library code: return a typed error instead"),
            ));
        } else if PANIC_METHODS.contains(&t)
            && f.code_text(i.wrapping_sub(1)) == "."
            && i > 0
            && f.code_text(i + 1) == "("
        {
            out.push(Finding::new(
                id,
                &f.path,
                f.code_line(i),
                format!(
                    "`.{t}(...)` in library code: propagate the error (`?`) or \
                     handle it; if the invariant is structural, justify with an \
                     allow-comment"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: Vec<(&str, &str)>) -> Vec<(String, u32, String)> {
        let ws = Workspace::from_sources(files);
        let mut out = Vec::new();
        PanicInLib.check(&ws, &mut out);
        out.into_iter()
            .map(|x| (x.path, x.line, x.message))
            .collect()
    }

    fn run_one(path: &str, src: &str) -> Vec<(u32, String)> {
        run(vec![(path, src)])
            .into_iter()
            .map(|(_, l, m)| (l, m))
            .collect()
    }

    #[test]
    fn flags_unwrap_expect_and_macros_in_lib() {
        let src = "fn f() {\n x.unwrap();\n y.expect(\"m\");\n panic!(\"no\");\n unreachable!()\n}\n";
        let hits = run_one("crates/kg/src/io.rs", src);
        assert_eq!(
            hits.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
    }

    #[test]
    fn ignores_lookalikes_and_non_lib_scopes() {
        // unwrap_or / expect_err / should_panic are different identifiers;
        // strings and comments are opaque; tests and bins are out of scope.
        let src = "fn f() { x.unwrap_or(0); y.expect_err(\"m\"); }\n// x.unwrap()\nlet s = \"panic!\";\n";
        assert!(run_one("crates/kg/src/io.rs", src).is_empty());
        let panicky = "fn f() { x.unwrap(); }";
        assert!(run_one("crates/kg/tests/t.rs", panicky).is_empty());
        assert!(run_one("crates/bench/src/lib.rs", panicky).is_empty());
        assert!(run_one("src/main.rs", panicky).is_empty());
    }

    #[test]
    fn cfg_test_modules_inside_lib_files_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        assert!(run_one("crates/kg/src/io.rs", src).is_empty());
    }

    #[test]
    fn panic_path_reference_without_bang_is_fine() {
        assert!(run_one("crates/serve/src/x.rs", "use std::panic::catch_unwind;\n").is_empty());
    }

    #[test]
    fn lib_call_into_panicking_bin_helper_is_flagged_at_the_call() {
        let hits = run(vec![
            (
                "crates/serve/src/a.rs",
                "use crate::util::must;\npub fn entry() -> u32 {\n    must(3)\n}\n",
            ),
            (
                "crates/bench/src/lib.rs",
                "pub fn must(x: u32) -> u32 { x.checked_mul(2).unwrap() }\n",
            ),
        ]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        let (path, line, msg) = &hits[0];
        assert!(path.ends_with("a.rs"));
        assert_eq!(*line, 3);
        assert!(msg.contains("`must`") && msg.contains("bench/src/lib.rs:1"), "{msg}");
    }

    #[test]
    fn lib_to_lib_panics_are_reported_once_at_the_site_only() {
        let hits = run(vec![
            ("crates/serve/src/a.rs", "pub fn entry() { helper(); }\n"),
            (
                "crates/serve/src/b.rs",
                "pub fn helper() { x.unwrap(); }\n",
            ),
        ]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].0.ends_with("b.rs"));
    }

    #[test]
    fn excused_panic_site_does_not_propagate_to_callers() {
        let hits = run(vec![
            ("crates/serve/src/a.rs", "pub fn entry() { vouched(); }\n"),
            (
                "crates/bench/src/lib.rs",
                "pub fn vouched() {\n    // kglink-lint: allow(panic-in-lib) — bounded at construction\n    x.unwrap();\n}\n",
            ),
        ]);
        assert!(hits.is_empty(), "{hits:?}");
    }
}
