//! `panic-in-lib`: no panic paths in library crates.
//!
//! The PR-1 bug class: a `.unwrap()` on a data-dependent value deep in the
//! retrieval or training pipeline turns one malformed table into a crashed
//! worker. Library code must return typed errors; the only sanctioned
//! escapes are a `// kglink-lint: allow(panic-in-lib) — <why the invariant
//! holds>` comment, or genuinely test-scoped code (`tests/`, `benches/`,
//! `examples/`, binaries, and inline `#[cfg(test)]` modules are exempt).

use super::{is_lib_code, Rule};
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::source::SourceFile;

pub struct PanicInLib;

/// Macros that abort: `name!(...)`.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
/// Panicking combinators: `.name(...)`.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

impl Rule for PanicInLib {
    fn id(&self) -> &'static str {
        "panic-in-lib"
    }

    fn describe(&self) -> &'static str {
        "no .unwrap()/.expect()/panic!/unreachable!/todo!/unimplemented! in library code"
    }

    fn check_file(&mut self, f: &SourceFile, out: &mut Vec<Finding>) {
        for i in 0..f.code.len() {
            if f.code_kind(i) != Some(TokKind::Ident) || !is_lib_code(f, i) {
                continue;
            }
            let t = f.code_text(i);
            if PANIC_MACROS.contains(&t) && f.code_text(i + 1) == "!" {
                out.push(Finding::new(
                    self.id(),
                    &f.path,
                    f.code_line(i),
                    format!("`{t}!` in library code: return a typed error instead"),
                ));
            } else if PANIC_METHODS.contains(&t)
                && f.code_text(i.wrapping_sub(1)) == "."
                && i > 0
                && f.code_text(i + 1) == "("
            {
                out.push(Finding::new(
                    self.id(),
                    &f.path,
                    f.code_line(i),
                    format!(
                        "`.{t}(...)` in library code: propagate the error (`?`) or \
                         handle it; if the invariant is structural, justify with an \
                         allow-comment"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<(u32, String)> {
        let f = SourceFile::new(path.into(), src.into());
        let mut out = Vec::new();
        PanicInLib.check_file(&f, &mut out);
        out.into_iter().map(|x| (x.line, x.message)).collect()
    }

    #[test]
    fn flags_unwrap_expect_and_macros_in_lib() {
        let src = "fn f() {\n x.unwrap();\n y.expect(\"m\");\n panic!(\"no\");\n unreachable!()\n}\n";
        let hits = run("crates/kg/src/io.rs", src);
        assert_eq!(
            hits.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
    }

    #[test]
    fn ignores_lookalikes_and_non_lib_scopes() {
        // unwrap_or / expect_err / should_panic are different identifiers;
        // strings and comments are opaque; tests and bins are out of scope.
        let src = "fn f() { x.unwrap_or(0); y.expect_err(\"m\"); }\n// x.unwrap()\nlet s = \"panic!\";\n";
        assert!(run("crates/kg/src/io.rs", src).is_empty());
        let panicky = "fn f() { x.unwrap(); }";
        assert!(run("crates/kg/tests/t.rs", panicky).is_empty());
        assert!(run("crates/bench/src/lib.rs", panicky).is_empty());
        assert!(run("src/main.rs", panicky).is_empty());
    }

    #[test]
    fn cfg_test_modules_inside_lib_files_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        assert!(run("crates/kg/src/io.rs", src).is_empty());
    }

    #[test]
    fn panic_path_reference_without_bang_is_fine() {
        assert!(run("crates/serve/src/x.rs", "use std::panic::catch_unwind;\n").is_empty());
    }
}
