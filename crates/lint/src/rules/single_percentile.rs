//! `single-percentile`: all percentile/quantile math lives in kglink-obs.
//!
//! Port of the old `ci.sh` grep gate. PR 3 unified three drifting
//! hand-rolled percentile implementations into `kglink_obs::Histogram`;
//! re-introducing one anywhere (including tests — a test-local reference
//! implementation is how the drift started) brings the drift back. The
//! canonical implementation in `crates/obs` carries allow-comments, so the
//! gate survives file renames instead of hanging off a `grep -v` path.

use super::Rule;
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::source::SourceFile;

pub struct SinglePercentile;

impl Rule for SinglePercentile {
    fn id(&self) -> &'static str {
        "single-percentile"
    }

    fn describe(&self) -> &'static str {
        "no percentile/quantile implementations outside kglink_obs::Histogram"
    }

    fn check_file(&mut self, f: &SourceFile, out: &mut Vec<Finding>) {
        // All scopes on purpose: the old gate scanned tests and examples too.
        for i in 0..f.code.len() {
            if f.code_text(i) != "fn" || f.code_kind(i + 1) != Some(TokKind::Ident) {
                continue;
            }
            // `#[test]` functions merely *exercise* the canonical quantile —
            // their names mention it, they don't reimplement it. Test-module
            // *helpers* (a `fn reference_quantile` reference implementation)
            // carry no `#[test]` attribute and are still flagged.
            if is_test_fn(f, i) {
                continue;
            }
            let name = f.code_text(i + 1);
            let lower = name.to_ascii_lowercase();
            if lower.contains("percentile") || lower.contains("quantile") {
                out.push(Finding::new(
                    self.id(),
                    &f.path,
                    f.code_line(i + 1),
                    format!(
                        "`fn {name}`: percentile/quantile math belongs to \
                         kglink_obs::Histogram; a second implementation reintroduces \
                         cross-layer drift"
                    ),
                ));
            }
        }
    }
}

/// True when the `fn` at code index `fn_idx` is stacked directly under an
/// exact `#[test]` attribute (other attributes may sit in between).
fn is_test_fn(f: &SourceFile, fn_idx: usize) -> bool {
    let mut i = fn_idx;
    while i >= 4 && f.code_text(i - 1) == "]" {
        let mut depth = 1i32;
        let mut j = i - 1;
        while j > 0 && depth > 0 {
            j -= 1;
            match f.code_text(j) {
                "]" => depth += 1,
                "[" => depth -= 1,
                _ => {}
            }
        }
        if j == 0 || depth != 0 || f.code_text(j - 1) != "#" {
            return false;
        }
        if i - 1 == j + 2 && f.code_text(j + 1) == "test" {
            return true;
        }
        i = j - 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<u32> {
        let f = SourceFile::new(path.into(), src.into());
        let mut out = Vec::new();
        SinglePercentile.check_file(&f, &mut out);
        out.into_iter().map(|x| x.line).collect()
    }

    #[test]
    fn flags_percentile_fns_everywhere_including_tests() {
        let src = "fn percentile_us(v: &[u64]) -> u64 { 0 }\nfn my_quantile(q: f64) -> f64 { q }\n";
        assert_eq!(run("crates/serve/src/metrics.rs", src), vec![1, 2]);
        assert_eq!(run("tests/serve.rs", src), vec![1, 2]);
    }

    #[test]
    fn calls_and_mentions_are_fine() {
        let src = "fn f(h: &Histogram) -> u64 { h.quantile(0.99) } // percentile\n";
        assert!(run("crates/serve/src/metrics.rs", src).is_empty());
    }

    #[test]
    fn test_fns_exercising_quantiles_are_exempt_but_helpers_are_not() {
        let src = "\
#[test]
fn percentiles_match_histogram() { check(); }
#[cfg(test)]
fn reference_quantile(v: &[u64], q: f64) -> u64 { v[0] }
";
        assert_eq!(run("crates/serve/src/metrics.rs", src), vec![4]);
    }
}
