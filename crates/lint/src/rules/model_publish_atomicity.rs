//! `model-publish-atomicity`: published model versions are immutable and
//! reach disk only through the registry's atomic publisher.
//!
//! The zero-downtime lifecycle (DESIGN.md §15) rests on two write-side
//! invariants:
//!
//! 1. **Registry artifacts are committed, never edited.** A version
//!    directory becomes visible when its manifest lands via the
//!    temp→fsync→rename path; any other `fs::write(...)` /
//!    `File::create(...)` aimed at registry artifacts (statements
//!    mentioning `kgmf`, `manifest`, or `registry`) can tear a version
//!    that a concurrent load or a crash will then half-see. The one
//!    sanctioned writer is `kglink_registry::publish::write_artifact`,
//!    whose create statement deliberately carries none of these markers.
//! 2. **Live epochs are immutable.** Serving code must never reach into a
//!    published [`ModelEpoch`] and mutate weights in place
//!    (`Arc::get_mut` / `Arc::make_mut` on an epoch or its model): a
//!    worker mid-batch would observe a torn model, which is exactly what
//!    the epoch handle exists to prevent. The only way weights change is
//!    a whole new epoch through `swap_model`.
//!
//! Tests forge torn artifacts on purpose and are exempt by scope; the
//! epoch-mutation arm applies to `crates/serve/` library code only.

use super::{stmt_range, Rule};
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::source::SourceFile;

pub struct ModelPublishAtomicity;

const REGISTRY_MARKERS: &[&str] = &["kgmf", "manifest", "registry"];
const EPOCH_MARKERS: &[&str] = &["epoch", "modelepoch"];

fn mentions(text: &str, markers: &[&str]) -> bool {
    let lower = text.to_ascii_lowercase();
    markers.iter().any(|m| lower.contains(m))
}

impl Rule for ModelPublishAtomicity {
    fn id(&self) -> &'static str {
        "model-publish-atomicity"
    }

    fn describe(&self) -> &'static str {
        "model versions are published atomically and live epochs are never mutated in place"
    }

    fn check_file(&mut self, f: &SourceFile, out: &mut Vec<Finding>) {
        // Product code only: lib and binaries. Tests forge torn registries.
        if !matches!(
            f.scope,
            crate::source::Scope::Lib | crate::source::Scope::Bin
        ) {
            return;
        }
        let in_serve_lib =
            f.scope == crate::source::Scope::Lib && f.path.contains("crates/serve/");
        for i in 0..f.code.len() {
            if f.code_kind(i) != Some(TokKind::Ident) || f.code_in_test(i) {
                continue;
            }
            let t = f.code_text(i);
            // Arm 1: raw filesystem writes of registry artifacts.
            let is_write = t == "fs"
                && f.code_text(i + 1) == ":"
                && f.code_text(i + 2) == ":"
                && f.code_text(i + 3) == "write";
            let is_create = t == "File"
                && f.code_text(i + 1) == ":"
                && f.code_text(i + 2) == ":"
                && matches!(f.code_text(i + 3), "create" | "create_new");
            if is_write || is_create {
                let (s, e) = stmt_range(f, i);
                let registryish = (s..e).any(|j| {
                    matches!(
                        f.code_kind(j),
                        Some(TokKind::Ident | TokKind::Str | TokKind::RawStr)
                    ) && mentions(f.code_text(j), REGISTRY_MARKERS)
                });
                if registryish {
                    let call = if is_write { "fs::write" } else { "File::create" };
                    out.push(Finding::new(
                        self.id(),
                        &f.path,
                        f.code_line(i),
                        format!(
                            "`{call}` of registry artifacts outside the atomic publisher: \
                             a crash mid-write tears a version a load may half-see; go \
                             through kglink_registry::ModelRegistry::publish"
                        ),
                    ));
                }
                continue;
            }
            // Arm 2: in-place mutation of a live epoch in serving code.
            if in_serve_lib
                && t == "Arc"
                && f.code_text(i + 1) == ":"
                && f.code_text(i + 2) == ":"
                && matches!(f.code_text(i + 3), "get_mut" | "make_mut")
            {
                let (s, e) = stmt_range(f, i);
                let epochy = (s..e).any(|j| {
                    f.code_kind(j) == Some(TokKind::Ident)
                        && mentions(f.code_text(j), EPOCH_MARKERS)
                });
                if epochy {
                    out.push(Finding::new(
                        self.id(),
                        &f.path,
                        f.code_line(i),
                        format!(
                            "`Arc::{}` on a live ModelEpoch: published epochs are \
                             immutable — a worker mid-batch would observe a torn model; \
                             install a new epoch via swap_model instead",
                            f.code_text(i + 3)
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<u32> {
        let f = SourceFile::new(path.into(), src.into());
        let mut out = Vec::new();
        ModelPublishAtomicity.check_file(&f, &mut out);
        out.into_iter().map(|x| x.line).collect()
    }

    #[test]
    fn flags_raw_registry_writes() {
        let src = "\
fn publish(registry_dir: &Path, bytes: &[u8]) {
    fs::write(registry_dir.join(\"manifest.kgmf\"), bytes);
    let f = File::create(\"versions/v000001/manifest.kgmf\");
    std::fs::write(\"results/metrics.json\", bytes);
}
";
        assert_eq!(run("crates/registry/src/bad.rs", src), vec![2, 3]);
    }

    #[test]
    fn flags_in_place_epoch_mutation_in_serve_lib() {
        let src = "\
fn hot_patch(epoch: &mut Arc<ModelEpoch>) {
    let m = Arc::get_mut(epoch).unwrap();
    let n = Arc::make_mut(&mut current_epoch);
}
";
        assert_eq!(run("crates/serve/src/worker.rs", src), vec![2, 3]);
        // Same code outside the serve crate's lib paths is not this rule's
        // business (the registry never holds an epoch).
        assert!(run("crates/core/src/pipeline.rs", src).is_empty());
    }

    #[test]
    fn sanctioned_publisher_and_tests_are_exempt() {
        // The atomic publisher's create statement carries no markers.
        let clean = "fn w(dir: &Path, name: &str) { let f = File::create(&tmp)?; }\n";
        assert!(run("crates/registry/src/publish.rs", clean).is_empty());
        let forged = "fn t() { fs::write(\"manifest.kgmf\", b\"junk\"); }\n";
        assert!(run("crates/registry/tests/corruption.rs", forged).is_empty());
        let unmetered = "fn f(x: &mut Arc<Vec<u8>>) { Arc::get_mut(x); }\n";
        assert!(run("crates/serve/src/worker.rs", unmetered).is_empty());
    }
}
