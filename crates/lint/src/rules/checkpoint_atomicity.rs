//! `checkpoint-atomicity`: checkpoint bytes reach disk only through the
//! atomic temp→fsync→rename path.
//!
//! Port of the old `ci.sh` grep gate, made file-rename-robust: instead of
//! exempting `crates/nn/src/checkpoint.rs` by path (which silently rots if
//! the file moves), the one legitimate writer carries an allow-comment. The
//! rule flags any `fs::write(...)` / `File::create(...)` whose statement
//! mentions a checkpoint (an identifier or string containing `kgck`,
//! `ckpt`, or `checkpoint`, case-insensitive). A torn checkpoint is exactly
//! what the KGCK CRC exists to *detect*, not to *cause*; tests that forge
//! corrupt bytes on purpose are exempt by scope.

use super::{stmt_range, Rule};
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::source::SourceFile;

pub struct CheckpointAtomicity;

const CHECKPOINT_MARKERS: &[&str] = &["kgck", "ckpt", "checkpoint"];

fn mentions_checkpoint(text: &str) -> bool {
    let lower = text.to_ascii_lowercase();
    CHECKPOINT_MARKERS.iter().any(|m| lower.contains(m))
}

impl Rule for CheckpointAtomicity {
    fn id(&self) -> &'static str {
        "checkpoint-atomicity"
    }

    fn describe(&self) -> &'static str {
        "checkpoint files are written only via the atomic Checkpointer (temp→fsync→rename)"
    }

    fn check_file(&mut self, f: &SourceFile, out: &mut Vec<Finding>) {
        // Product code only: lib and binaries. Tests forge torn files.
        if !matches!(
            f.scope,
            crate::source::Scope::Lib | crate::source::Scope::Bin
        ) {
            return;
        }
        for i in 0..f.code.len() {
            if f.code_kind(i) != Some(TokKind::Ident) || f.code_in_test(i) {
                continue;
            }
            let t = f.code_text(i);
            let is_write = t == "fs"
                && f.code_text(i + 1) == ":"
                && f.code_text(i + 2) == ":"
                && f.code_text(i + 3) == "write";
            let is_create = t == "File"
                && f.code_text(i + 1) == ":"
                && f.code_text(i + 2) == ":"
                && matches!(f.code_text(i + 3), "create" | "create_new");
            if !is_write && !is_create {
                continue;
            }
            let (s, e) = stmt_range(f, i);
            let checkpointy = (s..e).any(|j| {
                matches!(
                    f.code_kind(j),
                    Some(TokKind::Ident | TokKind::Str | TokKind::RawStr)
                ) && mentions_checkpoint(f.code_text(j))
            });
            if checkpointy {
                let call = if is_write { "fs::write" } else { "File::create" };
                out.push(Finding::new(
                    self.id(),
                    &f.path,
                    f.code_line(i),
                    format!(
                        "`{call}` of checkpoint data outside the atomic Checkpointer: a \
                         crash mid-write leaves a torn file; go through \
                         kglink_nn::checkpoint::Checkpointer"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<u32> {
        let f = SourceFile::new(path.into(), src.into());
        let mut out = Vec::new();
        CheckpointAtomicity.check_file(&f, &mut out);
        out.into_iter().map(|x| x.line).collect()
    }

    #[test]
    fn flags_bare_checkpoint_writes_by_ident_or_string() {
        let src = "\
fn save(ckpt_path: &Path, bytes: &[u8]) {
    fs::write(ckpt_path, bytes);
    let f = File::create(\"model.kgck\");
    std::fs::write(other, data);
}
";
        assert_eq!(run("crates/core/src/train.rs", src), vec![2, 3]);
    }

    #[test]
    fn unrelated_writes_and_tests_are_exempt() {
        let src = "fn dump(p: &Path) { fs::write(p, \"results\"); }\n";
        assert!(run("crates/core/src/train.rs", src).is_empty());
        let forged = "fn t() { fs::write(\"torn.kgck\", b\"junk\"); }\n";
        assert!(run("crates/nn/tests/checkpoint.rs", forged).is_empty());
        let inline = "#[cfg(test)]\nmod t { fn f() { fs::write(\"x.kgck\", b\"j\"); } }\n";
        assert!(run("crates/nn/src/checkpoint.rs", inline).is_empty());
    }
}
