//! `hot-path-alloc`: kernel and layer forward/backward bodies must not
//! allocate — now including through the helpers they call.
//!
//! The kernel layer's whole contract is that steady-state inference
//! performs zero heap allocations: every buffer comes from a preallocated
//! [`Scratch`] arena (`kglink_kernels::Scratch`), and the counting-allocator
//! test in `crates/nn/tests/alloc.rs` enforces the end-to-end guarantee.
//! That test only covers the paths it drives, though — a `vec![0.0; n]`
//! added to a rarely-taken branch regresses the per-call allocation count
//! without failing it. This rule is the static backstop, in two layers:
//!
//! 1. **Direct sites** — the original scan, unchanged: the allocation
//!    idioms (`Vec::new()`, `vec![`, `.to_vec()`, `.clone()`) inside any
//!    `fn forward`/`fn backward` body in the kernel crate
//!    (`crates/kernels/`) and the layer zoo (`crates/nn/src/layers/`).
//! 2. **Reach through helpers** — a forward/backward body calling (through
//!    any resolved chain) a function in those same hot-path crates whose
//!    body allocates. The helper itself is legal (`hot-path-alloc` only
//!    polices hot bodies), but calling it from a hot body moves the
//!    allocation onto the steady-state path; flagged at the call site.
//!    Allocations outside the hot-path crates are out of scope — the rest
//!    of the workspace allocates freely, and hot code calling into it
//!    (e.g. error construction on a cold branch) is the allocation-counting
//!    test's business, not this rule's.
//!
//! Training-path allocations that are *owned past the call* — a cache that
//! must outlive the caller's borrow of the input, for example — are
//! legitimate; they carry a justified
//! `// kglink-lint: allow(hot-path-alloc)` comment, which also stops the
//! site from propagating to callers.
//!
//! [`Scratch`]: ../../../kernels/src/scratch.rs

use super::GraphRule;
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::source::{Scope, SourceFile};
use crate::workspace::Workspace;
use std::collections::BTreeSet;

pub struct HotPathAlloc;

/// Path prefixes whose forward/backward bodies are hot-path code. The rest
/// of the workspace allocates freely.
const PATH_SCOPE: &[&str] = &["crates/kernels/", "crates/nn/src/layers/"];

/// Function names whose bodies the rule scans.
const HOT_FNS: &[&str] = &["forward", "backward"];

impl GraphRule for HotPathAlloc {
    fn id(&self) -> &'static str {
        "hot-path-alloc"
    }

    fn describe(&self) -> &'static str {
        "kernel/layer forward and backward bodies allocate only through scratch arenas, including via helpers"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for f in &ws.files {
            check_direct(self.id(), f, out);
        }
        let mut seen: BTreeSet<(usize, u32, String)> = BTreeSet::new();
        for (i, (file_ix, item)) in ws.fns.iter().enumerate() {
            let f = &ws.files[*file_ix];
            if f.scope != Scope::Lib
                || item.in_test
                || !HOT_FNS.contains(&item.name.as_str())
                || !PATH_SCOPE.iter().any(|p| f.path.starts_with(p))
            {
                continue;
            }
            for call in &ws.calls[i] {
                for &callee in &call.callees {
                    if callee == i {
                        continue;
                    }
                    let Some(w) = &ws.props[callee].may_alloc else {
                        continue;
                    };
                    let wf = &ws.files[w.site.file];
                    if wf.scope != Scope::Lib
                        || !PATH_SCOPE.iter().any(|p| wf.path.starts_with(p))
                    {
                        continue; // out-of-scope code allocates freely
                    }
                    // The fn owning the witness site is the last hop of the
                    // chain (or the callee itself); if that is a hot body in
                    // scope, the direct layer already anchors the site.
                    let owner = w
                        .via
                        .last()
                        .map(String::as_str)
                        .unwrap_or(ws.fns[callee].1.name.as_str());
                    if HOT_FNS.contains(&owner) {
                        continue;
                    }
                    if !seen.insert((*file_ix, call.site.line, call.site.name.clone())) {
                        continue;
                    }
                    out.push(Finding::new(
                        self.id(),
                        &f.path,
                        call.site.line,
                        format!(
                            "`{}` body calls `{}` which allocates at {}:{} ({}){} — \
                             the helper puts a heap allocation on the steady-state \
                             path; take the buffer from the scratch arena or hoist \
                             it out of the hot body",
                            item.name,
                            call.site.name,
                            wf.path,
                            w.site.line,
                            w.site.what,
                            w.via_text(),
                        ),
                    ));
                }
            }
        }
    }
}

/// The original per-file scan, verbatim.
fn check_direct(id: &'static str, f: &SourceFile, out: &mut Vec<Finding>) {
    if f.scope != Scope::Lib || !PATH_SCOPE.iter().any(|p| f.path.starts_with(p)) {
        return;
    }
    let n = f.code.len();
    let mut i = 0usize;
    while i < n {
        let is_hot_fn = f.code_text(i) == "fn"
            && f.code_kind(i + 1) == Some(TokKind::Ident)
            && HOT_FNS.contains(&f.code_text(i + 1))
            && !f.code_in_test(i);
        if !is_hot_fn {
            i += 1;
            continue;
        }
        let Some((body_start, body_end)) = fn_body(f, i + 2) else {
            // Trait signature (`fn forward(...);`) or unbalanced file:
            // nothing to scan.
            i += 2;
            continue;
        };
        check_body(id, f, body_start, body_end, out);
        i = body_end;
    }
}

fn check_body(id: &'static str, f: &SourceFile, start: usize, end: usize, out: &mut Vec<Finding>) {
    for i in start..end {
        if f.code_in_test(i) {
            continue;
        }
        let (pattern, at) = match f.code_text(i) {
            // `Vec::new(` — `::` lexes as two `:` tokens.
            "Vec"
                if f.code_text(i + 1) == ":"
                    && f.code_text(i + 2) == ":"
                    && f.code_text(i + 3) == "new"
                    && f.code_text(i + 4) == "(" =>
            {
                ("Vec::new()", i)
            }
            "vec" if f.code_text(i + 1) == "!" => ("vec![...]", i),
            "to_vec" if i > 0 && f.code_text(i - 1) == "." && f.code_text(i + 1) == "(" => {
                (".to_vec()", i)
            }
            "clone"
                if i > 0
                    && f.code_text(i - 1) == "."
                    && f.code_text(i + 1) == "("
                    && f.code_text(i + 2) == ")" =>
            {
                (".clone()", i)
            }
            _ => continue,
        };
        out.push(Finding::new(
            id,
            &f.path,
            f.code_line(at),
            format!(
                "`{pattern}` in a hot-path forward/backward body: take the buffer \
                 from the scratch arena (`kernels::with_thread_scratch`) or hoist \
                 it out of the call; if the allocation is a training cache that \
                 must own its data, justify it with an allow comment"
            ),
        ));
    }
}

/// Code-token range `(start, end)` of the body of the fn whose name sits
/// just before `from`: skip to the parameter list's `(`, match it, then
/// match the first following `{`. Returns `None` for bodiless signatures.
fn fn_body(f: &SourceFile, from: usize) -> Option<(usize, usize)> {
    let n = f.code.len();
    let mut i = from;
    while i < n && f.code_text(i) != "(" {
        if f.code_text(i) == ";" || f.code_text(i) == "{" {
            return None; // malformed or bodiless before params
        }
        i += 1;
    }
    let mut depth = 0i32;
    while i < n {
        match f.code_text(i) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i += 1;
    // Return type (may itself contain parens, e.g. `-> (Tensor, Cache)`),
    // then the body brace — or a `;` for a trait signature.
    let mut depth = 0i32;
    while i < n {
        match f.code_text(i) {
            "(" => depth += 1,
            ")" => depth -= 1,
            ";" if depth == 0 => return None,
            "{" if depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    if i >= n {
        return None;
    }
    let body_start = i + 1;
    let mut braces = 0i32;
    while i < n {
        match f.code_text(i) {
            "{" => braces += 1,
            "}" => {
                braces -= 1;
                if braces == 0 {
                    return Some((body_start, i));
                }
            }
            _ => {}
        }
        i += 1;
    }
    // Unbalanced file: scan to the end rather than missing findings.
    Some((body_start, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_files(files: Vec<(&str, &str)>) -> Vec<(String, u32, String)> {
        let ws = Workspace::from_sources(files);
        let mut out = Vec::new();
        HotPathAlloc.check(&ws, &mut out);
        out.into_iter()
            .map(|x| (x.path, x.line, x.message))
            .collect()
    }

    fn run(path: &str, src: &str) -> Vec<u32> {
        run_files(vec![(path, src)])
            .into_iter()
            .map(|(_, l, _)| l)
            .collect()
    }

    const HOT: &str = "\
pub fn forward(&self, x: &Tensor) -> Tensor {
    let cache = x.clone();
    let ids = self.ids.to_vec();
    let mut buf = vec![0.0f32; 8];
    let mut tails = Vec::new();
    buf[0] = 1.0;
    cache
}
";

    #[test]
    fn flags_all_four_patterns_in_forward() {
        assert_eq!(
            run("crates/nn/src/layers/linear.rs", HOT),
            vec![2, 3, 4, 5]
        );
        assert_eq!(run("crates/kernels/src/gemm.rs", HOT), vec![2, 3, 4, 5]);
    }

    #[test]
    fn backward_is_scanned_and_other_fns_are_not() {
        let src = "\
fn backward(&self) { let d = dy.clone(); }
fn infer(&self) { let y = x.clone(); }
fn helper() { let v = Vec::new(); }
";
        assert_eq!(run("crates/nn/src/layers/ffn.rs", src), vec![1]);
    }

    #[test]
    fn out_of_scope_paths_tests_and_signatures_are_exempt() {
        assert!(run("crates/core/src/train.rs", HOT).is_empty());
        assert!(run("crates/nn/src/encoder.rs", HOT).is_empty());
        assert!(run("crates/nn/tests/alloc.rs", HOT).is_empty());
        let inline = "#[cfg(test)]\nmod t {\n    fn forward() { let v = x.clone(); }\n}\n";
        assert!(run("crates/nn/src/layers/linear.rs", inline).is_empty());
        let sig = "trait Layer { fn forward(&self, x: &Tensor) -> Tensor; }\n";
        assert!(run("crates/nn/src/layers/linear.rs", sig).is_empty());
    }

    #[test]
    fn clone_with_arguments_and_plain_idents_do_not_match() {
        // `clone_from(...)`, a field named `clone`, and `to_vec` without a
        // receiver are not the flagged idioms.
        let src = "\
fn forward(&self) {
    a.clone_from(&b);
    let c = self.clone;
    let d = to_vec(x);
}
";
        assert!(run("crates/nn/src/layers/linear.rs", src).is_empty());
    }

    #[test]
    fn forward_calling_allocating_helper_is_flagged_at_the_call() {
        let src = "\
pub fn forward(x: &[f32]) -> f32 {
    let s = scale(x);
    s
}
fn scale(x: &[f32]) -> f32 {
    let owned = x.to_vec();
    owned[0]
}
";
        let hits = run_files(vec![("crates/kernels/src/norm.rs", src)]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].1, 2);
        assert!(hits[0].2.contains("`scale`") && hits[0].2.contains("norm.rs:6"), "{}", hits[0].2);
    }

    #[test]
    fn helper_outside_hot_crates_is_not_flagged() {
        let hits = run_files(vec![
            (
                "crates/kernels/src/norm.rs",
                "pub fn forward(x: &[f32]) -> f32 { cold_error(x) }\n",
            ),
            (
                "crates/core/src/err.rs",
                "pub fn cold_error(x: &[f32]) -> f32 { let v = x.to_vec(); v[0] }\n",
            ),
        ]);
        assert!(hits.is_empty(), "{hits:?}");
    }
}
