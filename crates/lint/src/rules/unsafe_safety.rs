//! `unsafe-needs-safety-comment`: every `unsafe` block, fn, or impl in the
//! workspace must be immediately preceded by a `// SAFETY:` comment that
//! argues why the operation is sound. Applies to *all* scopes — an unsound
//! test is still unsound.

use super::Rule;
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::source::SourceFile;

pub struct UnsafeSafety;

/// Tokens allowed between the SAFETY comment and the `unsafe` keyword:
/// visibility/ABI modifiers and attribute machinery.
fn is_modifier(text: &str, kind: TokKind) -> bool {
    matches!(text, "pub" | "const" | "extern" | "crate" | "(" | ")" | "in" | "super" | "self")
        || kind == TokKind::Str // extern "C"
}

impl Rule for UnsafeSafety {
    fn id(&self) -> &'static str {
        "unsafe-needs-safety-comment"
    }

    fn describe(&self) -> &'static str {
        "every `unsafe` must be preceded by a `// SAFETY:` comment"
    }

    fn check_file(&mut self, f: &SourceFile, out: &mut Vec<Finding>) {
        for (ti, tok) in f.tokens.iter().enumerate() {
            if tok.kind != TokKind::Ident || tok.text(&f.text) != "unsafe" {
                continue;
            }
            if !has_safety_comment(f, ti) {
                out.push(Finding::new(
                    self.id(),
                    &f.path,
                    tok.line,
                    "`unsafe` without a `// SAFETY:` comment: state the invariant \
                     that makes this sound, directly above the unsafe site",
                ));
            }
        }
    }
}

/// Accept a `SAFETY:` comment (a) anywhere earlier in the statement that
/// contains the `unsafe` keyword (`let x = /* SAFETY: … */ unsafe { … }`),
/// (b) in the comment run directly above that statement — attributes and
/// doc comments may sit in between — or (c) trailing on the `unsafe`
/// token's own line.
fn has_safety_comment(f: &SourceFile, unsafe_ti: usize) -> bool {
    let unsafe_line = f.tokens[unsafe_ti].line;
    // (c) trailing on the same line.
    for t in &f.tokens[unsafe_ti + 1..] {
        if t.line != unsafe_line {
            break;
        }
        if matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
            && t.text(&f.text).contains("SAFETY:")
        {
            return true;
        }
    }
    // (a) back through the current statement.
    let mut j = unsafe_ti;
    while j > 0 {
        j -= 1;
        let t = &f.tokens[j];
        let text = t.text(&f.text);
        if matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            if text.contains("SAFETY:") {
                return true;
            }
            continue;
        }
        if matches!(text, ";" | "{" | "}") {
            break;
        }
    }
    // (b) comment run directly above the statement: trivia, attributes, and
    // visibility/ABI modifiers may separate it from the boundary token.
    while j > 0 {
        j -= 1;
        let t = &f.tokens[j];
        let text = t.text(&f.text);
        match t.kind {
            TokKind::Whitespace => continue,
            TokKind::LineComment | TokKind::BlockComment => {
                if text.contains("SAFETY:") {
                    return true;
                }
                continue;
            }
            // Skip a whole attribute `#[...]` backwards.
            TokKind::Punct if text == "]" => {
                let mut depth = 1i32;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match f.tokens[j].text(&f.text) {
                        "]" => depth += 1,
                        "[" => depth -= 1,
                        _ => {}
                    }
                }
                if j > 0 && f.tokens[j - 1].text(&f.text) == "#" {
                    j -= 1;
                }
            }
            _ if is_modifier(text, t.kind) => continue,
            _ => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<u32> {
        let f = SourceFile::new("crates/nn/src/tensor.rs".into(), src.into());
        let mut out = Vec::new();
        UnsafeSafety.check_file(&f, &mut out);
        out.into_iter().map(|x| x.line).collect()
    }

    #[test]
    fn flags_uncommented_unsafe_block_and_fn() {
        let src = "fn f() {\n let x = unsafe { *p };\n}\npub unsafe fn g() {}\n";
        assert_eq!(run(src), vec![2, 4]);
    }

    #[test]
    fn safety_comment_satisfies_including_through_modifiers_and_attrs() {
        let src = "\
// SAFETY: p is non-null and aligned; checked on construction.
let x = unsafe { *p };
// SAFETY: the caller upholds the aliasing contract.
#[inline]
pub unsafe fn g() {}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unsafe_in_strings_and_comments_is_not_code() {
        assert!(run("// unsafe\nlet s = \"unsafe { }\";\n").is_empty());
    }

    #[test]
    fn tests_are_not_exempt() {
        let src = "#[cfg(test)]\nmod t { fn f() { unsafe { q() } } }\n";
        assert_eq!(run(src), vec![2]);
    }
}
