//! `deadline-drop`: a function that receives a `Deadline` and reaches a
//! `KgBackend` retrieval call must forward the deadline it was given.
//!
//! Deadline propagation is the PR-1/PR-2 contract: the serve layer budgets
//! each request, and every retrieval hop subtracts what it spent, so a
//! stalling KG backend degrades one column (the paper's Table IV no-linkage
//! fallback) instead of wedging a worker. A function that *accepts* a
//! `Deadline` parameter but reaches `search_entities`/`link_mention` —
//! directly or through any resolved call chain — without ever mentioning
//! that parameter has silently opted its subtree out of the budget: the
//! backend call runs unbounded (or on a deadline it invented), and the
//! caller's budget math is fiction.
//!
//! The check is name-based on the phase-1 summaries: the parameter's type
//! text must contain `Deadline`, and "forwarded" means the parameter name
//! appears anywhere in the function's own body (passing it on, checking
//! `remaining()`, or rebudgeting from it all count). Findings anchor at the
//! `fn` declaration line, so a justified allow sits on the signature.
//! Bodiless trait signatures are exempt — the obligation is the
//! implementor's.

use super::GraphRule;
use crate::diag::Finding;
use crate::source::Scope;
use crate::workspace::Workspace;

pub struct DeadlineDrop;

impl GraphRule for DeadlineDrop {
    fn id(&self) -> &'static str {
        "deadline-drop"
    }

    fn describe(&self) -> &'static str {
        "a fn receiving a Deadline that reaches a KgBackend call must forward the deadline"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for (i, (file_ix, item)) in ws.fns.iter().enumerate() {
            let f = &ws.files[*file_ix];
            if f.scope != Scope::Lib || item.in_test || item.body.is_none() {
                continue;
            }
            let dropped: Vec<&str> = ws.locals[i]
                .deadline_params
                .iter()
                .filter(|(_, used)| !used)
                .map(|(name, _)| name.as_str())
                .collect();
            if dropped.is_empty() {
                continue;
            }
            // Does this fn reach a backend call at all?
            let reach = ws.locals[i]
                .backend_calls
                .first()
                .map(|s| {
                    (
                        ws.files[s.file].path.clone(),
                        s.line,
                        s.what.clone(),
                        String::new(),
                    )
                })
                .or_else(|| {
                    ws.calls[i].iter().find_map(|call| {
                        call.callees.iter().find_map(|&callee| {
                            if callee == i {
                                return None;
                            }
                            ws.props[callee].reaches_backend.as_ref().map(|w| {
                                (
                                    ws.files[w.site.file].path.clone(),
                                    w.site.line,
                                    w.site.what.clone(),
                                    format!(
                                        " via `{}`{}",
                                        call.site.name,
                                        w.via_text().replace(" via ", " → "),
                                    ),
                                )
                            })
                        })
                    })
                });
            let Some((wpath, wline, what, via)) = reach else {
                continue;
            };
            for name in dropped {
                out.push(Finding::new(
                    self.id(),
                    &f.path,
                    item.line,
                    format!(
                        "`{}` receives `{name}: Deadline` but reaches {what} at \
                         {wpath}:{wline}{via} without ever using `{name}` — the \
                         backend call escapes the caller's budget; forward the \
                         deadline (or rebudget from it)",
                        item.name,
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: Vec<(&str, &str)>) -> Vec<(String, u32, String)> {
        let ws = Workspace::from_sources(files);
        let mut out = Vec::new();
        DeadlineDrop.check(&ws, &mut out);
        out.into_iter()
            .map(|x| (x.path, x.line, x.message))
            .collect()
    }

    #[test]
    fn forwarded_and_rebudgeted_deadlines_are_clean() {
        let src = "\
impl R {
    fn fetch(&self, q: &str, deadline: Deadline) -> Hits {
        self.backend.search_entities(q, 5, deadline)
    }
    fn careful(&self, q: &str, deadline: Deadline) -> Hits {
        let per_hop = deadline.split(2);
        self.backend.search_entities(q, 5, per_hop)
    }
}
";
        assert!(run(vec![("crates/kg/src/retry.rs", src)]).is_empty());
    }

    #[test]
    fn dropped_deadline_before_a_direct_backend_call_is_flagged() {
        let src = "\
impl R {
    fn fetch(&self, q: &str, deadline: Deadline) -> Hits {
        self.backend.search_entities(q, 5, Deadline::UNBOUNDED)
    }
}
";
        let hits = run(vec![("crates/kg/src/retry.rs", src)]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].1, 2, "anchored at the fn declaration");
        assert!(hits[0].2.contains("`deadline: Deadline`"), "{}", hits[0].2);
    }

    #[test]
    fn dropped_deadline_before_an_indirect_backend_call_is_flagged() {
        let src = "\
impl R {
    fn annotate(&self, col: &Column, deadline: Deadline) {
        self.resolve_all(col);
    }
    fn resolve_all(&self, col: &Column) {
        self.backend.link_mention(col.cell(0), Deadline::UNBOUNDED);
    }
}
";
        let hits = run(vec![("crates/serve/src/svc.rs", src)]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].1, 2);
        assert!(
            hits[0].2.contains("via `resolve_all`") && hits[0].2.contains("link_mention"),
            "{}",
            hits[0].2
        );
    }

    #[test]
    fn terminal_fns_trait_sigs_and_tests_are_exempt() {
        // No backend call anywhere below: dropping the deadline is fine
        // (e.g. an in-memory backend that answers instantly).
        let terminal = "\
impl Mem {
    fn search(&self, q: &str, _deadline: Deadline) -> Hits {
        self.table.get(q)
    }
}
";
        assert!(run(vec![("crates/kg/src/mem.rs", terminal)]).is_empty());
        let sig = "trait KgBackend { fn search_entities(&self, q: &str, k: usize, deadline: Deadline) -> Hits; }\n";
        assert!(run(vec![("crates/kg/src/backend.rs", sig)]).is_empty());
        let test_file = "\
fn drive(b: &B, deadline: Deadline) {
    b.search_entities(\"q\", 5, Deadline::UNBOUNDED);
}
";
        assert!(run(vec![("crates/kg/tests/t.rs", test_file)]).is_empty());
    }
}
