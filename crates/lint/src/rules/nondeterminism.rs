//! `nondeterminism`: protect the bit-identity invariants.
//!
//! Kill+resume (PR 4) and multi-worker serving (PR 2) are verified to be
//! bit-identical; both break the moment wall-clock time or hash-map
//! iteration order leaks into an output. This rule flags, in library code:
//!
//! - `Instant::now` / `SystemTime::now` — wall-clock reads. `crates/obs/`
//!   is allowlisted wholesale (timing is its whole job); the serving
//!   layer's queue-wait timestamps carry per-site allow-comments.
//! - iteration over a local/parameter known to be a `HashMap`/`HashSet`
//!   (`for .. in map`, `map.iter()`, `.keys()`, `.values()`, `.drain()`,
//!   `.into_iter()`), unless the same statement visibly sorts. Iteration
//!   order is randomized per process in principle; anything it feeds into
//!   an output must be order-insensitive — if it is, say so in an
//!   allow-comment.

use super::{is_lib_code, range_has, stmt_range, Rule};
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::BTreeSet;

pub struct Nondeterminism;

/// Files whose entire purpose is measurement.
const PATH_ALLOWLIST: &[&str] = &["crates/obs/"];

const MAP_TYPES: &[&str] = &["HashMap", "HashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];
/// Evidence of re-ordering in the same statement: the iteration result is
/// sorted (or funneled through an ordered collection) before use.
const SORT_EVIDENCE: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
];

impl Rule for Nondeterminism {
    fn id(&self) -> &'static str {
        "nondeterminism"
    }

    fn describe(&self) -> &'static str {
        "no wall-clock reads or HashMap-iteration-order dependence in library code"
    }

    fn check_file(&mut self, f: &SourceFile, out: &mut Vec<Finding>) {
        if PATH_ALLOWLIST.iter().any(|p| f.path.starts_with(p)) {
            return;
        }
        let maps = known_maps(f);
        for i in 0..f.code.len() {
            if f.code_kind(i) != Some(TokKind::Ident) || !is_lib_code(f, i) {
                continue;
            }
            let t = f.code_text(i);
            // Instant::now / SystemTime::now
            if (t == "Instant" || t == "SystemTime")
                && f.code_text(i + 1) == ":"
                && f.code_text(i + 2) == ":"
                && f.code_text(i + 3) == "now"
            {
                out.push(Finding::new(
                    self.id(),
                    &f.path,
                    f.code_line(i),
                    format!(
                        "`{t}::now()` in library code: wall-clock reads break resume/serve \
                         bit-identity; take time as an input or move it behind kglink-obs"
                    ),
                ));
                continue;
            }
            // for .. in <map>
            if t == "for" {
                if let Some((name, line)) = for_loop_over(f, i, &maps) {
                    out.push(map_iter_finding(self.id(), f, line, &name));
                }
                continue;
            }
            // <map>.iter() / .keys() / ...
            if maps.contains(t)
                && f.code_text(i + 1) == "."
                && ITER_METHODS.contains(&f.code_text(i + 2))
                && f.code_text(i + 3) == "("
            {
                let (s, e) = stmt_range(f, i);
                if !range_has(f, s, e, |w| SORT_EVIDENCE.contains(&w)) {
                    out.push(map_iter_finding(self.id(), f, f.code_line(i), t));
                }
            }
        }
    }
}

fn map_iter_finding(id: &'static str, f: &SourceFile, line: u32, name: &str) -> Finding {
    Finding::new(
        id,
        &f.path,
        line,
        format!(
            "iteration over the HashMap/HashSet `{name}`: iteration order is \
             unspecified; sort before it reaches an output, or justify \
             order-insensitivity with an allow-comment"
        ),
    )
}

/// Names declared in this file with a `HashMap`/`HashSet` type: binds via
/// `name: HashMap<...>` (lets, fn params, struct fields) and via
/// `let [mut] name = HashMap::new()`-style constructor calls.
fn known_maps(f: &SourceFile) -> BTreeSet<String> {
    let mut maps = BTreeSet::new();
    for i in 0..f.code.len() {
        let t = f.code_text(i);
        if !MAP_TYPES.contains(&t) {
            continue;
        }
        // `name : HashMap` (possibly `&HashMap`, `&mut HashMap`).
        let mut j = i;
        while j >= 1 && matches!(f.code_text(j - 1), "&" | "mut") {
            j -= 1;
        }
        if j >= 2 && f.code_text(j - 1) == ":" && f.code_kind(j - 2) == Some(TokKind::Ident) {
            maps.insert(f.code_text(j - 2).to_string());
            continue;
        }
        // `name = HashMap::new(...)` / `with_capacity` / `default` / `from`.
        if j >= 2
            && f.code_text(j - 1) == "="
            && f.code_kind(j - 2) == Some(TokKind::Ident)
            && f.code_text(i + 1) == ":"
            && f.code_text(i + 2) == ":"
        {
            maps.insert(f.code_text(j - 2).to_string());
        }
    }
    maps
}

/// If the `for` loop starting at code index `i` iterates directly over a
/// known map (`for .. in [&[mut]] name {`), return (name, line-of-for).
fn for_loop_over(f: &SourceFile, i: usize, maps: &BTreeSet<String>) -> Option<(String, u32)> {
    // Find `in` at pattern depth 0, within a bounded window.
    let mut j = i + 1;
    let mut depth = 0i32;
    let limit = (i + 40).min(f.code.len());
    while j < limit {
        match f.code_text(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "in" if depth == 0 => break,
            "{" => return None,
            _ => {}
        }
        j += 1;
    }
    if j >= limit || f.code_text(j) != "in" {
        return None;
    }
    // Collect the iterated expression up to the body `{`; flag only the
    // direct form: optional `&`/`mut` then exactly one identifier.
    let mut name: Option<&str> = None;
    let mut k = j + 1;
    while k < (j + 6).min(f.code.len()) {
        match f.code_text(k) {
            "&" | "mut" => {}
            "{" => return name.map(|n| (n.to_string(), f.code_line(i))),
            w if f.code_kind(k) == Some(TokKind::Ident) && name.is_none() => {
                if !maps.contains(w) {
                    return None;
                }
                name = Some(w);
            }
            _ => return None,
        }
        k += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<u32> {
        let f = SourceFile::new(path.into(), src.into());
        let mut out = Vec::new();
        Nondeterminism.check_file(&f, &mut out);
        out.into_iter().map(|x| x.line).collect()
    }

    #[test]
    fn flags_wall_clock_in_lib_but_not_in_obs_or_tests() {
        let src = "fn f() { let t = Instant::now(); let s = SystemTime::now(); }\n";
        assert_eq!(run("crates/serve/src/x.rs", src), vec![1, 1]);
        assert!(run("crates/obs/src/tracer.rs", src).is_empty());
        assert!(run("crates/serve/tests/x.rs", src).is_empty());
    }

    #[test]
    fn flags_for_loop_and_method_iteration_over_known_maps() {
        let src = "\
fn f(acc: HashMap<u32, f32>) {
    let mut tf: HashMap<&str, u32> = HashMap::new();
    for (k, v) in &acc { use_it(k, v); }
    let keys: Vec<_> = tf.keys().collect();
}
";
        assert_eq!(run("crates/search/src/x.rs", src), vec![3, 4]);
    }

    #[test]
    fn sorted_in_same_statement_is_clean_and_vecs_are_ignored() {
        let src = "\
fn f(m: HashMap<u32, u32>, v: Vec<u32>) {
    let mut ks: Vec<_> = m.keys().copied().collect::<Vec<_>>().sort_unstable();
    for x in &v { use_it(x); }
    for (k, w) in m.iter().collect::<std::collections::BTreeMap<_, _>>() { use_it(k, w); }
}
";
        assert!(run("crates/search/src/x.rs", src).is_empty());
    }

    #[test]
    fn constructor_bind_is_tracked() {
        let src = "fn f() { let seen = HashSet::new(); for s in &seen { g(s); } }\n";
        assert_eq!(run("crates/kg/src/x.rs", src), vec![1]);
    }
}
