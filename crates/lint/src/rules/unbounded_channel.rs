//! `unbounded-channel`: serving-path queues must be bounded.
//!
//! The whole point of the serve crate's admission layer is that load has
//! one front door — [`BoundedQueue`] — where backpressure, shedding, and
//! the adaptive admission limit apply. An unbounded `mpsc::channel()` on a
//! serving path is a second, invisible queue: under overload it absorbs
//! work without limit, memory grows, and every latency bound the admission
//! controller enforces is quietly voided one hop downstream.
//!
//! The rule flags `mpsc::channel()` calls in the library code of the
//! serving-path crates (`crates/serve/`, `crates/search/`). Channels that
//! are bounded by construction — a reply channel that carries exactly one
//! message, an exit-notification channel bounded by the worker count —
//! carry a justified `// kglink-lint: allow(unbounded-channel)` comment.
//! `mpsc::sync_channel(n)` is bounded and never flagged; tests and other
//! crates are out of scope.
//!
//! [`BoundedQueue`]: ../../../serve/src/queue.rs

use super::Rule;
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::source::SourceFile;

pub struct UnboundedChannel;

/// Crates whose lib code is a serving path; everything else may buffer
/// freely (experiments, datagen, training).
const CRATE_ALLOWLIST: &[&str] = &["crates/serve/", "crates/search/"];

impl Rule for UnboundedChannel {
    fn id(&self) -> &'static str {
        "unbounded-channel"
    }

    fn describe(&self) -> &'static str {
        "serving-path crates queue work only through bounded queues, never mpsc::channel()"
    }

    fn check_file(&mut self, f: &SourceFile, out: &mut Vec<Finding>) {
        if f.scope != crate::source::Scope::Lib
            || !CRATE_ALLOWLIST.iter().any(|p| f.path.starts_with(p))
        {
            return;
        }
        for i in 0..f.code.len() {
            if f.code_kind(i) != Some(TokKind::Ident) || f.code_in_test(i) {
                continue;
            }
            // `mpsc::channel(` — `::` lexes as two `:` tokens. Plain
            // `channel()` after `use mpsc::channel` would dodge this, but
            // the codebase convention is module-qualified calls and the
            // fixture pins it.
            let is_unbounded = f.code_text(i) == "mpsc"
                && f.code_text(i + 1) == ":"
                && f.code_text(i + 2) == ":"
                && f.code_text(i + 3) == "channel"
                && f.code_text(i + 4) == "(";
            if is_unbounded {
                out.push(Finding::new(
                    self.id(),
                    &f.path,
                    f.code_line(i),
                    "unbounded `mpsc::channel()` on a serving path: a hidden queue that \
                     voids admission control under overload; use `BoundedQueue`, \
                     `mpsc::sync_channel`, or justify why this channel is bounded by \
                     construction"
                        .to_string(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<u32> {
        let f = SourceFile::new(path.into(), src.into());
        let mut out = Vec::new();
        UnboundedChannel.check_file(&f, &mut out);
        out.into_iter().map(|x| x.line).collect()
    }

    #[test]
    fn flags_unbounded_channels_in_serving_lib_code() {
        let src = "\
fn wire() {
    let (tx, rx) = mpsc::channel();
    let (btx, brx) = mpsc::sync_channel(8);
    let (qtx, qrx) = std::sync::mpsc::channel();
}
";
        assert_eq!(run("crates/serve/src/service.rs", src), vec![2, 4]);
        assert_eq!(run("crates/search/src/resilience.rs", src), vec![2, 4]);
    }

    #[test]
    fn other_crates_tests_and_inline_test_mods_are_exempt() {
        let src = "fn f() { let (tx, rx) = mpsc::channel(); }\n";
        assert!(run("crates/core/src/pipeline.rs", src).is_empty());
        assert!(run("crates/datagen/src/world.rs", src).is_empty());
        assert!(run("crates/serve/tests/serve.rs", src).is_empty());
        assert!(run("crates/bench/src/bin/exp_serve.rs", src).is_empty());
        let inline = "#[cfg(test)]\nmod t { fn f() { let (tx, rx) = mpsc::channel(); } }\n";
        assert!(run("crates/serve/src/queue.rs", inline).is_empty());
    }
}
