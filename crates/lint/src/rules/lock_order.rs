//! `lock-order`: deadlock-freedom and poison-audit hygiene in the
//! concurrent crates (`crates/serve`, `crates/search`) — now interprocedural.
//!
//! Three checks:
//!
//! 1. **Pairwise acquisition order, across calls.** Every function's
//!    acquisition sequence comes from its phase-1 summary (lock receivers
//!    qualified by `impl` type, so `self.state` in two `BoundedQueue`
//!    methods is one lock), recording all ordered pairs. On top of that,
//!    every call made *while a guard is held* (the summary's hold region
//!    covers the call site) contributes pairs against everything the callee
//!    transitively acquires. If any function establishes `A` before `B` and
//!    another `B` before `A` — directly or through calls — both witnesses
//!    are flagged: the classic ABBA deadlock shape. Local pair recording is
//!    deliberately hold-*insensitive* (sequential acquire/release still
//!    defines an order); call-edge pairs are hold-gated. False positives on
//!    genuinely release-separated sequences take a justified allow.
//! 2. **Reentrancy.** A call reachable while `A` is held into a callee
//!    that (transitively) acquires `A` again is a guaranteed self-deadlock
//!    with `std::sync::Mutex` — flagged at the call site with the chain.
//! 3. **Poison audit.** PR 4 established that serve/search locks recover
//!    from a panicked sibling with `unwrap_or_else(PoisonError::into_inner)`
//!    after arguing each guarded structure is re-validatable. A bare
//!    `.lock().unwrap()` / `.read().expect(...)` bypasses that audit and
//!    re-introduces poison cascades; it is flagged here (on top of
//!    `panic-in-lib`) even in binaries.

use super::GraphRule;
use crate::diag::Finding;
use crate::source::SourceFile;
use crate::workspace::Workspace;
use std::collections::{BTreeMap, BTreeSet};

pub struct LockOrder;

#[derive(Clone)]
struct Witness {
    path: String,
    func: String,
    line: u32,
}

/// Crates whose locking discipline this rule audits.
const CRATE_ALLOWLIST: &[&str] = &["crates/serve/", "crates/search/"];

const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

impl GraphRule for LockOrder {
    fn id(&self) -> &'static str {
        "lock-order"
    }

    fn describe(&self) -> &'static str {
        "consistent lock order across call chains; no reentrant acquisition; no bare lock().unwrap() past the poison audit"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for f in &ws.files {
            if in_scope(f) {
                poison_audit(self.id(), f, out);
            }
        }
        // (first, second) → earliest witness establishing that order.
        let mut pairs: BTreeMap<(String, String), Witness> = BTreeMap::new();
        let mut reentrant: BTreeSet<(String, u32, String)> = BTreeSet::new();
        for (i, (file_ix, item)) in ws.fns.iter().enumerate() {
            let f = &ws.files[*file_ix];
            if !in_scope(f) || item.in_test {
                continue;
            }
            let locks = &ws.locals[i].locks;
            // Local ordered pairs, as the per-file engine recorded them.
            let mut ordered: Vec<&str> = Vec::new();
            for lk in locks {
                if ordered.contains(&lk.name.as_str()) {
                    continue;
                }
                for &prev in &ordered {
                    pairs
                        .entry((prev.to_string(), lk.name.clone()))
                        .or_insert_with(|| Witness {
                            path: f.path.clone(),
                            func: item.name.clone(),
                            line: lk.line,
                        });
                }
                ordered.push(&lk.name);
            }
            // Call-edge pairs: calls made while a guard is held order the
            // held lock before everything the callee transitively acquires.
            for call in &ws.calls[i] {
                let held: Vec<_> = locks
                    .iter()
                    .filter(|lk| lk.hold.0 < call.site.ix && call.site.ix < lk.hold.1)
                    .collect();
                if held.is_empty() {
                    continue;
                }
                for &callee in &call.callees {
                    if callee == i {
                        continue;
                    }
                    for (acq, w) in &ws.props[callee].acquires {
                        for lk in &held {
                            if *acq == lk.name {
                                if reentrant.insert((f.path.clone(), call.site.line, acq.clone()))
                                {
                                    out.push(Finding::new(
                                        self.id(),
                                        &f.path,
                                        call.site.line,
                                        format!(
                                            "`{}` calls `{}` while holding `{}`, and the \
                                             callee acquires `{}` again{} — guaranteed \
                                             self-deadlock with std::sync::Mutex",
                                            item.name,
                                            call.site.name,
                                            lk.name,
                                            acq,
                                            w.via_text(),
                                        ),
                                    ));
                                }
                            } else {
                                pairs
                                    .entry((lk.name.clone(), acq.clone()))
                                    .or_insert_with(|| Witness {
                                        path: f.path.clone(),
                                        func: format!("{} (via `{}`)", item.name, call.site.name),
                                        line: call.site.line,
                                    });
                            }
                        }
                    }
                }
            }
        }
        for ((a, b), w) in &pairs {
            let Some(rev) = pairs.get(&(b.clone(), a.clone())) else {
                continue;
            };
            // Report each conflicting pair once, from the lexicographically
            // first side, anchored at both witnesses.
            if a >= b {
                continue;
            }
            for (here, there, first, second) in [(w, rev, a, b), (rev, w, b, a)] {
                out.push(Finding::new(
                    self.id(),
                    &here.path,
                    here.line,
                    format!(
                        "inconsistent lock order: `{}` acquires `{first}` then \
                         `{second}`, but `{}` ({}:{}) acquires them in the opposite \
                         order — potential ABBA deadlock",
                        here.func, there.func, there.path, there.line
                    ),
                ));
            }
        }
    }
}

fn in_scope(f: &SourceFile) -> bool {
    CRATE_ALLOWLIST.iter().any(|p| f.path.starts_with(p))
}

/// Flag `.lock().unwrap()` / `.read().expect(...)` at any non-test token —
/// the textual check the per-file engine ran, unchanged.
fn poison_audit(id: &'static str, f: &SourceFile, out: &mut Vec<Finding>) {
    for j in 0..f.code.len() {
        let m = f.code_text(j);
        if !ACQUIRE_METHODS.contains(&m)
            || j == 0
            || f.code_text(j - 1) != "."
            || f.code_text(j + 1) != "("
            || f.code_text(j + 2) != ")"
            || f.code_in_test(j)
        {
            continue;
        }
        if f.code_text(j + 3) == "."
            && matches!(f.code_text(j + 4), "unwrap" | "expect")
            && f.code_text(j + 5) == "("
        {
            out.push(Finding::new(
                id,
                &f.path,
                f.code_line(j + 4),
                format!(
                    "`.{m}().{}(...)` bypasses the PoisonError::into_inner \
                     audit: a panicked sibling poisons this lock and the \
                     {} cascades; recover with \
                     `unwrap_or_else(PoisonError::into_inner)` after checking \
                     the guarded state is re-validatable",
                    f.code_text(j + 4),
                    f.code_text(j + 4),
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: Vec<(&str, &str)>) -> Vec<(String, u32, String)> {
        let ws = Workspace::from_sources(files);
        let mut out = Vec::new();
        LockOrder.check(&ws, &mut out);
        out.into_iter()
            .map(|x| (x.path, x.line, x.message))
            .collect()
    }

    #[test]
    fn abba_order_is_flagged_at_both_sites() {
        let ab = "fn f(&self) {\n let a = self.a.lock();\n let b = self.b.lock();\n}\n";
        let ba = "fn g(&self) {\n let b = self.b.lock();\n let a = self.a.lock();\n}\n";
        let hits = run(vec![
            ("crates/serve/src/x.rs", ab),
            ("crates/search/src/y.rs", ba),
        ]);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().any(|(p, l, _)| p.ends_with("x.rs") && *l == 3));
        assert!(hits.iter().any(|(p, l, _)| p.ends_with("y.rs") && *l == 3));
        assert!(hits[0].2.contains("ABBA"));
    }

    #[test]
    fn consistent_order_and_single_locks_are_clean() {
        let ab = "fn f(&self) { let a = self.a.lock(); let b = self.b.lock(); }\n";
        let ab2 = "fn g(&self) { let a = self.a.lock(); let b = self.b.lock(); }\nfn h(&self) { self.b.lock(); }\n";
        assert!(run(vec![
            ("crates/serve/src/x.rs", ab),
            ("crates/serve/src/y.rs", ab2),
        ])
        .is_empty());
    }

    #[test]
    fn bare_unwrap_on_lock_is_flagged_but_poison_recovery_is_not() {
        let src = "\
fn f(&self) {
    self.state.lock().unwrap();
    self.state.lock().unwrap_or_else(PoisonError::into_inner);
    self.log.read().expect(\"poisoned\");
}
";
        let hits = run(vec![("crates/serve/src/x.rs", src)]);
        assert_eq!(
            hits.iter().map(|(_, l, _)| *l).collect::<Vec<_>>(),
            vec![2, 4]
        );
    }

    #[test]
    fn io_read_write_with_args_are_not_acquisitions() {
        let src = "fn f(&self) { file.read(&mut buf); sock.write(bytes); }\n";
        assert!(run(vec![("crates/serve/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn other_crates_are_out_of_scope() {
        let src = "fn f(&self) { self.state.lock().unwrap(); }\n";
        assert!(run(vec![("crates/kg/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn abba_through_a_call_chain_is_flagged() {
        // f holds A and calls g; g locks B. h locks B then A. The per-file
        // engine saw no pair in f at all — this is the cross-function case.
        let src = "\
impl S {
    fn f(&self) {
        let a = self.a.lock();
        self.g();
    }
    fn g(&self) {
        let b = self.b.lock();
    }
    fn h(&self) {
        let b = self.b.lock();
        let a = self.a.lock();
    }
}
";
        let hits = run(vec![("crates/serve/src/x.rs", src)]);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().any(|(_, l, m)| *l == 4 && m.contains("via `g`")), "{hits:?}");
        assert!(hits.iter().any(|(_, l, _)| *l == 11));
    }

    #[test]
    fn reentrant_acquisition_through_helper_is_flagged() {
        let src = "\
impl S {
    fn outer(&self) {
        let g = self.state.lock();
        self.depth();
    }
    fn depth(&self) -> usize {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).len()
    }
}
";
        let hits = run(vec![("crates/serve/src/x.rs", src)]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].1, 4);
        assert!(hits[0].2.contains("self-deadlock"), "{}", hits[0].2);
    }

    #[test]
    fn call_after_guard_drop_is_clean() {
        let src = "\
impl S {
    fn outer(&self) {
        let g = self.state.lock();
        drop(g);
        self.depth();
    }
    fn depth(&self) -> usize {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).len()
    }
}
";
        assert!(run(vec![("crates/serve/src/x.rs", src)]).is_empty());
    }
}
