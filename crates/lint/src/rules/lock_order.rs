//! `lock-order`: deadlock-freedom and poison-audit hygiene in the
//! concurrent crates (`crates/serve`, `crates/search`).
//!
//! Two checks:
//!
//! 1. **Pairwise acquisition order.** For every function, extract the
//!    sequence of distinct `Mutex`/`RwLock` receivers it acquires
//!    (`x.lock()`, `x.read()`, `x.write()` with no arguments). If one
//!    function acquires `A` before `B` and another acquires `B` before
//!    `A`, the global lock order is inconsistent — the classic ABBA
//!    deadlock shape — and both sites are flagged. The extraction is
//!    lexical (it cannot see releases), so a false positive on
//!    sequential (released-in-between) acquisitions is possible; that is
//!    what justified allow-comments are for.
//!
//! 2. **Poison audit.** PR 4 established that serve/search locks recover
//!    from a panicked sibling with `unwrap_or_else(PoisonError::into_inner)`
//!    after arguing each guarded structure is re-validatable. A bare
//!    `.lock().unwrap()` / `.read().expect(...)` bypasses that audit and
//!    re-introduces poison cascades; it is flagged here (on top of
//!    `panic-in-lib`) even in binaries.

use super::Rule;
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::BTreeMap;

#[derive(Default)]
pub struct LockOrder {
    /// (first-receiver, second-receiver) → earliest witness site.
    pairs: BTreeMap<(String, String), Witness>,
}

#[derive(Clone)]
struct Witness {
    path: String,
    func: String,
    line: u32,
}

/// Crates whose locking discipline this rule audits.
const CRATE_ALLOWLIST: &[&str] = &["crates/serve/", "crates/search/"];

const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

impl Rule for LockOrder {
    fn id(&self) -> &'static str {
        "lock-order"
    }

    fn describe(&self) -> &'static str {
        "consistent pairwise lock acquisition order; no bare lock().unwrap() past the poison audit"
    }

    fn check_file(&mut self, f: &SourceFile, out: &mut Vec<Finding>) {
        if !CRATE_ALLOWLIST.iter().any(|p| f.path.starts_with(p)) {
            return;
        }
        let mut i = 0usize;
        while i < f.code.len() {
            if f.code_text(i) == "fn"
                && f.code_kind(i + 1) == Some(TokKind::Ident)
                && !f.code_in_test(i)
            {
                i = self.check_fn(f, i, out);
            } else {
                i += 1;
            }
        }
    }

    fn finish(&mut self, out: &mut Vec<Finding>) {
        for ((a, b), w) in &self.pairs {
            let Some(rev) = self.pairs.get(&(b.clone(), a.clone())) else {
                continue;
            };
            // Report each conflicting pair once, from the lexicographically
            // first side, anchored at both witnesses.
            if a >= b {
                continue;
            }
            for (here, there, first, second) in [(w, rev, a, b), (rev, w, b, a)] {
                out.push(Finding::new(
                    self.id(),
                    &here.path,
                    here.line,
                    format!(
                        "inconsistent lock order: `{}` acquires `{first}` then \
                         `{second}`, but `{}` ({}:{}) acquires them in the opposite \
                         order — potential ABBA deadlock",
                        here.func, there.func, there.path, there.line
                    ),
                ));
            }
        }
    }
}

impl LockOrder {
    /// Scan one `fn` starting at code index `i` (pointing at `fn`); record
    /// its acquisition order, flag poison-audit bypasses, and return the
    /// code index just past the function body.
    fn check_fn(&mut self, f: &SourceFile, i: usize, out: &mut Vec<Finding>) -> usize {
        let func = f.code_text(i + 1).to_string();
        // Find the body's opening brace (a `;` first means a trait method
        // signature — no body).
        let n = f.code.len();
        let mut j = i + 2;
        while j < n && !matches!(f.code_text(j), "{" | ";") {
            j += 1;
        }
        if j >= n || f.code_text(j) == ";" {
            return j + 1;
        }
        let body_start = j;
        let mut depth = 0i32;
        let mut acquired: Vec<String> = Vec::new();
        while j < n {
            match f.code_text(j) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                m if ACQUIRE_METHODS.contains(&m)
                    && f.code_text(j.wrapping_sub(1)) == "."
                    && j > body_start
                    && f.code_text(j + 1) == "("
                    && f.code_text(j + 2) == ")" =>
                {
                    let line = f.code_line(j);
                    // Poison-audit bypass: `.lock().unwrap()` / `.expect(`.
                    if f.code_text(j + 3) == "."
                        && matches!(f.code_text(j + 4), "unwrap" | "expect")
                        && f.code_text(j + 5) == "("
                    {
                        out.push(Finding::new(
                            self.id(),
                            &f.path,
                            f.code_line(j + 4),
                            format!(
                                "`.{m}().{}(...)` bypasses the PoisonError::into_inner \
                                 audit: a panicked sibling poisons this lock and the \
                                 {} cascades; recover with \
                                 `unwrap_or_else(PoisonError::into_inner)` after checking \
                                 the guarded state is re-validatable",
                                f.code_text(j + 4),
                                f.code_text(j + 4),
                            ),
                        ));
                    }
                    if let Some(recv) = receiver_path(f, j.wrapping_sub(1)) {
                        if !acquired.contains(&recv) {
                            // Record *all* ordered pairs (not just adjacent
                            // ones) so a→b→c also witnesses a-before-c.
                            for prev in &acquired {
                                self.pairs
                                    .entry((prev.clone(), recv.clone()))
                                    .or_insert(Witness {
                                        path: f.path.clone(),
                                        func: func.clone(),
                                        line,
                                    });
                            }
                            acquired.push(recv);
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j + 1
    }
}

/// The dotted receiver path ending at the `.` at code index `dot`:
/// `self.state.lock()` → `self.state`; `shard.lock()` → `shard`.
/// Returns `None` when the receiver is a call or index expression
/// (`shard_for(k).lock()`) — those are excluded from order analysis.
fn receiver_path(f: &SourceFile, dot: usize) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot; // points at the `.` before the method name
    while j > 0 {
        let prev = j - 1;
        if f.code_kind(prev) == Some(TokKind::Ident) {
            parts.push(f.code_text(prev).to_string());
            if prev > 0 && f.code_text(prev - 1) == "." {
                j = prev - 1;
                continue;
            }
        }
        break;
    }
    if parts.is_empty() {
        return None;
    }
    parts.reverse();
    Some(parts.join("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<(String, u32, String)> {
        let mut rule = LockOrder::default();
        let mut out = Vec::new();
        for (path, src) in files {
            let f = SourceFile::new(path.to_string(), src.to_string());
            rule.check_file(&f, &mut out);
        }
        rule.finish(&mut out);
        out.into_iter().map(|x| (x.path, x.line, x.message)).collect()
    }

    #[test]
    fn abba_order_is_flagged_at_both_sites() {
        let ab = "fn f(&self) {\n let a = self.a.lock();\n let b = self.b.lock();\n}\n";
        let ba = "fn g(&self) {\n let b = self.b.lock();\n let a = self.a.lock();\n}\n";
        let hits = run(&[
            ("crates/serve/src/x.rs", ab),
            ("crates/search/src/y.rs", ba),
        ]);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().any(|(p, l, _)| p.ends_with("x.rs") && *l == 3));
        assert!(hits.iter().any(|(p, l, _)| p.ends_with("y.rs") && *l == 3));
        assert!(hits[0].2.contains("ABBA"));
    }

    #[test]
    fn consistent_order_and_single_locks_are_clean() {
        let ab = "fn f(&self) { self.a.lock(); self.b.lock(); }\n";
        let ab2 = "fn g(&self) { self.a.lock(); self.b.lock(); }\nfn h(&self) { self.b.lock(); }\n";
        assert!(run(&[
            ("crates/serve/src/x.rs", ab),
            ("crates/serve/src/y.rs", ab2),
        ])
        .is_empty());
    }

    #[test]
    fn bare_unwrap_on_lock_is_flagged_but_poison_recovery_is_not() {
        let src = "\
fn f(&self) {
    self.state.lock().unwrap();
    self.state.lock().unwrap_or_else(PoisonError::into_inner);
    self.log.read().expect(\"poisoned\");
}
";
        let hits = run(&[("crates/serve/src/x.rs", src)]);
        assert_eq!(
            hits.iter().map(|(_, l, _)| *l).collect::<Vec<_>>(),
            vec![2, 4]
        );
    }

    #[test]
    fn io_read_write_with_args_are_not_acquisitions() {
        let src = "fn f(&self) { file.read(&mut buf); sock.write(bytes); }\n";
        assert!(run(&[("crates/serve/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn other_crates_are_out_of_scope() {
        let src = "fn f(&self) { self.state.lock().unwrap(); }\n";
        assert!(run(&[("crates/kg/src/x.rs", src)]).is_empty());
    }
}
