//! `blocking-under-lock`: no blocking operation — `Condvar` waits, channel
//! `recv`s, thread joins/sleeps, file I/O, `KgBackend` retrieval — may be
//! reachable while a `MutexGuard`/`RwLock` guard is live in the concurrent
//! crates (`crates/serve`, `crates/search`).
//!
//! A worker parked inside such a region stalls every sibling contending on
//! the lock: queue hand-offs back up, deadline budgets burn while holding
//! shared state, and under overload the degradation ladder cannot shed
//! what it cannot reach. The check is interprocedural: a call made while a
//! guard is held is flagged when *anything* the callee transitively does
//! blocks.
//!
//! The one sanctioned shape is the Condvar protocol itself:
//! `guard = cv.wait(guard)` *consumes* the guard of its own mutex —
//! the lock is released while parked — so the wait's own lock never counts
//! as held. A wait while holding a *second* lock is still flagged.

use super::GraphRule;
use crate::diag::Finding;
use crate::source::{Scope, SourceFile};
use crate::workspace::Workspace;
use std::collections::BTreeSet;

pub struct BlockingUnderLock;

const CRATE_ALLOWLIST: &[&str] = &["crates/serve/", "crates/search/"];

fn in_scope(f: &SourceFile) -> bool {
    f.scope == Scope::Lib && CRATE_ALLOWLIST.iter().any(|p| f.path.starts_with(p))
}

impl GraphRule for BlockingUnderLock {
    fn id(&self) -> &'static str {
        "blocking-under-lock"
    }

    fn describe(&self) -> &'static str {
        "no condvar wait / channel recv / file I/O / KgBackend call reachable while a lock guard is live in serve/search"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let mut seen: BTreeSet<(usize, u32, String)> = BTreeSet::new();
        for (i, (file_ix, item)) in ws.fns.iter().enumerate() {
            let f = &ws.files[*file_ix];
            if !in_scope(f) || item.in_test {
                continue;
            }
            let locks = &ws.locals[i].locks;
            // Direct blocking sites under a held guard.
            for b in &ws.locals[i].blocking {
                let Some(lk) = locks.iter().find(|lk| {
                    lk.hold.0 < b.ix
                        && b.ix < lk.hold.1
                        && (b.consumes.is_none() || b.consumes != lk.binding)
                }) else {
                    continue;
                };
                if !seen.insert((*file_ix, b.line, b.what.clone())) {
                    continue;
                }
                out.push(Finding::new(
                    self.id(),
                    &f.path,
                    b.line,
                    format!(
                        "`{}` blocks on {} while holding `{}` — siblings contending \
                         on the lock stall for the full wait; release the guard \
                         first (drop it or narrow its scope)",
                        item.name, b.what, lk.name,
                    ),
                ));
            }
            // Calls under a held guard into (transitively) blocking callees.
            for call in &ws.calls[i] {
                let Some(lk) = locks
                    .iter()
                    .find(|lk| lk.hold.0 < call.site.ix && call.site.ix < lk.hold.1)
                else {
                    continue;
                };
                for &callee in &call.callees {
                    if callee == i {
                        continue;
                    }
                    let Some(w) = &ws.props[callee].may_block else {
                        continue;
                    };
                    if !seen.insert((*file_ix, call.site.line, call.site.name.clone())) {
                        continue;
                    }
                    out.push(Finding::new(
                        self.id(),
                        &f.path,
                        call.site.line,
                        format!(
                            "`{}` calls `{}` while holding `{}`, and the callee \
                             blocks on {}{} — the lock is held across the wait; \
                             release the guard before the call",
                            item.name,
                            call.site.name,
                            lk.name,
                            w.site.what,
                            w.via_text(),
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: Vec<(&str, &str)>) -> Vec<(String, u32, String)> {
        let ws = Workspace::from_sources(files);
        let mut out = Vec::new();
        BlockingUnderLock.check(&ws, &mut out);
        out.into_iter()
            .map(|x| (x.path, x.line, x.message))
            .collect()
    }

    #[test]
    fn condvar_wait_on_own_guard_is_the_sanctioned_protocol() {
        let src = "\
impl Q {
    fn pop(&self) -> T {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while state.items.is_empty() {
            state = self.not_empty.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        state.items.remove(0)
    }
}
";
        assert!(run(vec![("crates/serve/src/queue.rs", src)]).is_empty());
    }

    #[test]
    fn wait_while_holding_a_second_lock_is_flagged() {
        let src = "\
impl Q {
    fn bad(&self) {
        let stats = self.stats.lock().unwrap_or_else(PoisonError::into_inner);
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state = self.not_empty.wait(state).unwrap_or_else(PoisonError::into_inner);
        stats.record(state.len());
    }
}
";
        let hits = run(vec![("crates/serve/src/queue.rs", src)]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].1, 5);
        assert!(hits[0].2.contains("Q.stats"), "{}", hits[0].2);
    }

    #[test]
    fn backend_call_and_file_io_under_lock_are_flagged() {
        let src = "\
impl Cache {
    fn fill(&self, q: &str) {
        let mut map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
        let hits = self.backend.search_entities(q, 5, deadline);
        let raw = fs::read(path);
        map.insert(q, hits);
    }
}
";
        let hits = run(vec![("crates/search/src/cache.rs", src)]);
        assert_eq!(
            hits.iter().map(|(_, l, _)| *l).collect::<Vec<_>>(),
            vec![4, 5],
            "{hits:?}"
        );
    }

    #[test]
    fn blocking_reached_through_a_callee_is_flagged_at_the_call() {
        let src = "\
impl W {
    fn tick(&self) {
        let g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        self.drain();
        g.len();
    }
    fn drain(&self) {
        let batch = self.rx.recv();
    }
}
";
        let hits = run(vec![("crates/serve/src/worker.rs", src)]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].1, 4);
        assert!(hits[0].2.contains("`drain`"), "{}", hits[0].2);
    }

    #[test]
    fn blocking_after_guard_drop_and_out_of_scope_crates_are_clean() {
        let dropped = "\
impl W {
    fn tick(&self) {
        let g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        drop(g);
        let batch = self.rx.recv();
    }
}
";
        assert!(run(vec![("crates/serve/src/worker.rs", dropped)]).is_empty());
        let other = "\
impl W {
    fn tick(&self) {
        let g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let batch = self.rx.recv();
    }
}
";
        assert!(run(vec![("crates/store/src/cache.rs", other)]).is_empty());
    }
}
