//! The rule engine's rule set.
//!
//! Every rule has a stable kebab-case id (used in diagnostics and in
//! `// kglink-lint: allow(<id>)` suppressions), declares which path scopes
//! it applies to, and reports findings anchored to the first token of the
//! offending pattern. See DESIGN.md §11 for the catalog and the policy on
//! adding rules.

mod blocking_under_lock;
mod checkpoint_atomicity;
mod deadline_drop;
mod epoch_hold;
mod hot_path_alloc;
mod lock_order;
mod model_publish_atomicity;
mod nondeterminism;
mod panic_in_lib;
mod segment_atomicity;
mod single_percentile;
mod unbounded_channel;
mod unsafe_safety;

pub use blocking_under_lock::BlockingUnderLock;
pub use checkpoint_atomicity::CheckpointAtomicity;
pub use deadline_drop::DeadlineDrop;
pub use epoch_hold::EpochHold;
pub use hot_path_alloc::HotPathAlloc;
pub use lock_order::LockOrder;
pub use model_publish_atomicity::ModelPublishAtomicity;
pub use nondeterminism::Nondeterminism;
pub use panic_in_lib::PanicInLib;
pub use segment_atomicity::SegmentAtomicity;
pub use single_percentile::SinglePercentile;
pub use unbounded_channel::UnboundedChannel;
pub use unsafe_safety::UnsafeSafety;

use crate::diag::Finding;
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// A per-file lint rule. `check_file` is called once per file; `finish`
/// once after all files.
pub trait Rule {
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn describe(&self) -> &'static str;
    fn check_file(&mut self, file: &SourceFile, out: &mut Vec<Finding>);
    fn finish(&mut self, _out: &mut Vec<Finding>) {}
}

/// An interprocedural rule: runs once over the assembled phase-1
/// [`Workspace`] (item model, call graph, fixpoint-propagated summaries).
///
/// Ported rules (`lock-order`, `panic-in-lib`, `hot-path-alloc`) keep their
/// original direct token scans verbatim — everything the per-file engine
/// found stays findable, and allow-comment accounting at direct sites is
/// unchanged — and add call-graph reasoning on top.
pub trait GraphRule {
    fn id(&self) -> &'static str;
    fn describe(&self) -> &'static str;
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>);
}

/// The per-file rule set, fresh state per lint run.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(Nondeterminism),
        Box::new(CheckpointAtomicity),
        Box::new(SegmentAtomicity),
        Box::new(ModelPublishAtomicity),
        Box::new(SinglePercentile),
        Box::new(UnboundedChannel),
        Box::new(UnsafeSafety),
    ]
}

/// The interprocedural rule set.
pub fn graph_rules() -> Vec<Box<dyn GraphRule>> {
    vec![
        Box::new(PanicInLib),
        Box::new(LockOrder),
        Box::new(HotPathAlloc),
        Box::new(BlockingUnderLock),
        Box::new(DeadlineDrop),
        Box::new(EpochHold),
    ]
}

/// Ids of the engine-level suppression-hygiene checks (not `Rule` impls;
/// they run over the suppression table itself). Kept here so `--list-rules`
/// and the fixture harness see one namespace.
pub const META_RULES: &[(&str, &str)] = &[
    (
        "allow-missing-justification",
        "every kglink-lint: allow(...) must carry a justification after the closing paren",
    ),
    (
        "allow-unknown-rule",
        "allow(...) names a rule id the linter does not define",
    ),
    (
        "allow-unused",
        "allow(...) that suppressed nothing — the code it excused is gone; delete the comment",
    ),
];

/// True when code-token `i` of `f` is product library code: file in `Lib`
/// scope and token outside any inline `#[cfg(test)]` item.
pub fn is_lib_code(f: &SourceFile, i: usize) -> bool {
    f.scope == crate::source::Scope::Lib && !f.code_in_test(i)
}

/// Code-token index range `[start, end)` of the statement containing code
/// token `i`: back to just after the nearest `;`/`{`/`}`, forward through
/// the nearest `;` (or a block end). An approximation — good enough to ask
/// "does this statement mention a checkpoint?" or "is this chain sorted?".
pub fn stmt_range(f: &SourceFile, i: usize) -> (usize, usize) {
    let mut start = i;
    while start > 0 {
        match f.code_text(start - 1) {
            ";" | "{" | "}" => break,
            _ => start -= 1,
        }
    }
    let mut end = i;
    let n = f.code.len();
    while end < n {
        match f.code_text(end) {
            ";" => {
                end += 1;
                break;
            }
            "{" | "}" => break,
            _ => end += 1,
        }
    }
    (start, end)
}

/// True if any code token in `[start, end)` passes `pred` (given its text).
pub fn range_has(f: &SourceFile, start: usize, end: usize, mut pred: impl FnMut(&str) -> bool) -> bool {
    (start..end.min(f.code.len())).any(|j| pred(f.code_text(j)))
}
