//! Findings and report formatting (human `file:line` lines + JSONL).

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule id, e.g. `panic-in-lib`.
    pub rule: &'static str,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

impl Finding {
    pub fn new(rule: &'static str, path: &str, line: u32, message: impl Into<String>) -> Self {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message: message.into(),
        }
    }

    /// Human-readable one-liner: `path:line: [rule] message`.
    pub fn render(&self) -> String {
        format!("{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }

    /// One JSON object (a JSONL record) — hand-rolled, std-only.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":{},\"path\":{},\"line\":{},\"message\":{}}}",
            json_str(self.rule),
            json_str(&self.path),
            self.line,
            json_str(&self.message)
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by a justified `allow(...)` comment.
    pub suppressed: usize,
    pub files_scanned: usize,
    /// Suppression audit: per-rule counts of silenced findings, sorted by
    /// rule id. Deterministic, so it is safe to persist in `lint.jsonl`.
    pub suppressed_by_rule: Vec<(String, usize)>,
    /// Wall-clock per rule, in microseconds, in execution order. Timing is
    /// inherently nondeterministic, so it is printed to stdout only — it
    /// must never reach `lint.jsonl`, which CI diffs byte-for-byte.
    pub timings: Vec<(String, u128)>,
}

impl Report {
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    }

    pub fn summary(&self) -> String {
        format!(
            "{} finding(s), {} suppressed, {} file(s) scanned",
            self.findings.len(),
            self.suppressed,
            self.files_scanned
        )
    }

    /// One-line JSON record summarising the suppression audit, suitable for
    /// appending to `lint.jsonl`. Fully deterministic.
    pub fn audit_json(&self) -> String {
        let by_rule: Vec<String> = self
            .suppressed_by_rule
            .iter()
            .map(|(rule, n)| format!("{}:{n}", json_str(rule)))
            .collect();
        format!(
            "{{\"record\":\"suppression-audit\",\"suppressed\":{},\"by_rule\":{{{}}}}}",
            self.suppressed,
            by_rule.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        let f = Finding::new("r", "a/b.rs", 3, "say \"hi\"\n\\tab\u{1}");
        let j = f.to_json();
        assert!(j.contains("\\\"hi\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("\\\\tab"));
        assert!(j.contains("\\u0001"));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
