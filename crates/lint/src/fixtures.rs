//! Fixture-corpus harness: the linter's self-test.
//!
//! The corpus under `crates/lint/tests/corpus/` holds known-bad (and
//! known-suppressed) snippets as `.rsfix` files — a non-`.rs` extension so
//! the workspace walk never lints them as product code. Each file starts
//! with directives:
//!
//! ```text
//! //@ path: crates/kg/src/io.rs        — virtual path used for scoping
//! //@ expect: panic-in-lib @ 7          — a finding this file must produce
//! //@ suppressed: 2                     — exact count of suppressed findings
//! ```
//!
//! [`run_corpus`] lints every fixture against its declared expectations and
//! reports mismatches in both directions: a finding that stopped firing
//! means a rule silently went blind (the failure mode that killed the old
//! grep gates); an undeclared finding means a rule grew a false positive.
//! CI runs this via `kglink-lint --self-test` as a meta-gate: an empty or
//! finding-free corpus is itself a failure.

use crate::engine::lint_inputs;
use crate::engine::Input;
use std::fs;
use std::path::{Path, PathBuf};

/// One `//@ expect: <rule> @ <line>` directive.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Expectation {
    pub rule: String,
    pub line: u32,
}

/// A parsed `.rsfix` corpus file.
#[derive(Debug)]
pub struct Fixture {
    /// The on-disk file (for error messages).
    pub real_path: PathBuf,
    /// The path the linter pretends the snippet lives at.
    pub virtual_path: String,
    pub text: String,
    pub expect: Vec<Expectation>,
    /// Exact number of findings an `allow(...)` must silence in this file.
    pub suppressed: usize,
}

/// Parse directives out of a fixture's text. Directives are ordinary `//@`
/// comments, so they are invisible to the rules themselves; expected line
/// numbers refer to real lines of the file, directives included.
pub fn parse_fixture(real_path: &Path, text: String) -> Result<Fixture, String> {
    let mut virtual_path = None;
    let mut expect = Vec::new();
    let mut suppressed = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let Some(rest) = line.trim().strip_prefix("//@") else {
            continue;
        };
        let rest = rest.trim();
        if let Some(p) = rest.strip_prefix("path:") {
            virtual_path = Some(p.trim().to_string());
        } else if let Some(e) = rest.strip_prefix("expect:") {
            let Some((rule, at)) = e.split_once('@') else {
                return Err(format!(
                    "{}:{}: malformed expect directive (want `//@ expect: <rule> @ <line>`)",
                    real_path.display(),
                    idx + 1
                ));
            };
            let Ok(line_no) = at.trim().parse::<u32>() else {
                return Err(format!(
                    "{}:{}: expect line number is not an integer",
                    real_path.display(),
                    idx + 1
                ));
            };
            expect.push(Expectation {
                rule: rule.trim().to_string(),
                line: line_no,
            });
        } else if let Some(n) = rest.strip_prefix("suppressed:") {
            suppressed = n.trim().parse::<usize>().map_err(|_| {
                format!(
                    "{}:{}: suppressed count is not an integer",
                    real_path.display(),
                    idx + 1
                )
            })?;
        } else {
            return Err(format!(
                "{}:{}: unknown directive `//@ {rest}`",
                real_path.display(),
                idx + 1
            ));
        }
    }
    let Some(virtual_path) = virtual_path else {
        return Err(format!(
            "{}: missing `//@ path:` directive",
            real_path.display()
        ));
    };
    Ok(Fixture {
        real_path: real_path.to_path_buf(),
        virtual_path,
        text,
        expect,
        suppressed,
    })
}

/// All `.rsfix` files directly under `dir`, sorted for determinism.
pub fn corpus_files(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rsfix"))
        .collect();
    out.sort();
    out
}

/// Outcome of a corpus run. `ok()` is the CI meta-gate: every expectation
/// matched, nothing unexpected fired, and the corpus is non-trivial.
#[derive(Debug, Default)]
pub struct CorpusOutcome {
    pub files: usize,
    /// Total findings the corpus is declared to produce.
    pub expected_findings: usize,
    /// Total suppressions the corpus is declared to exercise.
    pub expected_suppressed: usize,
    /// Human-readable mismatch descriptions; empty on success.
    pub mismatches: Vec<String>,
}

impl CorpusOutcome {
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
            && self.files > 0
            && self.expected_findings > 0
            && self.expected_suppressed > 0
    }

    pub fn summary(&self) -> String {
        format!(
            "{} fixture(s): {} expected finding(s), {} expected suppression(s), {} mismatch(es)",
            self.files,
            self.expected_findings,
            self.expected_suppressed,
            self.mismatches.len()
        )
    }
}

/// Lint every fixture in `dir` (each file in isolation, under its virtual
/// path) and compare against its declared expectations.
pub fn run_corpus(dir: &Path) -> CorpusOutcome {
    let mut outcome = CorpusOutcome::default();
    let files = corpus_files(dir);
    if files.is_empty() {
        outcome
            .mismatches
            .push(format!("no .rsfix fixtures found under {}", dir.display()));
        return outcome;
    }
    for path in files {
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                outcome
                    .mismatches
                    .push(format!("{}: unreadable: {e}", path.display()));
                continue;
            }
        };
        let fixture = match parse_fixture(&path, text) {
            Ok(f) => f,
            Err(e) => {
                outcome.mismatches.push(e);
                continue;
            }
        };
        outcome.files += 1;
        outcome.expected_findings += fixture.expect.len();
        outcome.expected_suppressed += fixture.suppressed;
        check_fixture(&fixture, &mut outcome.mismatches);
    }
    outcome
}

fn check_fixture(fixture: &Fixture, mismatches: &mut Vec<String>) {
    let report = lint_inputs(
        vec![Input {
            path: fixture.virtual_path.clone(),
            text: fixture.text.clone(),
        }],
        None,
    );
    let mut got: Vec<Expectation> = report
        .findings
        .iter()
        .map(|f| Expectation {
            rule: f.rule.to_string(),
            line: f.line,
        })
        .collect();
    let mut want = fixture.expect.clone();
    got.sort();
    want.sort();
    let name = fixture.real_path.display();
    for e in &want {
        if !got.contains(e) {
            mismatches.push(format!(
                "{name}: expected `{}` at line {} did not fire — the rule went blind",
                e.rule, e.line
            ));
        }
    }
    for e in &got {
        if !want.contains(e) {
            mismatches.push(format!(
                "{name}: undeclared finding `{}` at line {} — false positive or stale corpus",
                e.rule, e.line
            ));
        }
    }
    if report.suppressed != fixture.suppressed {
        mismatches.push(format!(
            "{name}: {} finding(s) suppressed, fixture declares {}",
            report.suppressed, fixture.suppressed
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_directives() {
        let text = "//@ path: crates/x/src/a.rs\n//@ expect: panic-in-lib @ 4\n//@ suppressed: 1\nfn f() {}\n";
        let f = parse_fixture(Path::new("a.rsfix"), text.into()).expect("parses");
        assert_eq!(f.virtual_path, "crates/x/src/a.rs");
        assert_eq!(
            f.expect,
            vec![Expectation {
                rule: "panic-in-lib".into(),
                line: 4
            }]
        );
        assert_eq!(f.suppressed, 1);
    }

    #[test]
    fn rejects_missing_path_and_bad_directives() {
        assert!(parse_fixture(Path::new("a.rsfix"), "fn f() {}\n".into()).is_err());
        assert!(parse_fixture(Path::new("a.rsfix"), "//@ path: x\n//@ expect: r\n".into()).is_err());
        assert!(parse_fixture(Path::new("a.rsfix"), "//@ path: x\n//@ bogus: y\n".into()).is_err());
    }
}
