//! Fixture-corpus harness: the linter's self-test.
//!
//! The corpus under `crates/lint/tests/corpus/` holds known-bad (and
//! known-suppressed) snippets as `.rsfix` files — a non-`.rs` extension so
//! the workspace walk never lints them as product code. Directives are
//! ordinary `//@` comments:
//!
//! ```text
//! //@ path: crates/kg/src/io.rs        — virtual path used for scoping
//! //@ expect: panic-in-lib @ 7          — a finding this file must produce
//! //@ suppressed: 2                     — exact count of suppressed findings
//! ```
//!
//! A fixture may bundle **several virtual files** — the shape the
//! interprocedural rules need, since their findings only exist once a call
//! graph spans files. Each `//@ file: <virtual-path>` directive starts a new
//! section running to the next `//@ file:` or end of fixture; the directive
//! line itself is line 1 of that section. `//@ expect:` lines bind to the
//! section that contains them, with section-relative line numbers, and
//! `//@ suppressed:` stays a bundle-wide total. Single-file fixtures keep
//! the original `//@ path:` form unchanged.
//!
//! [`run_corpus`] lints every fixture (all of a bundle's sections in one
//! engine run, so calls resolve across them) against its declared
//! expectations and reports mismatches in both directions: a finding that
//! stopped firing means a rule silently went blind (the failure mode that
//! killed the old grep gates); an undeclared finding means a rule grew a
//! false positive. CI runs this via `kglink-lint --self-test` as a
//! meta-gate: an empty or finding-free corpus is itself a failure.

use crate::engine::lint_inputs;
use crate::engine::Input;
use std::fs;
use std::path::{Path, PathBuf};

/// One `//@ expect: <rule> @ <line>` directive, bound to the virtual file
/// whose section contains it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Expectation {
    pub rule: String,
    /// Virtual path of the section the directive sits in.
    pub path: String,
    /// Line number relative to the section (absolute for `//@ path:` files).
    pub line: u32,
}

/// A parsed `.rsfix` corpus file: one or more virtual files plus the
/// expectations they must (and must not) produce.
#[derive(Debug)]
pub struct Fixture {
    /// The on-disk file (for error messages).
    pub real_path: PathBuf,
    /// `(virtual path, text)` sections, in declaration order.
    pub files: Vec<(String, String)>,
    pub expect: Vec<Expectation>,
    /// Exact number of findings `allow(...)`s must silence across the bundle.
    pub suppressed: usize,
}

/// Parse directives out of a fixture's text. Directives are ordinary `//@`
/// comments, so they are invisible to the rules themselves.
pub fn parse_fixture(real_path: &Path, text: String) -> Result<Fixture, String> {
    let lines: Vec<&str> = text.lines().collect();
    let mut primary: Option<String> = None;
    // (starting line index, virtual path) of each `//@ file:` section.
    let mut bounds: Vec<(usize, String)> = Vec::new();
    // (line index of the directive, rule, declared line).
    let mut raw_expect: Vec<(usize, String, u32)> = Vec::new();
    let mut suppressed = 0usize;
    for (idx, line) in lines.iter().enumerate() {
        let Some(rest) = line.trim().strip_prefix("//@") else {
            continue;
        };
        let rest = rest.trim();
        if let Some(p) = rest.strip_prefix("path:") {
            primary = Some(p.trim().to_string());
        } else if let Some(p) = rest.strip_prefix("file:") {
            bounds.push((idx, p.trim().to_string()));
        } else if let Some(e) = rest.strip_prefix("expect:") {
            let Some((rule, at)) = e.split_once('@') else {
                return Err(format!(
                    "{}:{}: malformed expect directive (want `//@ expect: <rule> @ <line>`)",
                    real_path.display(),
                    idx + 1
                ));
            };
            let Ok(line_no) = at.trim().parse::<u32>() else {
                return Err(format!(
                    "{}:{}: expect line number is not an integer",
                    real_path.display(),
                    idx + 1
                ));
            };
            raw_expect.push((idx, rule.trim().to_string(), line_no));
        } else if let Some(n) = rest.strip_prefix("suppressed:") {
            suppressed = n.trim().parse::<usize>().map_err(|_| {
                format!(
                    "{}:{}: suppressed count is not an integer",
                    real_path.display(),
                    idx + 1
                )
            })?;
        } else {
            return Err(format!(
                "{}:{}: unknown directive `//@ {rest}`",
                real_path.display(),
                idx + 1
            ));
        }
    }

    // Materialize sections as (path, start, end) half-open line ranges.
    let first_bound = bounds.first().map_or(lines.len(), |(i, _)| *i);
    let mut sections: Vec<(String, usize, usize)> = Vec::new();
    match primary {
        Some(p) => sections.push((p, 0, first_bound)),
        None if bounds.is_empty() => {
            return Err(format!(
                "{}: missing `//@ path:` or `//@ file:` directive",
                real_path.display()
            ));
        }
        None => {}
    }
    for (bi, (start, p)) in bounds.iter().enumerate() {
        let end = bounds.get(bi + 1).map_or(lines.len(), |(i, _)| *i);
        sections.push((p.clone(), *start, end));
    }

    let mut expect = Vec::new();
    for (idx, rule, line_no) in raw_expect {
        let Some((path, _, _)) = sections.iter().find(|(_, s, e)| *s <= idx && idx < *e) else {
            return Err(format!(
                "{}:{}: expect directive outside any `//@ path:`/`//@ file:` section",
                real_path.display(),
                idx + 1
            ));
        };
        expect.push(Expectation {
            rule,
            path: path.clone(),
            line: line_no,
        });
    }

    let files = sections
        .into_iter()
        .map(|(p, s, e)| {
            let mut t = lines[s..e].join("\n");
            t.push('\n');
            (p, t)
        })
        .collect();
    Ok(Fixture {
        real_path: real_path.to_path_buf(),
        files,
        expect,
        suppressed,
    })
}

/// All `.rsfix` files directly under `dir`, sorted for determinism.
pub fn corpus_files(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rsfix"))
        .collect();
    out.sort();
    out
}

/// Outcome of a corpus run. `ok()` is the CI meta-gate: every expectation
/// matched, nothing unexpected fired, and the corpus is non-trivial.
#[derive(Debug, Default)]
pub struct CorpusOutcome {
    pub files: usize,
    /// Total findings the corpus is declared to produce.
    pub expected_findings: usize,
    /// Total suppressions the corpus is declared to exercise.
    pub expected_suppressed: usize,
    /// Human-readable mismatch descriptions; empty on success.
    pub mismatches: Vec<String>,
}

impl CorpusOutcome {
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
            && self.files > 0
            && self.expected_findings > 0
            && self.expected_suppressed > 0
    }

    pub fn summary(&self) -> String {
        format!(
            "{} fixture(s): {} expected finding(s), {} expected suppression(s), {} mismatch(es)",
            self.files,
            self.expected_findings,
            self.expected_suppressed,
            self.mismatches.len()
        )
    }
}

/// Lint every fixture in `dir` (each fixture in isolation, its sections
/// together under their virtual paths) and compare against its declared
/// expectations.
pub fn run_corpus(dir: &Path) -> CorpusOutcome {
    let mut outcome = CorpusOutcome::default();
    let files = corpus_files(dir);
    if files.is_empty() {
        outcome
            .mismatches
            .push(format!("no .rsfix fixtures found under {}", dir.display()));
        return outcome;
    }
    for path in files {
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                outcome
                    .mismatches
                    .push(format!("{}: unreadable: {e}", path.display()));
                continue;
            }
        };
        let fixture = match parse_fixture(&path, text) {
            Ok(f) => f,
            Err(e) => {
                outcome.mismatches.push(e);
                continue;
            }
        };
        outcome.files += 1;
        outcome.expected_findings += fixture.expect.len();
        outcome.expected_suppressed += fixture.suppressed;
        check_fixture(&fixture, &mut outcome.mismatches);
    }
    outcome
}

fn check_fixture(fixture: &Fixture, mismatches: &mut Vec<String>) {
    let report = lint_inputs(
        fixture
            .files
            .iter()
            .map(|(path, text)| Input {
                path: path.clone(),
                text: text.clone(),
            })
            .collect(),
        None,
    );
    let mut got: Vec<Expectation> = report
        .findings
        .iter()
        .map(|f| Expectation {
            rule: f.rule.to_string(),
            path: f.path.clone(),
            line: f.line,
        })
        .collect();
    let mut want = fixture.expect.clone();
    got.sort();
    want.sort();
    let name = fixture.real_path.display();
    for e in &want {
        if !got.contains(e) {
            mismatches.push(format!(
                "{name}: expected `{}` at {}:{} did not fire — the rule went blind",
                e.rule, e.path, e.line
            ));
        }
    }
    for e in &got {
        if !want.contains(e) {
            mismatches.push(format!(
                "{name}: undeclared finding `{}` at {}:{} — false positive or stale corpus",
                e.rule, e.path, e.line
            ));
        }
    }
    if report.suppressed != fixture.suppressed {
        mismatches.push(format!(
            "{name}: {} finding(s) suppressed, fixture declares {}",
            report.suppressed, fixture.suppressed
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_directives() {
        let text = "//@ path: crates/x/src/a.rs\n//@ expect: panic-in-lib @ 4\n//@ suppressed: 1\nfn f() {}\n";
        let f = parse_fixture(Path::new("a.rsfix"), text.into()).expect("parses");
        assert_eq!(f.files.len(), 1);
        assert_eq!(f.files[0].0, "crates/x/src/a.rs");
        assert_eq!(
            f.expect,
            vec![Expectation {
                rule: "panic-in-lib".into(),
                path: "crates/x/src/a.rs".into(),
                line: 4
            }]
        );
        assert_eq!(f.suppressed, 1);
    }

    #[test]
    fn parses_multi_file_bundles_with_section_relative_expectations() {
        let text = "\
//@ file: crates/a/src/lib.rs
//@ expect: panic-in-lib @ 3
fn f() {
    g();
}
//@ file: crates/b/src/lib.rs
fn g() {}
";
        let f = parse_fixture(Path::new("m.rsfix"), text.into()).expect("parses");
        assert_eq!(
            f.files.iter().map(|(p, _)| p.as_str()).collect::<Vec<_>>(),
            vec!["crates/a/src/lib.rs", "crates/b/src/lib.rs"]
        );
        // Section text starts at its `//@ file:` line, so declared line
        // numbers count from the directive.
        assert!(f.files[0].1.starts_with("//@ file:"));
        assert_eq!(f.files[0].1.lines().count(), 5);
        assert_eq!(f.files[1].1.lines().count(), 2);
        assert_eq!(
            f.expect,
            vec![Expectation {
                rule: "panic-in-lib".into(),
                path: "crates/a/src/lib.rs".into(),
                line: 3
            }]
        );
    }

    #[test]
    fn rejects_missing_path_and_bad_directives() {
        assert!(parse_fixture(Path::new("a.rsfix"), "fn f() {}\n".into()).is_err());
        assert!(parse_fixture(Path::new("a.rsfix"), "//@ path: x\n//@ expect: r\n".into()).is_err());
        assert!(parse_fixture(Path::new("a.rsfix"), "//@ path: x\n//@ bogus: y\n".into()).is_err());
        // An expect with no enclosing section is a directive error, not a
        // silent mis-binding.
        assert!(parse_fixture(
            Path::new("a.rsfix"),
            "//@ expect: r @ 1\n//@ file: x\nfn f() {}\n".into()
        )
        .is_err());
    }
}
