//! The phase-1 product: every file's item model, the resolved call graph,
//! and per-function summaries (local + fixpoint-propagated), assembled once
//! per lint run and handed to every interprocedural rule.

use crate::callgraph::{extract_calls, ResolvedCall, Resolver};
use crate::items::{brace_depths, parse_items, FnItem};
use crate::source::SourceFile;
use crate::summary::{local_summary, propagate, wire_guard_returns, LocalSummary, Propagated};
use std::collections::BTreeMap;

/// Workspace-wide analysis state. All `Vec`s indexed by *fn index* are
/// parallel to [`Workspace::fns`].
pub struct Workspace {
    pub files: Vec<SourceFile>,
    /// `(file index, item)` for every fn in the workspace, in file order.
    pub fns: Vec<(usize, FnItem)>,
    /// Per-file `use` aliases (local name → real name).
    pub aliases: Vec<BTreeMap<String, String>>,
    /// Per-fn code-token ranges owned by that fn: its body minus any nested
    /// fns, so every token belongs to exactly one function.
    pub owned: Vec<Vec<(usize, usize)>>,
    /// Per-fn resolved call sites.
    pub calls: Vec<Vec<ResolvedCall>>,
    /// Per-fn local summaries.
    pub locals: Vec<LocalSummary>,
    /// Per-fn propagated (transitive) summaries.
    pub props: Vec<Propagated>,
    /// Per-file brace-depth arrays (see [`brace_depths`]).
    pub depths: Vec<Vec<u32>>,
}

impl Workspace {
    pub fn build(files: Vec<SourceFile>) -> Workspace {
        let mut fns: Vec<(usize, FnItem)> = Vec::new();
        let mut aliases: Vec<BTreeMap<String, String>> = Vec::new();
        for (file_ix, f) in files.iter().enumerate() {
            let items = parse_items(f);
            aliases.push(items.aliases);
            fns.extend(items.fns.into_iter().map(|it| (file_ix, it)));
        }
        let depths: Vec<Vec<u32>> = files.iter().map(brace_depths).collect();
        let owned: Vec<Vec<(usize, usize)>> = (0..fns.len())
            .map(|i| owned_ranges(&fns, i))
            .collect();
        let resolver = Resolver::new(&fns, &files);
        let calls: Vec<Vec<ResolvedCall>> = fns
            .iter()
            .enumerate()
            .map(|(i, (file_ix, item))| {
                let f = &files[*file_ix];
                extract_calls(f, &owned[i])
                    .into_iter()
                    .map(|site| {
                        let callees = resolver.resolve(
                            &site,
                            *file_ix,
                            item.self_ty.as_deref(),
                            &fns,
                            &aliases[*file_ix],
                        );
                        ResolvedCall { site, callees }
                    })
                    .collect()
            })
            .collect();
        let mut locals: Vec<LocalSummary> = fns
            .iter()
            .enumerate()
            .map(|(i, (file_ix, item))| {
                local_summary(&files[*file_ix], *file_ix, item, &owned[i], &depths[*file_ix])
            })
            .collect();
        wire_guard_returns(&files, &fns, &calls, &mut locals);
        let props = propagate(fns.len(), &calls, &locals);
        Workspace {
            files,
            fns,
            aliases,
            owned,
            calls,
            locals,
            props,
            depths,
        }
    }

    /// Build from `(path, text)` pairs — the rule-test entry point.
    pub fn from_sources<P: Into<String>, T: Into<String>>(sources: Vec<(P, T)>) -> Workspace {
        Workspace::build(
            sources
                .into_iter()
                .map(|(p, t)| SourceFile::new(p.into(), t.into()))
                .collect(),
        )
    }

    /// The file owning fn `i`.
    pub fn file_of(&self, i: usize) -> &SourceFile {
        &self.files[self.fns[i].0]
    }

    /// Index of the fn in `file_ix` whose owned ranges contain code token
    /// `ix`, if any.
    pub fn fn_at(&self, file_ix: usize, ix: usize) -> Option<usize> {
        (0..self.fns.len()).find(|&i| {
            self.fns[i].0 == file_ix && self.owned[i].iter().any(|&(s, e)| s <= ix && ix < e)
        })
    }
}

/// The body of fn `i` minus the extents of fns nested inside it.
fn owned_ranges(fns: &[(usize, FnItem)], i: usize) -> Vec<(usize, usize)> {
    let (file_ix, item) = &fns[i];
    let Some((s, e)) = item.body else {
        return Vec::new();
    };
    // Extent of a nested fn in code tokens: `fn` keyword through its close
    // brace (or just the keyword pair for bodiless signatures).
    let mut holes: Vec<(usize, usize)> = fns
        .iter()
        .filter(|(fi, it)| fi == file_ix && it.decl_ix > s && it.decl_ix < e)
        .map(|(_, it)| {
            let end = it.body.map(|(_, close)| close + 1).unwrap_or(it.decl_ix + 2);
            (it.decl_ix, end.min(e))
        })
        .collect();
    holes.sort_unstable();
    let mut out = Vec::new();
    let mut pos = s;
    for (hs, he) in holes {
        if hs > pos {
            out.push((pos, hs));
        }
        pos = pos.max(he);
    }
    if pos < e {
        out.push((pos, e));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_fn_tokens_belong_to_the_nested_fn_only() {
        let ws = Workspace::from_sources(vec![(
            "crates/x/src/a.rs",
            "fn outer() {\n    before();\n    fn inner() { x.unwrap(); }\n    after();\n}\n",
        )]);
        assert_eq!(ws.fns.len(), 2);
        // outer sees its own calls but not inner's unwrap.
        assert!(ws.locals[0].panic_sites.is_empty());
        assert_eq!(ws.locals[1].panic_sites.len(), 1);
        // And outer's owned ranges are split around inner.
        assert_eq!(ws.owned[0].len(), 2);
    }

    #[test]
    fn cross_file_resolution_feeds_propagation() {
        let ws = Workspace::from_sources(vec![
            (
                "crates/serve/src/a.rs",
                "use crate::b::helper;\npub fn entry() { helper(); }\n",
            ),
            (
                "crates/serve/src/b.rs",
                "pub fn helper() { std::fs::read(\"x\").unwrap(); }\n",
            ),
        ]);
        let entry = ws
            .fns
            .iter()
            .position(|(_, it)| it.name == "entry")
            .expect("entry exists");
        let w = ws.props[entry].may_panic.as_ref().expect("propagated panic");
        assert_eq!(w.via, vec!["helper".to_string()]);
        assert!(ws.props[entry].may_block.is_some(), "fs::read blocks");
    }
}
