//! Phase-1 per-function summaries and their fixpoint propagation.
//!
//! For every workspace function the engine computes a [`LocalSummary`] —
//! the facts visible in its own body:
//!
//! - **Lock acquisitions with hold regions.** A let-bound guard is held to
//!   the end of its enclosing block (or an explicit `drop(name)`); a guard
//!   bound by `if let` / `while let` / `match` is held through that
//!   construct's block; an un-bound guard (expression statement) lives for
//!   its statement only. Calls to functions *returning* a guard type
//!   (`MutexGuard`, `RwLock*Guard`) count as acquisitions of the callee's
//!   lock — that is how `let state = self.lock_state();` is seen.
//! - **Panic sites** (`unwrap`/`expect`/panic-family macros) and
//!   **allocation sites** (`Vec::new()`, `vec![..]`, `.to_vec()`,
//!   `.clone()`), excluding test code and sites excused by a justified
//!   allow-comment (consulting the allow marks it used, so a vouched-for
//!   site neither propagates nor trips `allow-unused`).
//! - **Blocking sites**: `Condvar` waits (with the guard binding they
//!   consume — waiting *releases* that one lock), channel `recv`s, thread
//!   joins/sleeps, file I/O, and `KgBackend` retrieval calls.
//! - **`Deadline` discipline**: which parameters are deadlines and whether
//!   the body ever mentions them.
//!
//! [`propagate`] then folds callee summaries into callers over the resolved
//! call graph until fixpoint: `may_panic`, `may_alloc`, `may_block`,
//! `reaches_backend`, and the transitive lock-acquisition set, each carried
//! with a [`Witness`] (the originating site plus the call chain to it) so
//! findings can say *why*, not just *that*.

use crate::callgraph::ResolvedCall;
use crate::items::{brace_depths, matching_close, FnItem};
use crate::lexer::TokKind;
use crate::rules::stmt_range;
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// Cap on per-fn transitive lock sets: bounds fixpoint work, and a fn that
/// transitively touches more locks than this has bigger problems than ABBA.
const ACQUIRE_CAP: usize = 16;

/// Cap on recorded call-chain length in witnesses (display only).
const VIA_CAP: usize = 4;

/// The origin of a propagated fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// Index into the workspace file list.
    pub file: usize,
    pub line: u32,
    /// Short human description of the site (`\`.unwrap()\``, `Condvar wait`).
    pub what: String,
}

/// A fact plus the call chain from the summarized fn down to its origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    pub site: Site,
    /// Callee names walked to reach the site; empty for the fn's own sites.
    pub via: Vec<String>,
}

impl Witness {
    /// `via f → g` suffix for finding messages; empty for direct sites.
    pub fn via_text(&self) -> String {
        if self.via.is_empty() {
            String::new()
        } else {
            format!(" via `{}`", self.via.join(" → "))
        }
    }
}

/// One lock acquisition and the code-token range its guard is held for.
#[derive(Debug, Clone)]
pub struct LockAcquire {
    /// Qualified lock name: `self.` receivers are prefixed with the `impl`
    /// type (`BoundedQueue.state`), so helper methods of the same type
    /// agree on identity across functions.
    pub name: String,
    /// Let-binding the guard lives in, if any (`None` = statement temp).
    pub binding: Option<String>,
    pub ix: usize,
    pub line: u32,
    /// Code-token range `[ix, end)` during which the guard is live.
    pub hold: (usize, usize),
}

/// One blocking operation.
#[derive(Debug, Clone)]
pub struct BlockingSite {
    pub ix: usize,
    pub line: u32,
    pub what: String,
    /// For `Condvar::wait(guard)`: the guard binding the wait consumes —
    /// that lock is *released* while parked and must not count as held.
    pub consumes: Option<String>,
}

/// Facts visible in one function's own body.
#[derive(Debug, Clone, Default)]
pub struct LocalSummary {
    pub panic_sites: Vec<Site>,
    pub alloc_sites: Vec<Site>,
    pub blocking: Vec<BlockingSite>,
    pub backend_calls: Vec<Site>,
    pub locks: Vec<LockAcquire>,
    /// `Some(lock)` when this fn returns a live guard for `lock`.
    pub returns_guard: Option<String>,
    /// Deadline-typed parameters and whether the body mentions them.
    pub deadline_params: Vec<(String, bool)>,
}

/// Facts reachable from a function through any chain of resolved calls
/// (seeded with the function's own sites).
#[derive(Debug, Clone, Default)]
pub struct Propagated {
    pub may_panic: Option<Witness>,
    pub may_alloc: Option<Witness>,
    pub may_block: Option<Witness>,
    pub reaches_backend: Option<Witness>,
    /// Lock name → earliest witness of its (transitive) acquisition.
    pub acquires: BTreeMap<String, Witness>,
}

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];
const GUARD_TYPES: &[&str] = &["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"];
const CONDVAR_WAITS: &[&str] = &["wait", "wait_timeout", "wait_while", "wait_timeout_while"];
const RECV_METHODS: &[&str] = &["recv", "recv_timeout", "recv_deadline"];
/// `KgBackend` surface: retrieval I/O, blocking by nature.
pub const BACKEND_METHODS: &[&str] = &["search_entities", "link_mention"];
const FS_FNS: &[&str] = &[
    "read",
    "read_to_string",
    "read_dir",
    "write",
    "copy",
    "rename",
    "remove_file",
    "remove_dir_all",
    "create_dir_all",
    "metadata",
    "canonicalize",
];
const FILE_FNS: &[&str] = &["open", "create", "create_new"];

/// Prefix a `self.`-rooted receiver with the `impl` type name.
pub fn qualify_lock(recv: &str, self_ty: Option<&str>) -> String {
    match self_ty {
        Some(ty) if recv == "self" => ty.to_string(),
        Some(ty) => recv
            .strip_prefix("self.")
            .map(|rest| format!("{ty}.{rest}"))
            .unwrap_or_else(|| recv.to_string()),
        None => recv.to_string(),
    }
}

/// True when an allow-comment for `rule` targets `line`; consulting one
/// marks it used (it is actively excusing the site from propagation).
fn excused(f: &SourceFile, line: u32, rule: &str) -> bool {
    let mut hit = false;
    for s in &f.suppressions {
        if s.target_line == line && s.rules.iter().any(|r| r == rule) {
            s.used.set(true);
            hit = true;
        }
    }
    hit
}

/// Compute the local summary of one fn. `owned` is its body minus nested
/// fns; `calls` are its resolved call sites (used for guard-returning
/// helpers); `fns`/`locals` give access to callee facts already computed
/// in the first pass (guard returns only — everything else is two-phase).
pub fn local_summary(
    f: &SourceFile,
    file_ix: usize,
    item: &FnItem,
    owned: &[(usize, usize)],
    depths: &[u32],
) -> LocalSummary {
    let mut s = LocalSummary::default();
    for &(start, end) in owned {
        scan_range(f, file_ix, item, start, end, depths, &mut s);
    }
    if GUARD_TYPES.iter().any(|g| item.ret_ty.contains(g)) {
        s.returns_guard = s.locks.first().map(|l| l.name.clone());
    }
    s.deadline_params = item
        .params
        .iter()
        .filter(|p| p.ty.contains("Deadline"))
        .map(|p| {
            let used = owned.iter().any(|&(a, b)| {
                (a..b.min(f.code.len())).any(|i| f.code_text(i) == p.name)
            });
            (p.name.clone(), used)
        })
        .collect();
    s
}

fn scan_range(
    f: &SourceFile,
    file_ix: usize,
    item: &FnItem,
    start: usize,
    end: usize,
    depths: &[u32],
    s: &mut LocalSummary,
) {
    let end = end.min(f.code.len());
    for i in start..end {
        if f.code_kind(i) != Some(TokKind::Ident) {
            continue;
        }
        let t = f.code_text(i);
        let line = f.code_line(i);
        // Panic sites.
        if PANIC_MACROS.contains(&t) && f.code_text(i + 1) == "!" {
            if !excused(f, line, "panic-in-lib") {
                s.panic_sites.push(Site {
                    file: file_ix,
                    line,
                    what: format!("`{t}!`"),
                });
            }
            continue;
        }
        let after_dot = i > 0 && f.code_text(i - 1) == ".";
        let called = f.code_text(i + 1) == "(";
        if after_dot && called && PANIC_METHODS.contains(&t) {
            if !excused(f, line, "panic-in-lib") {
                s.panic_sites.push(Site {
                    file: file_ix,
                    line,
                    what: format!("`.{t}(..)`"),
                });
            }
            continue;
        }
        // Allocation sites (the hot-path idioms).
        let alloc = match t {
            "Vec"
                if f.code_text(i + 1) == ":"
                    && f.code_text(i + 2) == ":"
                    && f.code_text(i + 3) == "new"
                    && f.code_text(i + 4) == "(" =>
            {
                Some("`Vec::new()`")
            }
            "vec" if f.code_text(i + 1) == "!" => Some("`vec![..]`"),
            "to_vec" if after_dot && called => Some("`.to_vec()`"),
            "clone" if after_dot && called && f.code_text(i + 2) == ")" => Some("`.clone()`"),
            _ => None,
        };
        if let Some(what) = alloc {
            if !excused(f, line, "hot-path-alloc") {
                s.alloc_sites.push(Site {
                    file: file_ix,
                    line,
                    what: what.to_string(),
                });
            }
            continue;
        }
        // Direct lock acquisitions: `.lock()` / `.read()` / `.write()`.
        if after_dot
            && called
            && ACQUIRE_METHODS.contains(&t)
            && f.code_text(i + 2) == ")"
        {
            if let Some(recv) = crate::callgraph::receiver_path(f, i - 1) {
                let name = qualify_lock(&recv, item.self_ty.as_deref());
                let (binding, hold) = hold_region(f, i, depths);
                s.locks.push(LockAcquire {
                    name,
                    binding,
                    ix: i,
                    line,
                    hold,
                });
            }
            continue;
        }
        // Blocking operations.
        if after_dot && called {
            if CONDVAR_WAITS.contains(&t) {
                let consumes = (f.code_kind(i + 2) == Some(TokKind::Ident))
                    .then(|| f.code_text(i + 2).to_string());
                s.blocking.push(BlockingSite {
                    ix: i,
                    line,
                    what: format!("`Condvar::{t}`"),
                    consumes,
                });
                continue;
            }
            if RECV_METHODS.contains(&t) {
                s.blocking.push(BlockingSite {
                    ix: i,
                    line,
                    what: format!("channel `.{t}()`"),
                    consumes: None,
                });
                continue;
            }
            if t == "join" && f.code_text(i + 2) == ")" {
                s.blocking.push(BlockingSite {
                    ix: i,
                    line,
                    what: "`.join()`".to_string(),
                    consumes: None,
                });
                continue;
            }
            if BACKEND_METHODS.contains(&t) {
                s.backend_calls.push(Site {
                    file: file_ix,
                    line,
                    what: format!("`KgBackend::{t}`"),
                });
                s.blocking.push(BlockingSite {
                    ix: i,
                    line,
                    what: format!("`KgBackend::{t}` (retrieval I/O)"),
                    consumes: None,
                });
                continue;
            }
        }
        // Path-call blocking: `File::open`, `fs::read`, `thread::sleep`.
        if called && i >= 3 && f.code_text(i - 1) == ":" && f.code_text(i - 2) == ":" {
            let qual = f.code_text(i - 3);
            let what = match qual {
                "File" if FILE_FNS.contains(&t) => Some(format!("`File::{t}`")),
                "fs" if FS_FNS.contains(&t) => Some(format!("`fs::{t}`")),
                "thread" if t == "sleep" => Some("`thread::sleep`".to_string()),
                _ => None,
            };
            if let Some(what) = what {
                s.blocking.push(BlockingSite {
                    ix: i,
                    line,
                    what,
                    consumes: None,
                });
            }
        }
    }
}

/// Guard lifetime for the acquisition whose method name sits at code index
/// `ix`: `(binding, [ix, end))`. See the module docs for the model.
pub fn hold_region(f: &SourceFile, ix: usize, depths: &[u32]) -> (Option<String>, (usize, usize)) {
    let (stmt_start, stmt_end) = stmt_range(f, ix);
    let first = f.code_text(stmt_start);
    // `let [mut] name = ...`
    if first == "let" {
        let mut j = stmt_start + 1;
        while f.code_text(j) == "mut" {
            j += 1;
        }
        if f.code_kind(j) == Some(TokKind::Ident) {
            let binding = f.code_text(j).to_string();
            if binding == "_" {
                return (None, (ix, stmt_end));
            }
            let end = block_close(f, ix, depths);
            let end = drop_site(f, &binding, stmt_end, end).unwrap_or(end);
            return (Some(binding), (ix, end));
        }
        // Destructuring let: hold to end of block, no single binding name.
        return (None, (ix, block_close(f, ix, depths)));
    }
    // `if let` / `while let` / `match` on the acquisition: the guard lives
    // through the construct's block, which opens where the statement scan
    // stopped (`stmt_end` points at its `{`).
    let has_let = (stmt_start..stmt_end).any(|i| f.code_text(i) == "let");
    if ((matches!(first, "if" | "while") && has_let) || first == "match")
        && f.code_text(stmt_end) == "{"
    {
        let close = matching_close(f, depths, stmt_end);
        let binding = (stmt_start..stmt_end)
            .find(|&i| {
                f.code_text(i) == "=" && i > stmt_start && f.code_kind(i - 1) == Some(TokKind::Ident)
            })
            .map(|i| f.code_text(i - 1).to_string());
        return (binding, (ix, close));
    }
    // Statement temp: dropped at the end of the statement.
    (None, (ix, stmt_end))
}

/// First `drop(name)` between `from` and `limit`, as a hold endpoint.
fn drop_site(f: &SourceFile, name: &str, from: usize, limit: usize) -> Option<usize> {
    (from..limit.min(f.code.len())).find(|&i| {
        f.code_text(i) == "drop"
            && f.code_text(i + 1) == "("
            && f.code_text(i + 2) == name
            && f.code_text(i + 3) == ")"
    })
}

/// Code index of the `}` closing the innermost block containing `ix`
/// (`f.code.len()` when at file depth — unbalanced or top-level input).
fn block_close(f: &SourceFile, ix: usize, depths: &[u32]) -> usize {
    let Some(&d) = depths.get(ix) else {
        return f.code.len();
    };
    if d == 0 {
        return f.code.len();
    }
    for (j, dj) in depths.iter().enumerate().skip(ix + 1) {
        if f.code_text(j) == "}" && *dj == d - 1 {
            return j;
        }
    }
    f.code.len()
}

/// Add acquisitions for calls to guard-returning helpers, and propagate
/// `returns_guard` through forwarding helpers. Runs after every fn's first
/// pass, before [`propagate`].
pub fn wire_guard_returns(
    files: &[SourceFile],
    fns: &[(usize, FnItem)],
    calls: &[Vec<ResolvedCall>],
    locals: &mut [LocalSummary],
) {
    // A helper that returns a guard type but acquires nothing itself is
    // forwarding another helper's guard; adopt the callee's lock (2 passes
    // cover forward-of-forward chains).
    for _ in 0..2 {
        for i in 0..fns.len() {
            if locals[i].returns_guard.is_some()
                || !GUARD_TYPES.iter().any(|g| fns[i].1.ret_ty.contains(g))
            {
                continue;
            }
            let adopted = calls[i]
                .iter()
                .flat_map(|c| c.callees.iter())
                .find_map(|&callee| locals[callee].returns_guard.clone());
            locals[i].returns_guard = adopted;
        }
    }
    // `let g = self.lock_state();` — the caller now holds the callee's lock.
    for i in 0..fns.len() {
        let (file_ix, _) = fns[i];
        let Some(f) = files.get(file_ix) else { continue };
        let depths = brace_depths(f);
        let mut extra = Vec::new();
        for c in &calls[i] {
            let Some(lock) = c
                .callees
                .iter()
                .find_map(|&callee| locals[callee].returns_guard.clone())
            else {
                continue;
            };
            let (binding, hold) = hold_region(f, c.site.ix, &depths);
            extra.push(LockAcquire {
                name: lock,
                binding,
                ix: c.site.ix,
                line: c.site.line,
                hold,
            });
        }
        locals[i].locks.extend(extra);
        locals[i].locks.sort_by_key(|l| l.ix);
    }
}

/// Fold callee facts into callers until fixpoint. Every fact keeps its
/// first witness (deterministic: fns and call sites are visited in source
/// order, merges only fill empty slots).
pub fn propagate(fns_len: usize, calls: &[Vec<ResolvedCall>], locals: &[LocalSummary]) -> Vec<Propagated> {
    let mut props: Vec<Propagated> = (0..fns_len)
        .map(|i| {
            let l = &locals[i];
            Propagated {
                may_panic: l.panic_sites.first().map(own_witness),
                may_alloc: l.alloc_sites.first().map(own_witness),
                may_block: l
                    .blocking
                    .first()
                    .map(|b| Witness {
                        site: Site {
                            file: usize::MAX,
                            line: b.line,
                            what: b.what.clone(),
                        },
                        via: Vec::new(),
                    }),
                reaches_backend: l.backend_calls.first().map(own_witness),
                acquires: l
                    .locks
                    .iter()
                    .take(ACQUIRE_CAP)
                    .map(|lk| {
                        (
                            lk.name.clone(),
                            Witness {
                                site: Site {
                                    file: usize::MAX,
                                    line: lk.line,
                                    what: format!("acquires `{}`", lk.name),
                                },
                                via: Vec::new(),
                            },
                        )
                    })
                    .collect(),
            }
        })
        .collect();
    // Blocking/lock witnesses above use the owning fn's file implicitly;
    // patch in the real file index from the call-graph walk below is not
    // needed — rules report at the *call site*, the witness only carries
    // line + description. Backend/panic/alloc witnesses need the file for
    // scope checks, which `own_witness` preserves.
    loop {
        let mut changed = false;
        for caller in 0..fns_len {
            for rc in &calls[caller] {
                let (site_line, name_of) = (rc.site.line, rc.site.name.clone());
                for &callee in &rc.callees {
                    if callee == caller {
                        continue;
                    }
                    let callee_prop = props[callee].clone();
                    let p = &mut props[caller];
                    changed |= merge(&mut p.may_panic, &callee_prop.may_panic, &name_of);
                    changed |= merge(&mut p.may_alloc, &callee_prop.may_alloc, &name_of);
                    changed |= merge(&mut p.may_block, &callee_prop.may_block, &name_of);
                    changed |= merge(
                        &mut p.reaches_backend,
                        &callee_prop.reaches_backend,
                        &name_of,
                    );
                    for (lock, w) in &callee_prop.acquires {
                        if p.acquires.len() >= ACQUIRE_CAP {
                            break;
                        }
                        if !p.acquires.contains_key(lock) {
                            p.acquires.insert(lock.clone(), extend(w, &name_of, site_line));
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    props
}

fn own_witness(s: &Site) -> Witness {
    Witness {
        site: s.clone(),
        via: Vec::new(),
    }
}

fn merge(slot: &mut Option<Witness>, from: &Option<Witness>, callee_name: &str) -> bool {
    if slot.is_some() {
        return false;
    }
    let Some(w) = from else { return false };
    *slot = Some(extend(w, callee_name, w.site.line));
    true
}

fn extend(w: &Witness, callee_name: &str, _line: u32) -> Witness {
    let mut via = Vec::with_capacity(w.via.len() + 1);
    via.push(callee_name.to_string());
    via.extend(w.via.iter().take(VIA_CAP.saturating_sub(1)).cloned());
    Witness {
        site: w.site.clone(),
        via,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;

    fn summarize(src: &str) -> (SourceFile, Vec<FnItem>, Vec<LocalSummary>) {
        let f = SourceFile::new("crates/serve/src/a.rs".into(), src.into());
        let items = parse_items(&f);
        let depths = brace_depths(&f);
        let sums = items
            .fns
            .iter()
            .map(|it| {
                let owned = it.body.map(|b| vec![b]).unwrap_or_default();
                local_summary(&f, 0, it, &owned, &depths)
            })
            .collect();
        (f, items.fns, sums)
    }

    #[test]
    fn let_bound_guard_holds_to_block_end_or_drop() {
        let src = "\
impl Q {
    fn a(&self) {
        let g = self.state.lock();
        self.use_it();
        drop(g);
        self.after();
    }
    fn b(&self) {
        self.state.lock();
        self.after();
    }
}
";
        let (f, _, sums) = summarize(src);
        let a = &sums[0].locks[0];
        assert_eq!(a.name, "Q.state");
        assert_eq!(a.binding.as_deref(), Some("g"));
        // Hold ends exactly at the drop(g) token.
        assert_eq!(f.code_text(a.hold.1), "drop");
        let b = &sums[1].locks[0];
        assert!(b.binding.is_none());
        // Statement temp: hold ends just past the `;`.
        assert!(b.hold.1 - b.hold.0 < 8);
    }

    #[test]
    fn condvar_wait_records_consumed_binding() {
        let src = "\
fn pop(&self) {
    let mut state = self.lock_state();
    while state.is_empty() {
        state = self.not_empty.wait(state);
    }
}
";
        let (_, _, sums) = summarize(src);
        assert_eq!(sums[0].blocking.len(), 1);
        assert_eq!(sums[0].blocking[0].consumes.as_deref(), Some("state"));
    }

    #[test]
    fn excused_sites_do_not_seed_summaries() {
        let src = "\
fn f(&self) {
    // kglink-lint: allow(panic-in-lib) — invariant argued at construction
    self.x.unwrap();
    self.y.unwrap();
}
";
        let (f, _, sums) = summarize(src);
        assert_eq!(sums[0].panic_sites.len(), 1);
        assert_eq!(sums[0].panic_sites[0].line, 4);
        assert!(f.suppressions[0].used.get());
    }

    #[test]
    fn deadline_params_track_usage() {
        let src = "\
fn fwd(&self, q: &str, deadline: Deadline) { self.inner.search_entities(q, 5, deadline); }
fn dropped(&self, q: &str, deadline: Deadline) { self.inner.search_entities(q, 5, Deadline::UNBOUNDED); }
";
        let (_, _, sums) = summarize(src);
        assert_eq!(sums[0].deadline_params, vec![("deadline".to_string(), true)]);
        assert_eq!(sums[1].deadline_params, vec![("deadline".to_string(), false)]);
        assert_eq!(sums[0].backend_calls.len(), 1);
    }

    #[test]
    fn guard_returning_helper_counts_as_acquisition_in_caller() {
        let src = "\
impl Q {
    fn lock_state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
    fn depth(&self) -> usize {
        let s = self.lock_state();
        s.items.len()
    }
}
";
        let f = SourceFile::new("crates/serve/src/q.rs".into(), src.into());
        let items = parse_items(&f);
        let files = vec![f];
        let fns: Vec<(usize, FnItem)> = items.fns.iter().map(|i| (0, i.clone())).collect();
        let depths = brace_depths(&files[0]);
        let mut locals: Vec<LocalSummary> = fns
            .iter()
            .map(|(_, it)| {
                let owned = it.body.map(|b| vec![b]).unwrap_or_default();
                local_summary(&files[0], 0, it, &owned, &depths)
            })
            .collect();
        let resolver = crate::callgraph::Resolver::new(&fns, &files);
        let calls: Vec<Vec<ResolvedCall>> = fns
            .iter()
            .map(|(_, it)| {
                let owned = it.body.map(|b| vec![b]).unwrap_or_default();
                crate::callgraph::extract_calls(&files[0], &owned)
                    .into_iter()
                    .map(|site| {
                        let callees =
                            resolver.resolve(&site, 0, it.self_ty.as_deref(), &fns, &items.aliases);
                        ResolvedCall { site, callees }
                    })
                    .collect()
            })
            .collect();
        assert_eq!(locals[0].returns_guard.as_deref(), Some("Q.state"));
        wire_guard_returns(&files, &fns, &calls, &mut locals);
        assert_eq!(locals[1].locks.len(), 1);
        assert_eq!(locals[1].locks[0].name, "Q.state");
        assert_eq!(locals[1].locks[0].binding.as_deref(), Some("s"));
    }

    #[test]
    fn propagation_reaches_through_two_calls_with_via_chain() {
        let src = "\
fn top() { mid(); }
fn mid() { bottom(); }
fn bottom() { x.unwrap(); }
";
        let f = SourceFile::new("crates/serve/src/a.rs".into(), src.into());
        let items = parse_items(&f);
        let files = vec![f];
        let fns: Vec<(usize, FnItem)> = items.fns.iter().map(|i| (0, i.clone())).collect();
        let depths = brace_depths(&files[0]);
        let locals: Vec<LocalSummary> = fns
            .iter()
            .map(|(_, it)| {
                let owned = it.body.map(|b| vec![b]).unwrap_or_default();
                local_summary(&files[0], 0, it, &owned, &depths)
            })
            .collect();
        let resolver = crate::callgraph::Resolver::new(&fns, &files);
        let calls: Vec<Vec<ResolvedCall>> = fns
            .iter()
            .map(|(_, it)| {
                let owned = it.body.map(|b| vec![b]).unwrap_or_default();
                crate::callgraph::extract_calls(&files[0], &owned)
                    .into_iter()
                    .map(|site| {
                        let callees =
                            resolver.resolve(&site, 0, it.self_ty.as_deref(), &fns, &items.aliases);
                        ResolvedCall { site, callees }
                    })
                    .collect()
            })
            .collect();
        let props = propagate(fns.len(), &calls, &locals);
        let w = props[0].may_panic.as_ref().expect("top reaches a panic");
        assert_eq!(w.via, vec!["mid".to_string(), "bottom".to_string()]);
        assert_eq!(w.site.line, 3);
        assert!(props[2].may_panic.as_ref().expect("own site").via.is_empty());
    }
}
