//! Orchestration: walk the workspace, run every rule on every file, apply
//! `allow(...)` suppressions, and run the suppression-hygiene meta-checks.

use crate::diag::{Finding, Report};
use crate::rules::{all_rules, graph_rules, META_RULES};
use crate::source::{Scope, SourceFile};
use crate::workspace::Workspace;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// The one ignore list: directories never descended into during a workspace
/// walk. Build output, vendored stubs, VCS metadata, and exported results
/// are all skipped here and nowhere else — rules and the walker share it.
pub const IGNORED_DIRS: &[&str] = &["target", "third_party", ".git", "results"];

/// Minimum justification length for an `allow(...)`; long enough to force a
/// reason, short enough not to fight anyone writing a real one.
const MIN_JUSTIFICATION: usize = 10;

/// Find the workspace root: the closest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// All `.rs` files under `root`, skipping build output, vendored stubs, and
/// exported results. Sorted for deterministic reports.
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !IGNORED_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// An input to a lint run: a path for scoping/reporting plus its contents.
/// `virtual_path` lets fixtures pretend to live anywhere in the tree.
pub struct Input {
    pub path: String,
    pub text: String,
}

/// Read real files into [`Input`]s, with repo-relative forward-slash paths.
/// Unreadable files become findings rather than aborting the run.
pub fn load_inputs(root: &Path, files: &[PathBuf], errors: &mut Vec<Finding>) -> Vec<Input> {
    let mut inputs = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        match fs::read_to_string(file) {
            Ok(text) => inputs.push(Input { path: rel, text }),
            // Non-UTF-8 or unreadable: lex what we can via lossy decode, or
            // report the I/O failure.
            Err(_) => match fs::read(file) {
                Ok(bytes) => inputs.push(Input {
                    path: rel,
                    text: String::from_utf8_lossy(&bytes).into_owned(),
                }),
                Err(e) => errors.push(Finding::new(
                    "io-error",
                    &rel,
                    0,
                    format!("unreadable: {e}"),
                )),
            },
        }
    }
    inputs
}

/// Wall-clock source for per-rule timing. Timing output goes to stdout
/// only, never into `lint.jsonl`, so the determinism the `nondeterminism`
/// rule guards is preserved.
fn rule_clock() -> std::time::Instant {
    // kglink-lint: allow(nondeterminism) — times rule execution for stdout reporting only; never serialized into findings or lint.jsonl
    std::time::Instant::now()
}

/// Run the full rule set — per-file rules, then the interprocedural graph
/// rules over the phase-1 workspace model — and apply suppressions.
pub fn lint_inputs(inputs: Vec<Input>, force_scope: Option<Scope>) -> Report {
    let mut rules = all_rules();
    let graph = graph_rules();
    let known_rule_ids: Vec<&'static str> = rules
        .iter()
        .map(|r| r.id())
        .chain(graph.iter().map(|r| r.id()))
        .chain(META_RULES.iter().map(|(id, _)| *id))
        .collect();

    let mut files: Vec<SourceFile> = Vec::new();
    for input in inputs {
        let mut f = SourceFile::new(input.path, input.text);
        if let Some(s) = force_scope {
            f.scope = s;
        }
        files.push(f);
    }

    let mut timings: Vec<(String, u128)> = Vec::new();
    let mut raw: Vec<Finding> = Vec::new();
    // Phase 2a: per-file rules, timed rule-by-rule across the whole input
    // set (findings are re-sorted later, so iteration order is cosmetic).
    for rule in rules.iter_mut() {
        let t0 = rule_clock();
        for f in &files {
            rule.check_file(f, &mut raw);
        }
        rule.finish(&mut raw);
        timings.push((rule.id().to_string(), t0.elapsed().as_micros()));
    }

    // Phase 1: parse items, resolve the call graph, compute and propagate
    // summaries. Phase 2b: interprocedural rules over the workspace model.
    let t0 = rule_clock();
    let ws = Workspace::build(files);
    timings.push(("(workspace-build)".to_string(), t0.elapsed().as_micros()));
    for rule in &graph {
        let t0 = rule_clock();
        rule.check(&ws, &mut raw);
        timings.push((rule.id().to_string(), t0.elapsed().as_micros()));
    }
    let files = &ws.files;

    // Suppression pass: a finding is silenced by an allow(...) naming its
    // rule whose target line matches the finding's line in the same file.
    let mut report = Report {
        files_scanned: files.len(),
        timings,
        ..Report::default()
    };
    let mut by_rule: BTreeMap<&'static str, usize> = BTreeMap::new();
    for finding in raw {
        let suppressed = files
            .iter()
            .filter(|f| f.path == finding.path)
            .flat_map(|f| f.suppressions.iter())
            .filter(|s| s.target_line == finding.line)
            .filter(|s| s.rules.iter().any(|r| r == finding.rule))
            .inspect(|s| s.used.set(true))
            .count()
            > 0;
        if suppressed {
            report.suppressed += 1;
            *by_rule.entry(finding.rule).or_insert(0) += 1;
        } else {
            report.findings.push(finding);
        }
    }
    report.suppressed_by_rule = by_rule
        .into_iter()
        .map(|(rule, n)| (rule.to_string(), n))
        .collect();

    // Suppression hygiene.
    for f in files {
        for s in &f.suppressions {
            for r in &s.rules {
                if !known_rule_ids.iter().any(|k| k == r) {
                    report.findings.push(Finding::new(
                        "allow-unknown-rule",
                        &f.path,
                        s.comment_line,
                        format!("allow({r}) names an unknown rule; see --list-rules"),
                    ));
                }
            }
            if s.justification.chars().count() < MIN_JUSTIFICATION {
                report.findings.push(Finding::new(
                    "allow-missing-justification",
                    &f.path,
                    s.comment_line,
                    "allow(...) without a justification: state, after the closing \
                     paren, why the invariant holds here",
                ));
            }
            if !s.used.get() {
                report.findings.push(Finding::new(
                    "allow-unused",
                    &f.path,
                    s.comment_line,
                    format!(
                        "allow({}) suppressed nothing — the code it excused is gone \
                         or the comment is mis-anchored; delete or move it",
                        s.rules.join(", ")
                    ),
                ));
            }
        }
    }

    report.sort();
    report
}

/// Lint a set of real files.
pub fn lint_files(root: &Path, files: &[PathBuf]) -> Report {
    let mut errors = Vec::new();
    let inputs = load_inputs(root, files, &mut errors);
    let mut report = lint_inputs(inputs, None);
    report.findings.extend(errors);
    report.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(path: &str, src: &str) -> Report {
        lint_inputs(
            vec![Input {
                path: path.into(),
                text: src.into(),
            }],
            None,
        )
    }

    #[test]
    fn justified_allow_suppresses_and_counts() {
        let src = "\
fn f() {
    // kglink-lint: allow(panic-in-lib) — capacity bounded by construction
    x.unwrap();
}
";
        let r = lint_one("crates/kg/src/graph.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn bare_allow_still_suppresses_but_is_flagged_itself() {
        let src = "fn f() {\n // kglink-lint: allow(panic-in-lib)\n x.unwrap();\n}\n";
        let r = lint_one("crates/kg/src/graph.rs", src);
        assert_eq!(r.suppressed, 1);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "allow-missing-justification");
    }

    #[test]
    fn unused_and_unknown_allows_are_flagged() {
        let src = "\
fn f() {
    // kglink-lint: allow(panic-in-lib) — nothing panicky follows anymore
    let x = 1;
    // kglink-lint: allow(no-such-rule) — rule id typo'd
    let y = 2;
}
";
        let r = lint_one("crates/kg/src/graph.rs", src);
        let rules: Vec<&str> = r.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"allow-unused"));
        assert!(rules.contains(&"allow-unknown-rule"));
    }

    #[test]
    fn force_scope_overrides_path_classification() {
        let inputs = vec![Input {
            path: "crates/lint/tests/corpus/x.rsfix".into(),
            text: "fn f() { x.unwrap(); }\n".into(),
        }];
        let r = lint_inputs(inputs, Some(Scope::Lib));
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "panic-in-lib");
    }
}
