//! Phase-1 call graph: extract call sites from function bodies and resolve
//! them to workspace functions.
//!
//! Resolution is *name-based with type narrowing*, not full type inference
//! (std-only crate; `syn` and rustc internals are off the table):
//!
//! - `self.helper(..)` resolves within the caller's `impl` type first.
//! - `Type::assoc(..)` resolves to fns whose `impl` type matches `Type`
//!   (through `use` renames).
//! - `recv.method(..)` and bare `helper(..)` resolve by name, same-file
//!   candidates preferred.
//!
//! A name that matches more than [`AMBIG_LIMIT`] candidates resolves to
//! *nothing*: a fan-out that wide (e.g. `.len()`) carries no signal, and
//! wiring it up would let one noisy name poison every summary downstream.
//! Test-scoped functions are never resolution candidates — library code
//! cannot call them, and letting a test helper shadow a product fn would
//! propagate phantom facts into lib summaries.

use crate::items::{FnItem, KEYWORDS};
use crate::lexer::TokKind;
use crate::source::{Scope, SourceFile};
use std::collections::BTreeMap;

/// Above this many same-name candidates, a call site resolves to nothing.
pub const AMBIG_LIMIT: usize = 4;

/// How a call site is written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `recv.name(..)`
    Method,
    /// `Qual::name(..)`
    Path,
    /// `name(..)`
    Bare,
}

/// One syntactic call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub kind: CallKind,
    pub name: String,
    /// Dotted receiver text for method calls (`self.queue`); `None` when
    /// the receiver is itself a call/index expression.
    pub receiver: Option<String>,
    /// `Qual` for path calls.
    pub qualifier: Option<String>,
    /// Code index of the name token.
    pub ix: usize,
    pub line: u32,
}

/// A call site plus the workspace functions it may reach (indices into the
/// workspace fn table; empty when unresolved or too ambiguous).
#[derive(Debug, Clone)]
pub struct ResolvedCall {
    pub site: CallSite,
    pub callees: Vec<usize>,
}

/// The dotted receiver path ending at the `.` at code index `dot`:
/// `self.state.lock()` → `self.state`; `shard.lock()` → `shard`. `None`
/// when the receiver is a call or index expression (`shard_for(k).lock()`).
pub fn receiver_path(f: &SourceFile, dot: usize) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot; // points at the `.` before the method name
    while j > 0 {
        let prev = j - 1;
        if f.code_kind(prev) == Some(TokKind::Ident) {
            parts.push(f.code_text(prev).to_string());
            if prev > 0 && f.code_text(prev - 1) == "." {
                j = prev - 1;
                continue;
            }
        }
        break;
    }
    if parts.is_empty() {
        return None;
    }
    parts.reverse();
    Some(parts.join("."))
}

/// Extract every call site within the code-token ranges `owned` (a fn's
/// body minus any nested fns, so each call attributes to exactly one fn).
pub fn extract_calls(f: &SourceFile, owned: &[(usize, usize)]) -> Vec<CallSite> {
    let mut out = Vec::new();
    for &(start, end) in owned {
        for i in start..end.min(f.code.len()) {
            if f.code_kind(i) != Some(TokKind::Ident) || f.code_text(i + 1) != "(" {
                continue;
            }
            let name = f.code_text(i);
            if KEYWORDS.contains(&name) {
                continue;
            }
            let prev = if i > start { f.code_text(i - 1) } else { "" };
            let site = if prev == "." {
                CallSite {
                    kind: CallKind::Method,
                    name: name.to_string(),
                    receiver: receiver_path(f, i - 1),
                    qualifier: None,
                    ix: i,
                    line: f.code_line(i),
                }
            } else if prev == ":" && i >= 3 && f.code_text(i - 2) == ":" {
                let qual = (f.code_kind(i - 3) == Some(TokKind::Ident))
                    .then(|| f.code_text(i - 3).to_string());
                CallSite {
                    kind: CallKind::Path,
                    name: name.to_string(),
                    receiver: None,
                    qualifier: qual,
                    ix: i,
                    line: f.code_line(i),
                }
            } else if prev != "fn" {
                CallSite {
                    kind: CallKind::Bare,
                    name: name.to_string(),
                    receiver: None,
                    qualifier: None,
                    ix: i,
                    line: f.code_line(i),
                }
            } else {
                continue;
            };
            out.push(site);
        }
    }
    out
}

/// Name tables over the workspace fn list, for call resolution.
pub struct Resolver {
    /// fn name → candidate fn indices (non-test fns only).
    by_name: BTreeMap<String, Vec<usize>>,
    /// (impl type, fn name) → candidate fn indices.
    by_ty: BTreeMap<(String, String), Vec<usize>>,
}

/// True when a fn can be a resolution target: product code, not tests.
fn is_candidate(file: &SourceFile, item: &FnItem) -> bool {
    !item.in_test && !matches!(file.scope, Scope::Test | Scope::Bench | Scope::Example)
}

impl Resolver {
    /// `fns` pairs each item with its owning file (parallel to the
    /// workspace fn table the returned indices point into).
    pub fn new(fns: &[(usize, FnItem)], files: &[SourceFile]) -> Resolver {
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_ty: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (ix, (file_ix, item)) in fns.iter().enumerate() {
            let Some(file) = files.get(*file_ix) else {
                continue;
            };
            if !is_candidate(file, item) {
                continue;
            }
            by_name.entry(item.name.clone()).or_default().push(ix);
            if let Some(ty) = &item.self_ty {
                by_ty
                    .entry((ty.clone(), item.name.clone()))
                    .or_default()
                    .push(ix);
            }
        }
        Resolver { by_name, by_ty }
    }

    /// Resolve one call site made from `caller` (an index into the fn
    /// table) in `caller_file`.
    pub fn resolve(
        &self,
        site: &CallSite,
        caller_file_ix: usize,
        caller_self_ty: Option<&str>,
        fns: &[(usize, FnItem)],
        aliases: &BTreeMap<String, String>,
    ) -> Vec<usize> {
        match site.kind {
            CallKind::Method => {
                // `self.helper()` → same impl type wins outright.
                if site.receiver.as_deref() == Some("self") {
                    if let Some(ty) = caller_self_ty {
                        if let Some(c) = self.by_ty.get(&(ty.to_string(), site.name.clone())) {
                            return c.clone();
                        }
                    }
                }
                // The by-name fallback has no receiver type, so std
                // vocabulary would alias every `Vec::push`, `AtomicU64::load`
                // or `Condvar::wait` in the workspace onto an unrelated
                // method that happens to share the name. Those stay
                // unresolved; locks, condvar waits, channel recvs and the
                // like are modelled directly by the summaries instead.
                if UBIQUITOUS_METHODS.contains(&site.name.as_str()) {
                    return Vec::new();
                }
                let all = self.by_name.get(&site.name);
                capped(
                    all.map(|v| {
                        v.iter()
                            .copied()
                            .filter(|&ix| fns[ix].1.has_self)
                            .collect::<Vec<_>>()
                    })
                    .unwrap_or_default(),
                )
            }
            CallKind::Path => {
                let qual = site
                    .qualifier
                    .as_deref()
                    .map(|q| aliases.get(q).map(String::as_str).unwrap_or(q));
                if let Some(q) = qual {
                    if let Some(c) = self.by_ty.get(&(q.to_string(), site.name.clone())) {
                        return c.clone();
                    }
                }
                capped(self.by_name.get(&site.name).cloned().unwrap_or_default())
            }
            CallKind::Bare => {
                let all = self.by_name.get(&site.name).cloned().unwrap_or_default();
                let same_file: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&ix| fns[ix].0 == caller_file_ix)
                    .collect();
                if !same_file.is_empty() {
                    return capped(same_file);
                }
                capped(all)
            }
        }
    }
}

/// Method names owned by std containers, atomics, and sync primitives:
/// never resolved through the receiver-blind by-name fallback. `self.x()`
/// calls to same-impl methods of these names still resolve via `by_ty`.
const UBIQUITOUS_METHODS: &[&str] = &[
    "clear", "clone", "collect", "compare_exchange", "contains", "drain", "entry", "expect",
    "extend", "fetch_add", "fetch_sub", "flush", "get", "get_mut", "insert", "is_empty", "iter",
    "join", "len", "load", "lock", "map", "max", "min", "next", "pop", "pop_back", "pop_front",
    "push", "push_back", "push_front", "read", "recv", "remove", "replace", "send", "store",
    "swap", "take", "unwrap", "wait", "write",
];

fn capped(v: Vec<usize>) -> Vec<usize> {
    if v.len() > AMBIG_LIMIT {
        Vec::new()
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;

    fn sites(src: &str) -> Vec<(CallKind, String, Option<String>)> {
        let f = SourceFile::new("crates/x/src/a.rs".into(), src.into());
        let items = parse_items(&f);
        let body = items.fns[0].body.unwrap();
        extract_calls(&f, &[body])
            .into_iter()
            .map(|c| (c.kind, c.name, c.receiver.or(c.qualifier)))
            .collect()
    }

    #[test]
    fn method_path_and_bare_calls_are_classified() {
        let got = sites(
            "fn f(&self) { self.state.lock(); File::open(p); helper(1); if (x) {} m!(y); }\n",
        );
        assert_eq!(
            got,
            vec![
                (CallKind::Method, "lock".into(), Some("self.state".into())),
                (CallKind::Path, "open".into(), Some("File".into())),
                (CallKind::Bare, "helper".into(), None),
            ]
        );
    }

    #[test]
    fn chained_receiver_is_none_and_keywords_are_skipped() {
        let got = sites("fn f() { shard_for(k).lock(); match (a, b) { _ => {} } }\n");
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], (CallKind::Bare, "shard_for".into(), None));
        assert_eq!(got[1], (CallKind::Method, "lock".into(), None));
    }

    #[test]
    fn self_method_resolves_within_impl_type() {
        let src = "\
impl Foo {
    fn a(&self) { self.b(); }
    fn b(&self) {}
}
impl Bar {
    fn b(&self) {}
}
";
        let f = SourceFile::new("crates/x/src/a.rs".into(), src.into());
        let items = parse_items(&f);
        let fns: Vec<(usize, FnItem)> = items.fns.iter().map(|i| (0usize, i.clone())).collect();
        let files = vec![f];
        let r = Resolver::new(&fns, &files);
        let body = fns[0].1.body.unwrap();
        let calls = extract_calls(&files[0], &[body]);
        assert_eq!(calls.len(), 1);
        let callees = r.resolve(&calls[0], 0, Some("Foo"), &fns, &BTreeMap::new());
        assert_eq!(callees, vec![1], "resolves to Foo::b only, not Bar::b");
    }

    #[test]
    fn test_fns_are_not_candidates_and_wide_fanout_is_dropped() {
        let mut src = String::from("fn caller() { frob(); common(); }\nfn frob() {}\n");
        for i in 0..6 {
            src.push_str(&format!("impl T{i} {{ fn common(&self) {{}} }}\n"));
        }
        let f = SourceFile::new("crates/x/src/a.rs".into(), src);
        let t = SourceFile::new(
            "crates/x/tests/t.rs".into(),
            "fn frob() { panic!() }\n".into(),
        );
        let items = parse_items(&f);
        let titems = parse_items(&t);
        let mut fns: Vec<(usize, FnItem)> =
            items.fns.iter().map(|i| (0usize, i.clone())).collect();
        fns.extend(titems.fns.iter().map(|i| (1usize, i.clone())));
        let files = vec![f, t];
        let r = Resolver::new(&fns, &files);
        let body = fns[0].1.body.unwrap();
        let calls = extract_calls(&files[0], &[body]);
        let frob = r.resolve(&calls[0], 0, None, &fns, &BTreeMap::new());
        assert_eq!(frob, vec![1], "test-scope frob is not a candidate");
        let common = r.resolve(&calls[1], 0, None, &fns, &BTreeMap::new());
        assert!(common.is_empty(), "6 candidates exceed AMBIG_LIMIT");
    }
}
