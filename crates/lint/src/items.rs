//! Phase-1 item model: a lightweight, total parse of one file into the
//! items the interprocedural engine needs — functions (with signatures,
//! bodies, and enclosing `impl` types), inline modules, and `use` aliases.
//!
//! Built directly on the property-tested [`lexer`](crate::lexer) token
//! tiling, with the same two hard guarantees (see `tests/items_prop.rs`):
//!
//! 1. **Never panics**, for arbitrary input.
//! 2. **Spans tile**: [`tile`] partitions the file into alternating gap and
//!    item segments whose concatenation reproduces the source byte-exactly.
//!
//! Like the lexer, this is deliberately *not* a Rust parser. It recognizes
//! exactly the shapes the interprocedural rules consume: `fn` items (name,
//! params with textual types, return type, body token range), the `impl`
//! block each method lives in, nested `mod` blocks, and `use` renames. An
//! unrecognized construct degrades to "tokens belonging to no item", never
//! to a parse failure.

use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// One function parameter: the binding name and its type as joined token
/// text (`"Deadline"`, `"& mut Vec < f32 >"` — exact enough for
/// `contains("Deadline")`-style checks).
#[derive(Debug, Clone)]
pub struct Param {
    pub name: String,
    pub ty: String,
}

/// One `fn` item found in a file. All indices are *code-token* indices into
/// the owning [`SourceFile`]'s `code` vector.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Type name of the enclosing `impl` block, if any (`impl Foo { .. }`
    /// and `impl Trait for Foo { .. }` both yield `Foo`).
    pub self_ty: Option<String>,
    /// Inline `mod` path from the file root down to this item.
    pub module: Vec<String>,
    /// Non-`self` parameters, in order.
    pub params: Vec<Param>,
    /// Whether the parameter list starts with a `self` receiver.
    pub has_self: bool,
    /// Return type as joined token text; empty for `()`-returning fns.
    pub ret_ty: String,
    /// Code index of the `fn` keyword.
    pub decl_ix: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Code-token range `[start, end)` of the body interior (between the
    /// braces); `None` for bodiless trait signatures.
    pub body: Option<(usize, usize)>,
    /// Byte span of the whole item, `fn` keyword through closing brace or
    /// semicolon. Used by [`tile`].
    pub byte_span: (usize, usize),
    /// True when the item sits inside an inline `#[cfg(test)]` region.
    pub in_test: bool,
}

/// Everything the item parse extracts from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    pub fns: Vec<FnItem>,
    /// `use` renames and imports: local name → last real path segment
    /// (`use x::Foo as Bar` → `Bar → Foo`; `use x::Foo` → `Foo → Foo`).
    pub aliases: BTreeMap<String, String>,
}

/// Rust keywords that can never be call or item names; used to reject
/// look-alike token shapes (`if (..)`, `match (..)`).
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut",
    "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "type",
    "unsafe", "use", "where", "while", "yield",
];

/// Per-code-token brace depth, computed once per file: `depth_of[i]` is the
/// nesting depth *inside which* token `i` sits. An opening `{` and its
/// matching `}` share the same (outer) depth value, so "the close of the
/// block containing `i`" is the first `}` at `depth_of[i] - 1`.
pub fn brace_depths(f: &SourceFile) -> Vec<u32> {
    let mut out = Vec::with_capacity(f.code.len());
    let mut depth = 0u32;
    for i in 0..f.code.len() {
        match f.code_text(i) {
            "{" => {
                out.push(depth);
                depth += 1;
            }
            "}" => {
                depth = depth.saturating_sub(1);
                out.push(depth);
            }
            _ => out.push(depth),
        }
    }
    out
}

/// Parse one file's item model. Total: malformed input yields fewer items,
/// never an error or a panic.
pub fn parse_items(f: &SourceFile) -> FileItems {
    let mut items = FileItems::default();
    let n = f.code.len();
    // Context stack: (is_impl, name, depth-inside-the-block). Innermost
    // `impl` entry supplies `self_ty`; `mod` entries build the module path.
    let mut stack: Vec<(bool, String, u32)> = Vec::new();
    let depths = brace_depths(f);
    let mut i = 0usize;
    while i < n {
        // Pop contexts whose block has closed.
        while let Some(&(_, _, d)) = stack.last() {
            if depths[i] < d {
                stack.pop();
            } else {
                break;
            }
        }
        match f.code_text(i) {
            "use" => {
                i = parse_use(f, i, &mut items.aliases);
            }
            "mod" if f.code_kind(i + 1) == Some(TokKind::Ident) => {
                // `mod name {` opens a context; `mod name;` declares only.
                if f.code_text(i + 2) == "{" {
                    stack.push((false, f.code_text(i + 1).to_string(), depths[i + 2] + 1));
                    i += 3;
                } else {
                    i += 2;
                }
            }
            "impl" => {
                let (ty, open) = parse_impl_header(f, i);
                if let Some(open) = open {
                    stack.push((true, ty.unwrap_or_default(), depths[open] + 1));
                    i = open + 1;
                } else {
                    i += 1;
                }
            }
            "fn" if f.code_kind(i + 1) == Some(TokKind::Ident) => {
                let self_ty = stack
                    .iter()
                    .rev()
                    .find(|(is_impl, name, _)| *is_impl && !name.is_empty())
                    .map(|(_, name, _)| name.clone());
                let module: Vec<String> = stack
                    .iter()
                    .filter(|(is_impl, _, _)| !is_impl)
                    .map(|(_, name, _)| name.clone())
                    .collect();
                let (item, next) = parse_fn(f, i, self_ty, module);
                if let Some(item) = item {
                    items.fns.push(item);
                }
                // Continue scanning *inside* the body so nested items are
                // found too; `next` only skips the signature.
                i = next;
            }
            _ => i += 1,
        }
    }
    items
}

/// Parse `use a::b::{c, d as e};` into alias entries. Returns the code index
/// just past the terminating `;` (or wherever scanning stopped).
fn parse_use(f: &SourceFile, start: usize, aliases: &mut BTreeMap<String, String>) -> usize {
    let n = f.code.len();
    let mut i = start + 1;
    // Walk the statement, tracking the most recent path segment; on `,`,
    // `}` or `;` commit the pending (segment, alias) pair.
    let mut last_seg: Option<String> = None;
    let mut alias: Option<String> = None;
    let mut after_as = false;
    while i < n {
        let t = f.code_text(i);
        match t {
            ";" => break,
            "as" => after_as = true,
            "," | "}" => {
                commit_alias(aliases, &mut last_seg, &mut alias);
                after_as = false;
            }
            "{" | ":" | "*" => {}
            _ if f.code_kind(i) == Some(TokKind::Ident) => {
                if after_as {
                    alias = Some(t.to_string());
                } else {
                    last_seg = Some(t.to_string());
                }
            }
            _ => {}
        }
        i += 1;
    }
    commit_alias(aliases, &mut last_seg, &mut alias);
    i + 1
}

fn commit_alias(
    aliases: &mut BTreeMap<String, String>,
    last_seg: &mut Option<String>,
    alias: &mut Option<String>,
) {
    if let Some(seg) = last_seg.take() {
        // `use x::y::{self}` and crate/super segments carry no new name.
        if !KEYWORDS.contains(&seg.as_str()) {
            let name = alias.take().unwrap_or_else(|| seg.clone());
            aliases.insert(name, seg);
        }
    }
    *alias = None;
}

/// From an `impl` keyword, extract the implemented type name and the code
/// index of the opening `{`. `impl<T> Trait for Foo<T> where ... {` → `Foo`.
fn parse_impl_header(f: &SourceFile, start: usize) -> (Option<String>, Option<usize>) {
    let n = f.code.len();
    let mut i = start + 1;
    let mut angle = 0i32;
    let mut after_for = false;
    let mut candidate: Option<String> = None;
    let mut first: Option<String> = None;
    while i < n {
        let t = f.code_text(i);
        match t {
            "{" if angle <= 0 => {
                return (candidate.or(first), Some(i));
            }
            ";" if angle <= 0 => return (None, None),
            "<" => angle += 1,
            // `->` must not close a generic bracket.
            ">" if f.code_text(i.wrapping_sub(1)) != "-" => angle -= 1,
            "for" if angle <= 0 => {
                after_for = true;
                candidate = None;
            }
            "where" if angle <= 0 => {
                // Type name is settled before the where clause.
                after_for = false;
            }
            _ if f.code_kind(i) == Some(TokKind::Ident)
                && angle <= 0
                && !KEYWORDS.contains(&t) =>
            {
                if first.is_none() {
                    first = Some(t.to_string());
                }
                if after_for && candidate.is_none() {
                    candidate = Some(t.to_string());
                } else if !after_for && candidate.is_none() {
                    // Pre-`for` segments keep updating `first` only via
                    // the initial capture; the last pre-brace ident of a
                    // bare `impl Foo` path is handled by `first` +
                    // path-tail preference below.
                    first = Some(pick_path_tail(f, i, first.take()));
                }
            }
            _ => {}
        }
        i += 1;
    }
    (None, None)
}

/// For `impl a::b::Foo`, prefer the tail segment over the head: if ident at
/// `i` follows `::`, it replaces the running candidate.
fn pick_path_tail(f: &SourceFile, i: usize, prev: Option<String>) -> String {
    let follows_path = i >= 2 && f.code_text(i - 1) == ":" && f.code_text(i - 2) == ":";
    if follows_path || prev.is_none() {
        f.code_text(i).to_string()
    } else {
        prev.unwrap_or_default()
    }
}

/// Parse one `fn` item starting at the `fn` keyword. Returns the item (if a
/// well-formed signature was found) and the code index to resume scanning
/// at — just *inside* the body, so nested items are still discovered.
fn parse_fn(
    f: &SourceFile,
    start: usize,
    self_ty: Option<String>,
    module: Vec<String>,
) -> (Option<FnItem>, usize) {
    let n = f.code.len();
    let name = f.code_text(start + 1).to_string();
    let mut i = start + 2;
    // Optional generics: `<...>`, with `->` protection for `Fn() -> T` bounds.
    if f.code_text(i) == "<" {
        let mut angle = 0i32;
        while i < n {
            match f.code_text(i) {
                "<" => angle += 1,
                ">" if f.code_text(i.wrapping_sub(1)) != "-" => {
                    angle -= 1;
                    if angle == 0 {
                        i += 1;
                        break;
                    }
                }
                "(" | "{" | ";" => break, // malformed generics: bail to params
                _ => {}
            }
            i += 1;
        }
    }
    if f.code_text(i) != "(" {
        return (None, start + 2);
    }
    let params_start = i + 1;
    let mut depth = 0i32;
    while i < n {
        match f.code_text(i) {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    if i >= n {
        return (None, n);
    }
    let params_end = i;
    let (params, has_self) = parse_params(f, params_start, params_end);
    // Return type and where clause, up to the body `{` or a `;`.
    i += 1;
    let ret_start = i;
    let mut depth = 0i32;
    while i < n {
        match f.code_text(i) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            ";" if depth <= 0 => {
                let item = make_fn(f, start, name, self_ty, module, params, has_self, ret_start, i, None);
                return (Some(item), i + 1);
            }
            "{" if depth <= 0 => break,
            _ => {}
        }
        i += 1;
    }
    if i >= n {
        return (None, n);
    }
    let body_open = i;
    let depths = brace_depths(f);
    let close = matching_close(f, &depths, body_open);
    let body = Some((body_open + 1, close));
    let item = make_fn(
        f, start, name, self_ty, module, params, has_self, ret_start, body_open, body,
    );
    (Some(item), body_open + 1)
}

#[allow(clippy::too_many_arguments)]
fn make_fn(
    f: &SourceFile,
    start: usize,
    name: String,
    self_ty: Option<String>,
    module: Vec<String>,
    params: Vec<Param>,
    has_self: bool,
    ret_start: usize,
    ret_end: usize,
    body: Option<(usize, usize)>,
) -> FnItem {
    let ret_ty = join_tokens(f, ret_start, ret_end)
        .trim_start_matches(['-', '>', ' '])
        .trim()
        .to_string();
    let span_start = f.code_tok(start).map(|t| t.start).unwrap_or(0);
    let span_end = match body {
        // `close` is the index of `}`; include it.
        Some((_, close)) => f.code_tok(close).map(|t| t.end).unwrap_or(f.text.len()),
        None => f.code_tok(ret_end).map(|t| t.end).unwrap_or(f.text.len()),
    };
    FnItem {
        name,
        self_ty,
        module,
        params,
        has_self,
        ret_ty,
        decl_ix: start,
        line: f.code_line(start),
        body,
        byte_span: (span_start, span_end),
        in_test: f.code_in_test(start),
    }
}

/// Find the matching `}` for the `{` at code index `open` (see
/// [`brace_depths`]); falls back to the last token for unbalanced input.
pub fn matching_close(f: &SourceFile, depths: &[u32], open: usize) -> usize {
    let want = depths.get(open).copied().unwrap_or(0);
    for (j, d) in depths.iter().enumerate().skip(open + 1) {
        if f.code_text(j) == "}" && *d == want {
            return j;
        }
    }
    f.code.len().saturating_sub(1).max(open)
}

/// Split the parameter range at top-level commas into (name, type) pairs.
fn parse_params(f: &SourceFile, start: usize, end: usize) -> (Vec<Param>, bool) {
    let mut params = Vec::new();
    let mut has_self = false;
    let mut seg_start = start;
    let mut depth = 0i32;
    let mut i = start;
    while i <= end {
        let at_end = i == end;
        let t = if at_end { "," } else { f.code_text(i) };
        match t {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "<" => depth += 1,
            ">" if f.code_text(i.wrapping_sub(1)) != "-" => depth -= 1,
            "," if depth <= 0 => {
                if let Some(p) = parse_one_param(f, seg_start, i, &mut has_self) {
                    params.push(p);
                }
                seg_start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    (params, has_self)
}

/// One `name: Ty` segment (or a `self` receiver, which sets `has_self`).
fn parse_one_param(
    f: &SourceFile,
    start: usize,
    end: usize,
    has_self: &mut bool,
) -> Option<Param> {
    // Locate the top-level `:` (skipping `::`).
    let mut colon = None;
    let mut depth = 0i32;
    for i in start..end {
        match f.code_text(i) {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" => depth -= 1,
            ">" if f.code_text(i.wrapping_sub(1)) != "-" => depth -= 1,
            ":" if depth <= 0
                && f.code_text(i + 1) != ":"
                && (i == start || f.code_text(i - 1) != ":") =>
            {
                colon = Some(i);
                break;
            }
            _ => {}
        }
    }
    let Some(colon) = colon else {
        // No `:` — a receiver (`self`, `&mut self`) or malformed.
        if (start..end).any(|i| f.code_text(i) == "self") {
            *has_self = true;
        }
        return None;
    };
    // Binding name: last identifier before the colon (`mut x: T` → `x`;
    // destructuring patterns yield their last binding, which is enough for
    // "is this name ever mentioned in the body" checks).
    let name = (start..colon)
        .rev()
        .find(|&i| f.code_kind(i) == Some(TokKind::Ident) && f.code_text(i) != "mut")
        .map(|i| f.code_text(i).to_string())?;
    let ty = join_tokens(f, colon + 1, end);
    Some(Param { name, ty })
}

/// Joined text of code tokens `[start, end)`, single-space separated.
pub fn join_tokens(f: &SourceFile, start: usize, end: usize) -> String {
    let mut out = String::new();
    for i in start..end.min(f.code.len()) {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(f.code_text(i));
    }
    out
}

/// A byte segment of the file: either one top-level item's span or the gap
/// between items. The segments partition `[0, text.len())` exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    pub start: usize,
    pub end: usize,
    /// True for a recognized item span, false for inter-item text.
    pub is_item: bool,
}

/// Partition the file into item/gap segments. Only outermost items count
/// (a fn nested in another fn's body is covered by its parent's span), so
/// the segments are disjoint and cover the file byte-exactly — the
/// property `tests/items_prop.rs` pins for arbitrary input.
pub fn tile(f: &SourceFile, items: &FileItems) -> Vec<Segment> {
    let mut spans: Vec<(usize, usize)> = Vec::new();
    for item in &items.fns {
        let (s, e) = item.byte_span;
        let (s, e) = (s.min(f.text.len()), e.min(f.text.len()));
        if e <= s {
            continue;
        }
        // Keep only spans not contained in an already-kept span. Items are
        // emitted in source order, so a parent precedes its nested fns.
        if spans.iter().any(|&(ps, pe)| ps <= s && e <= pe) {
            continue;
        }
        spans.push((s, e));
    }
    spans.sort_unstable();
    // Drop any overlapping stragglers (malformed input can confuse brace
    // matching); tiling correctness beats span completeness.
    let mut kept: Vec<(usize, usize)> = Vec::new();
    for (s, e) in spans {
        if kept.last().is_none_or(|&(_, pe)| s >= pe) {
            kept.push((s, e));
        }
    }
    let mut out = Vec::new();
    let mut pos = 0usize;
    for (s, e) in kept {
        if s > pos {
            out.push(Segment {
                start: pos,
                end: s,
                is_item: false,
            });
        }
        out.push(Segment {
            start: s,
            end: e,
            is_item: true,
        });
        pos = e;
    }
    if pos < f.text.len() {
        out.push(Segment {
            start: pos,
            end: f.text.len(),
            is_item: false,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> (SourceFile, FileItems) {
        let f = SourceFile::new("crates/x/src/a.rs".into(), src.into());
        let items = parse_items(&f);
        (f, items)
    }

    #[test]
    fn finds_fns_with_impl_types_and_modules() {
        let src = "\
impl<T: Clone> BoundedQueue<T> {
    pub fn push(&self, item: T, policy: AdmissionPolicy) -> Result<Option<T>, PushError> {
        self.inner(item)
    }
}
impl KgBackend for DiskBackend {
    fn search_entities(&self, query: &str, top_k: usize, deadline: Deadline) -> Out { x }
}
mod inner {
    fn helper(n: u32) {}
}
fn free() {}
";
        let (_, items) = parse(src);
        let names: Vec<(String, Option<String>)> = items
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.self_ty.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("push".into(), Some("BoundedQueue".into())),
                ("search_entities".into(), Some("DiskBackend".into())),
                ("helper".into(), None),
                ("free".into(), None),
            ]
        );
        assert_eq!(items.fns[2].module, vec!["inner".to_string()]);
        assert!(items.fns[0].has_self);
        let se = &items.fns[1];
        assert_eq!(se.params.len(), 3);
        assert_eq!(se.params[2].name, "deadline");
        assert_eq!(se.params[2].ty, "Deadline");
        assert!(items.fns[0].ret_ty.contains("Result"));
    }

    #[test]
    fn trait_signatures_have_no_body_and_nested_fns_are_found() {
        let src = "\
trait B { fn go(&self, deadline: Deadline) -> u32; }
fn outer() {
    fn inner(x: u32) -> u32 { x }
    inner(1);
}
";
        let (_, items) = parse(src);
        assert_eq!(items.fns.len(), 3);
        assert!(items.fns[0].body.is_none());
        assert_eq!(items.fns[1].name, "outer");
        assert_eq!(items.fns[2].name, "inner");
        assert!(items.fns[2].body.is_some());
    }

    #[test]
    fn use_aliases_including_groups_and_renames() {
        let src = "\
use std::collections::BTreeMap;
use crate::queue::{BoundedQueue, AdmissionPolicy as Policy};
use foo::bar as baz;
";
        let (_, items) = parse(src);
        assert_eq!(items.aliases.get("BTreeMap").map(String::as_str), Some("BTreeMap"));
        assert_eq!(items.aliases.get("Policy").map(String::as_str), Some("AdmissionPolicy"));
        assert_eq!(items.aliases.get("baz").map(String::as_str), Some("bar"));
    }

    #[test]
    fn tiling_covers_the_file_exactly() {
        let src = "// header\nfn a() { fn nested() {} }\nstruct S;\nfn b(x: u32) -> u32 { x }\n";
        let (f, items) = parse(src);
        let segs = tile(&f, &items);
        let mut pos = 0usize;
        for s in &segs {
            assert_eq!(s.start, pos, "gap or overlap at {pos}");
            pos = s.end;
        }
        assert_eq!(pos, src.len());
        assert_eq!(segs.iter().filter(|s| s.is_item).count(), 2, "{segs:?}");
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let (_, items) = parse(src);
        assert!(!items.fns[0].in_test);
        assert!(items.fns[1].in_test);
    }

    #[test]
    fn malformed_input_degrades_without_panic() {
        for src in [
            "fn",
            "fn (",
            "fn f(",
            "impl {",
            "fn f<T(x: u32) {}",
            "use ;",
            "mod m { fn f() {",
            "}}}}",
        ] {
            let (f, items) = parse(src);
            let segs = tile(&f, &items);
            let mut pos = 0usize;
            for s in &segs {
                assert_eq!(s.start, pos);
                pos = s.end;
            }
            assert_eq!(pos, src.len());
        }
    }
}
