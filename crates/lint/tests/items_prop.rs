//! Property tests for the item parser's two total-function guarantees: it
//! never panics on arbitrary input, and [`tile`]'s item/gap segments
//! partition the file byte-exactly. Mirrors `lexer_prop.rs` one layer up:
//! the phase-1 model must be as unkillable as the lexer it sits on, because
//! the workspace walk feeds it every file verbatim — including malformed,
//! half-edited, or non-UTF-8 ones.

use kglink_lint::items::{parse_items, tile};
use kglink_lint::source::SourceFile;
use kglink_lint::workspace::Workspace;
use proptest::prelude::*;

fn tiles_exactly(src: &str) {
    let f = SourceFile::new("crates/x/src/a.rs".into(), src.into());
    let items = parse_items(&f);
    let segments = tile(&f, &items);
    let mut pos = 0usize;
    for s in &segments {
        assert_eq!(s.start, pos, "segments must be contiguous");
        assert!(s.end > s.start, "segments must be non-empty");
        pos = s.end;
    }
    assert_eq!(
        pos,
        src.len(),
        "segments must cover the file to the last byte"
    );
    for item in &items.fns {
        let (s, e) = item.byte_span;
        assert!(s <= e && e <= src.len(), "item spans stay in bounds");
        if let Some((bs, be)) = item.body {
            assert!(bs <= be, "body range is ordered");
            assert!(be <= f.code.len(), "body range stays in the token stream");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic_and_tile(
        bytes in proptest::collection::vec(0u8..=255u8, 0..400),
    ) {
        tiles_exactly(&String::from_utf8_lossy(&bytes));
    }

    #[test]
    fn item_syntax_soup_tiles(
        picks in proptest::collection::vec(0usize..16, 0..120),
    ) {
        // Dense in the tokens the item parser dispatches on: `fn` heads,
        // impl blocks, unbalanced braces, attributes, generics.
        const VOCAB: [&str; 16] = [
            "fn ", "impl ", "mod ", "use ", "self", "{", "}", "(", ")", ";",
            ":", "->", "<T>", "#[cfg(test)]", "f", "\n",
        ];
        let soup: String = picks.iter().map(|&i| VOCAB[i]).collect();
        tiles_exactly(&soup);
    }

    #[test]
    fn workspace_build_is_total(
        a in "[a-z{}();.:&= \n]{0,200}",
        b in "[a-z{}();.:&= \n]{0,200}",
    ) {
        // The whole phase-1 pipeline — items, call graph, summaries,
        // fixpoint — must absorb garbage without panicking.
        let ws = Workspace::from_sources(vec![
            ("crates/serve/src/a.rs", a.as_str()),
            ("crates/search/src/b.rs", b.as_str()),
        ]);
        assert_eq!(ws.fns.len(), ws.locals.len());
        assert_eq!(ws.fns.len(), ws.props.len());
    }
}
