//! Two lint runs over the same workspace must produce byte-identical
//! `results/lint.jsonl` content. The engine lints itself with this rule
//! (`nondeterminism`), but the exported artifact is the contract CI diffs,
//! so it gets its own end-to-end pin: findings and the suppression-audit
//! record are deterministic; per-rule timings exist but are stdout-only and
//! never serialized.

use kglink_lint::engine::{find_workspace_root, lint_files, workspace_files};
use kglink_lint::Report;
use std::path::PathBuf;

/// The exact bytes `kglink-lint --json` writes (see `write_jsonl` in the
/// CLI): one finding record per line, closed by the audit record.
fn jsonl(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&f.to_json());
        out.push('\n');
    }
    out.push_str(&report.audit_json());
    out.push('\n');
    out
}

#[test]
fn two_workspace_runs_are_byte_identical() {
    let root = find_workspace_root(&PathBuf::from(env!("CARGO_MANIFEST_DIR")))
        .expect("test runs inside the workspace");
    let files = workspace_files(&root);
    assert!(files.len() > 50, "workspace walk found {} files", files.len());
    let a = lint_files(&root, &files);
    let b = lint_files(&root, &files);
    assert_eq!(jsonl(&a), jsonl(&b), "lint.jsonl content must not vary");
    // Timings may differ run to run — that is exactly why they are not part
    // of the serialized report.
    assert_eq!(a.timings.len(), b.timings.len());
    assert!(!jsonl(&a).contains("timing"), "timings must never be serialized");
}
