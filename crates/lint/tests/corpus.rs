//! The linter's self-test: lint the fixture corpus and require every
//! declared finding to fire and nothing undeclared to appear. This is the
//! same check CI runs as `kglink-lint --self-test` — if a rule silently
//! goes blind (the failure mode that killed the old grep gates), this
//! test and the CI meta-gate both fail.

use kglink_lint::fixtures::{corpus_files, parse_fixture, run_corpus};
use kglink_lint::rules::{all_rules, graph_rules, META_RULES};
use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn corpus_matches_declared_expectations() {
    let outcome = run_corpus(&corpus_dir());
    assert!(
        outcome.ok(),
        "{}\n{}",
        outcome.summary(),
        outcome.mismatches.join("\n")
    );
}

/// Every rule — including the suppression-hygiene meta-rules — must have at
/// least one positive expectation in the corpus, so "rule went blind" is
/// detectable for all of them, not just the ones someone remembered to
/// write a fixture for.
#[test]
fn every_rule_has_corpus_coverage() {
    let mut covered: BTreeSet<String> = BTreeSet::new();
    for path in corpus_files(&corpus_dir()) {
        let text = fs::read_to_string(&path).expect("fixture readable");
        let fixture = parse_fixture(&path, text).expect("fixture parses");
        covered.extend(fixture.expect.iter().map(|e| e.rule.clone()));
    }
    let mut missing: Vec<&str> = all_rules()
        .iter()
        .map(|r| r.id())
        .chain(graph_rules().iter().map(|r| r.id()))
        .chain(META_RULES.iter().map(|(id, _)| *id))
        .filter(|id| !covered.contains(*id))
        .collect();
    missing.sort_unstable();
    assert!(
        missing.is_empty(),
        "rules with no corpus expectation (add an .rsfix): {missing:?}"
    );
}

/// Suppressions must be exercised too: at least one fixture declares a
/// nonzero suppressed count, proving allow-comments actually silence.
#[test]
fn corpus_exercises_suppressions() {
    let total: usize = corpus_files(&corpus_dir())
        .into_iter()
        .map(|path| {
            let text = fs::read_to_string(&path).expect("fixture readable");
            parse_fixture(&path, text).expect("fixture parses").suppressed
        })
        .sum();
    assert!(total > 0, "no fixture exercises the suppression path");
}
