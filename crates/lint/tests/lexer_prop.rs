//! Property tests for the lexer's two total-function guarantees: it never
//! panics, and its tokens tile the input exactly (concatenating token texts
//! reproduces the source byte for byte). Exercised on arbitrary bytes run
//! through `from_utf8_lossy` (worst-case garbage) and on input dense in the
//! characters the lexer special-cases (quotes, slashes, `r#`, braces).

use kglink_lint::lexer::lex;
use proptest::prelude::*;

fn round_trips(src: &str) {
    let toks = lex(src);
    let mut reassembled = String::with_capacity(src.len());
    let mut line = 1u32;
    for t in &toks {
        reassembled.push_str(t.text(src));
        assert!(t.line >= line, "token lines must be nondecreasing");
        line = t.line;
    }
    assert_eq!(reassembled, src, "tokens must tile the input exactly");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic_and_round_trip(
        bytes in proptest::collection::vec(0u8..=255u8, 0..400),
    ) {
        round_trips(&String::from_utf8_lossy(&bytes));
    }

    #[test]
    fn tokenizer_trigger_soup_round_trips(
        soup in "[a-z0-9_\"'/\\*\\#{}()!.:; \
\n]{0,300}",
    ) {
        round_trips(&soup);
    }

    #[test]
    fn open_ended_literals_round_trip(
        which in 0usize..6,
        body in proptest::collection::vec(0u8..=255u8, 0..60),
    ) {
        // Deliberately unterminated strings/comments: the lexer must absorb
        // them to EOF without panicking and still tile exactly.
        let openers = ["\"", "'", "//", "/* ", "r#\"", "b\"\\"];
        let src = format!("{}{}", openers[which], String::from_utf8_lossy(&body));
        round_trips(&src);
    }
}
