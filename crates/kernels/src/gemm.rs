//! The one GEMM entry point: `out = op(A) · op(B)` over strided views.
//!
//! Tiling scheme: the output is walked in 4-row × 8-column register
//! blocks (`MR` × `NR`). Each block holds its partial sums in registers
//! (`[[f32; 8]; 4]` — 8 f32 lanes, one AVX/NEON-class vector per row) and
//! streams over `k` once, so every output element accumulates its terms
//! **sequentially in ascending `k` from 0.0** — the property that makes
//! the fast path bit-identical to the naive reference and to the legacy
//! `kglink-nn` loops. Transposed operands are packed into contiguous
//! row-major panels of `op(X)` first (pure data movement), so the inner
//! loop always does unit-stride loads. At encoder sizes (`k ≤ 192`) the
//! operands fit in L1/L2, so no further cache-level blocking is needed.

use crate::scratch::Scratch;
use std::sync::atomic::{AtomicBool, Ordering};

/// Transpose flag for a GEMM operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    No,
    Yes,
}

/// Immutable strided matrix view: `rows × cols`, each row a contiguous
/// slice, consecutive rows `row_stride` apart. A `row_stride` larger than
/// `cols` views a column band of a wider matrix (e.g. one attention head
/// inside a packed `rows × d_model` activation buffer).
#[derive(Debug, Clone, Copy)]
pub struct Mat<'a> {
    data: &'a [f32],
    rows: usize,
    cols: usize,
    row_stride: usize,
}

fn view_len(rows: usize, cols: usize, row_stride: usize) -> usize {
    if rows == 0 || cols == 0 {
        0
    } else {
        (rows - 1) * row_stride + cols
    }
}

impl<'a> Mat<'a> {
    /// Dense row-major view (`row_stride == cols`).
    pub fn new(data: &'a [f32], rows: usize, cols: usize) -> Self {
        Self::with_stride(data, rows, cols, cols)
    }

    /// Strided view.
    ///
    /// # Panics
    /// Panics if `row_stride < cols` or `data` is too short.
    pub fn with_stride(data: &'a [f32], rows: usize, cols: usize, row_stride: usize) -> Self {
        assert!(row_stride >= cols, "row_stride must cover cols");
        assert!(
            data.len() >= view_len(rows, cols, row_stride),
            "Mat view out of bounds"
        );
        Mat {
            data,
            rows,
            cols,
            row_stride,
        }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.row_stride..r * self.row_stride + self.cols]
    }
}

/// Mutable strided matrix view (see [`Mat`]).
#[derive(Debug)]
pub struct MatMut<'a> {
    data: &'a mut [f32],
    rows: usize,
    cols: usize,
    row_stride: usize,
}

impl<'a> MatMut<'a> {
    /// Dense row-major view (`row_stride == cols`).
    pub fn new(data: &'a mut [f32], rows: usize, cols: usize) -> Self {
        Self::with_stride(data, rows, cols, cols)
    }

    /// Strided view.
    ///
    /// # Panics
    /// Panics if `row_stride < cols` or `data` is too short.
    pub fn with_stride(data: &'a mut [f32], rows: usize, cols: usize, row_stride: usize) -> Self {
        assert!(row_stride >= cols, "row_stride must cover cols");
        assert!(
            data.len() >= view_len(rows, cols, row_stride),
            "MatMut view out of bounds"
        );
        MatMut {
            data,
            rows,
            cols,
            row_stride,
        }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.row_stride..r * self.row_stride + self.cols]
    }
}

static REFERENCE: AtomicBool = AtomicBool::new(false);

/// Route every subsequent [`gemm`] / [`gemm_acc`] through the scalar
/// reference kernel (one serial dot product per output element). Test
/// and benchmark hook; because both paths are bit-identical, the switch
/// can be flipped mid-training without changing any result.
pub fn set_reference_mode(on: bool) {
    REFERENCE.store(on, Ordering::Relaxed);
}

/// Whether the reference path is active.
pub fn reference_mode() -> bool {
    REFERENCE.load(Ordering::Relaxed)
}

#[inline]
fn op_shape(x: &Mat<'_>, t: Trans) -> (usize, usize) {
    match t {
        Trans::No => (x.rows, x.cols),
        Trans::Yes => (x.cols, x.rows),
    }
}

/// `out = op(a) · op(b)` where `op` transposes when the flag is
/// [`Trans::Yes`]. `scratch` provides the packing panels; repeated calls
/// with the same shapes are allocation-free.
///
/// # Panics
/// Panics on inner-dimension or output-shape mismatch.
pub fn gemm(
    a: Mat<'_>,
    b: Mat<'_>,
    ta: Trans,
    tb: Trans,
    out: &mut MatMut<'_>,
    scratch: &mut Scratch,
) {
    gemm_impl(a, b, ta, tb, out, scratch, false);
}

/// `out += op(a) · op(b)`. Each product element is fully accumulated
/// before the single add into `out`, so gradient accumulation matches
/// "compute then `add_assign`" bit for bit.
pub fn gemm_acc(
    a: Mat<'_>,
    b: Mat<'_>,
    ta: Trans,
    tb: Trans,
    out: &mut MatMut<'_>,
    scratch: &mut Scratch,
) {
    gemm_impl(a, b, ta, tb, out, scratch, true);
}

fn gemm_impl(
    a: Mat<'_>,
    b: Mat<'_>,
    ta: Trans,
    tb: Trans,
    out: &mut MatMut<'_>,
    scratch: &mut Scratch,
    acc_mode: bool,
) {
    let (m, k) = op_shape(&a, ta);
    let (k2, n) = op_shape(&b, tb);
    assert_eq!(k, k2, "gemm inner-dimension mismatch");
    assert_eq!((out.rows, out.cols), (m, n), "gemm output shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !acc_mode {
            for i in 0..m {
                out.row_mut(i).fill(0.0);
            }
        }
        return;
    }
    if reference_mode() {
        reference(a, b, ta, tb, m, n, k, out, scratch, acc_mode);
        return;
    }

    // Pack transposed operands into contiguous row-major op(X) panels.
    let a_buf = (ta == Trans::Yes).then(|| {
        let mut p = scratch.take(m * k);
        pack_transpose(&a, &mut p);
        p
    });
    let b_buf = (tb == Trans::Yes).then(|| {
        let mut p = scratch.take(k * n);
        pack_transpose(&b, &mut p);
        p
    });
    let ap = match &a_buf {
        Some(p) => Panel { data: p, stride: k },
        None => Panel {
            data: a.data,
            stride: a.row_stride,
        },
    };
    let bp = match &b_buf {
        Some(p) => Panel { data: p, stride: n },
        None => Panel {
            data: b.data,
            stride: b.row_stride,
        },
    };
    block_loop(ap, bp, m, n, k, out, acc_mode);
    if let Some(p) = a_buf {
        scratch.give(p);
    }
    if let Some(p) = b_buf {
        scratch.give(p);
    }
}

/// `dst` (cols × rows, row-major) = transpose of `src`. Pure data
/// movement: the packed panel holds exactly the source bits.
fn pack_transpose(src: &Mat<'_>, dst: &mut [f32]) {
    for r in 0..src.rows {
        let row = src.row(r);
        for (c, &v) in row.iter().enumerate() {
            dst[c * src.rows + r] = v;
        }
    }
}

/// Internal contiguous-or-strided panel: row `r` starts at `r * stride`.
#[derive(Clone, Copy)]
struct Panel<'a> {
    data: &'a [f32],
    stride: usize,
}

impl Panel<'_> {
    #[inline]
    fn row(&self, r: usize, len: usize) -> &[f32] {
        &self.data[r * self.stride..r * self.stride + len]
    }
}

/// Rows per register block.
const MR: usize = 4;
/// Columns per register block (one 8 × f32 vector).
const NR: usize = 8;

fn block_loop(
    ap: Panel<'_>,
    bp: Panel<'_>,
    m: usize,
    n: usize,
    k: usize,
    out: &mut MatMut<'_>,
    acc_mode: bool,
) {
    let mut i0 = 0;
    while i0 < m {
        let mr = MR.min(m - i0);
        let mut j0 = 0;
        while j0 < n {
            let nr = NR.min(n - j0);
            if mr == MR && nr == NR {
                kernel_full(ap, bp, i0, j0, k, out, acc_mode);
            } else {
                kernel_edge(ap, bp, i0, j0, mr, nr, k, out, acc_mode);
            }
            j0 += NR;
        }
        i0 += MR;
    }
}

/// The 4×8 micro-kernel: 4 broadcast lanes × one 8-wide f32 vector,
/// manually unrolled so stable rustc auto-vectorizes the `NR`-wide inner
/// loops (`std::simd` variant below under the `simd` feature).
#[inline]
fn kernel_full(
    ap: Panel<'_>,
    bp: Panel<'_>,
    i0: usize,
    j0: usize,
    k: usize,
    out: &mut MatMut<'_>,
    acc_mode: bool,
) {
    let a0 = ap.row(i0, k);
    let a1 = ap.row(i0 + 1, k);
    let a2 = ap.row(i0 + 2, k);
    let a3 = ap.row(i0 + 3, k);

    #[cfg(not(feature = "simd"))]
    let acc = {
        let mut acc = [[0.0f32; NR]; MR];
        for kk in 0..k {
            let brow = bp.row(kk, j0 + NR);
            // kglink-lint: allow(panic-in-lib) — structural: the slice is
            // exactly NR long by construction, so try_into cannot fail.
            let b: &[f32; NR] = brow[j0..j0 + NR].try_into().unwrap();
            let av = [a0[kk], a1[kk], a2[kk], a3[kk]];
            for r in 0..MR {
                for c in 0..NR {
                    acc[r][c] += av[r] * b[c];
                }
            }
        }
        acc
    };

    #[cfg(feature = "simd")]
    let acc = {
        use std::simd::f32x8;
        let mut accv = [f32x8::splat(0.0); MR];
        for kk in 0..k {
            let brow = bp.row(kk, j0 + NR);
            let b = f32x8::from_slice(&brow[j0..j0 + NR]);
            let av = [a0[kk], a1[kk], a2[kk], a3[kk]];
            for r in 0..MR {
                // Separate mul and add (no fused contraction): bit-identical
                // to the scalar path.
                accv[r] += f32x8::splat(av[r]) * b;
            }
        }
        let mut acc = [[0.0f32; NR]; MR];
        for r in 0..MR {
            accv[r].copy_to_slice(&mut acc[r]);
        }
        acc
    };

    for (r, acc_row) in acc.iter().enumerate() {
        let orow = &mut out.row_mut(i0 + r)[j0..j0 + NR];
        if acc_mode {
            for c in 0..NR {
                orow[c] += acc_row[c];
            }
        } else {
            orow.copy_from_slice(acc_row);
        }
    }
}

/// Ragged-tail kernel: an `mr × nr` block (`mr ≤ 4`, `nr ≤ 8`) with the
/// same sequential-`k` accumulation.
#[allow(clippy::needless_range_loop, clippy::too_many_arguments)]
fn kernel_edge(
    ap: Panel<'_>,
    bp: Panel<'_>,
    i0: usize,
    j0: usize,
    mr: usize,
    nr: usize,
    k: usize,
    out: &mut MatMut<'_>,
    acc_mode: bool,
) {
    // Index r.min(mr - 1) pads the row array; lanes r >= mr are never read
    // back.
    let a_rows: [&[f32]; MR] = std::array::from_fn(|r| ap.row(i0 + r.min(mr - 1), k));
    let mut acc = [[0.0f32; NR]; MR];
    for kk in 0..k {
        let brow = bp.row(kk, j0 + nr);
        let b = &brow[j0..j0 + nr];
        for r in 0..mr {
            let av = a_rows[r][kk];
            for (c, &bv) in b.iter().enumerate() {
                acc[r][c] += av * bv;
            }
        }
    }
    for r in 0..mr {
        let orow = &mut out.row_mut(i0 + r)[j0..j0 + nr];
        if acc_mode {
            for c in 0..nr {
                orow[c] += acc[r][c];
            }
        } else {
            orow.copy_from_slice(&acc[r][..nr]);
        }
    }
}

/// Scalar reference path: the canonical textbook kernel — one dot
/// product per output element, summed over `k` ascending from `0.0`.
/// This is the *definition* of the summation order every fast path must
/// reproduce bit for bit, so it doubles as both the parity oracle in the
/// proptests and the measured "scalar baseline" in `exp_bench`. (The
/// pre-kernel `kglink-nn` matmuls used assorted loop orders, but all of
/// them accumulated each element in ascending `k`, so they share these
/// bits on finite data.) Deliberately element-at-a-time: no blocking, no
/// register tiling — each accumulation is a serial dependency chain the
/// compiler cannot vectorize without reassociating float adds.
#[allow(clippy::too_many_arguments)]
fn reference(
    a: Mat<'_>,
    b: Mat<'_>,
    ta: Trans,
    tb: Trans,
    m: usize,
    n: usize,
    k: usize,
    out: &mut MatMut<'_>,
    _scratch: &mut Scratch,
    acc_mode: bool,
) {
    let at = |i: usize, kk: usize| match ta {
        Trans::No => a.row(i)[kk],
        Trans::Yes => a.row(kk)[i],
    };
    let bt = |kk: usize, j: usize| match tb {
        Trans::No => b.row(kk)[j],
        Trans::Yes => b.row(j)[kk],
    };
    for i in 0..m {
        let orow = out.row_mut(i);
        for (j, o) in orow.iter_mut().enumerate().take(n) {
            let mut s = 0.0f32;
            for kk in 0..k {
                s += at(i, kk) * bt(kk, j);
            }
            // `acc_mode` adds the fully-formed product element exactly
            // once, matching the fast path bit for bit.
            if acc_mode {
                *o += s;
            } else {
                *o = s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn mul(
        a: &[f32],
        ar: usize,
        ac: usize,
        b: &[f32],
        br: usize,
        bc: usize,
        ta: Trans,
        tb: Trans,
    ) -> Vec<f32> {
        let am = Mat::new(a, ar, ac);
        let bm = Mat::new(b, br, bc);
        let (m, _) = super::op_shape(&am, ta);
        let (_, n) = super::op_shape(&bm, tb);
        let mut out = vec![0.0f32; m * n];
        let mut s = Scratch::new();
        gemm(am, bm, ta, tb, &mut MatMut::new(&mut out, m, n), &mut s);
        out
    }

    #[test]
    fn hand_example_nn() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [7.0, 8.0, 9.0, 10.0, 11.0, 12.0];
        let c = mul(&a, 2, 3, &b, 3, 2, Trans::No, Trans::No);
        assert_eq!(c, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_flags_agree_with_explicit_transpose() {
        // A (3x5), B (3x4): Aᵀ·B via TN must equal transpose(A)·B via NN.
        let a: Vec<f32> = (0..15).map(|i| (i as f32) * 0.37 - 2.0).collect();
        let b: Vec<f32> = (0..12).map(|i| (i as f32) * -0.21 + 1.0).collect();
        let mut at = vec![0.0f32; 15];
        for r in 0..3 {
            for c in 0..5 {
                at[c * 3 + r] = a[r * 5 + c];
            }
        }
        let tn = mul(&a, 3, 5, &b, 3, 4, Trans::Yes, Trans::No);
        let nn = mul(&at, 5, 3, &b, 3, 4, Trans::No, Trans::No);
        assert_eq!(tn, nn, "bit-identical: packing is pure data movement");
        // A (2x5), B (6x5): A·Bᵀ via NT vs A·transpose(B) via NN.
        let a2: Vec<f32> = (0..10).map(|i| (i as f32) * 0.11 - 0.4).collect();
        let b2: Vec<f32> = (0..30).map(|i| (i as f32) * 0.05 - 0.7).collect();
        let mut b2t = vec![0.0f32; 30];
        for r in 0..6 {
            for c in 0..5 {
                b2t[c * 6 + r] = b2[r * 5 + c];
            }
        }
        let nt = mul(&a2, 2, 5, &b2, 6, 5, Trans::No, Trans::Yes);
        let nn2 = mul(&a2, 2, 5, &b2t, 5, 6, Trans::No, Trans::No);
        assert_eq!(nt, nn2);
    }

    #[test]
    fn fast_equals_reference_bitwise_on_ragged_shapes() {
        let mut s = Scratch::new();
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (4, 8, 8),
            (5, 7, 9),
            (13, 12, 11),
            (3, 48, 17),
            (9, 5, 8),
        ] {
            let a: Vec<f32> = (0..m * k).map(|i| ((i * 37 + 11) % 101) as f32 * 0.013 - 0.6).collect();
            let b: Vec<f32> = (0..k * n).map(|i| ((i * 53 + 7) % 97) as f32 * 0.017 - 0.8).collect();
            for &(ta, tb) in &[
                (Trans::No, Trans::No),
                (Trans::Yes, Trans::No),
                (Trans::No, Trans::Yes),
                (Trans::Yes, Trans::Yes),
            ] {
                let (ar, ac) = if ta == Trans::Yes { (k, m) } else { (m, k) };
                let (br, bc) = if tb == Trans::Yes { (n, k) } else { (k, n) };
                let am = Mat::new(&a[..ar * ac], ar, ac);
                let bm = Mat::new(&b[..br * bc], br, bc);
                let mut fast = vec![0.0f32; m * n];
                let mut refr = vec![0.0f32; m * n];
                set_reference_mode(false);
                gemm(am, bm, ta, tb, &mut MatMut::new(&mut fast, m, n), &mut s);
                set_reference_mode(true);
                gemm(am, bm, ta, tb, &mut MatMut::new(&mut refr, m, n), &mut s);
                set_reference_mode(false);
                assert_eq!(fast, refr, "m={m} k={k} n={n} ta={ta:?} tb={tb:?}");
            }
        }
    }

    #[test]
    fn strided_views_match_dense_copies() {
        // Head slice: columns 4..10 of a 7x16 matrix.
        let full: Vec<f32> = (0..7 * 16).map(|i| (i as f32).sin()).collect();
        let (rows, dh, stride, off) = (7usize, 6usize, 16usize, 4usize);
        let mut dense = vec![0.0f32; rows * dh];
        for r in 0..rows {
            dense[r * dh..(r + 1) * dh].copy_from_slice(&full[r * stride + off..r * stride + off + dh]);
        }
        let strided = Mat::with_stride(&full[off..], rows, dh, stride);
        let densem = Mat::new(&dense, rows, dh);
        let mut s = Scratch::new();
        let mut out_a = vec![0.0f32; rows * rows];
        let mut out_b = vec![0.0f32; rows * rows];
        gemm(strided, strided, Trans::No, Trans::Yes, &mut MatMut::new(&mut out_a, rows, rows), &mut s);
        gemm(densem, densem, Trans::No, Trans::Yes, &mut MatMut::new(&mut out_b, rows, rows), &mut s);
        assert_eq!(out_a, out_b);
        // Strided output: write the product into a column band.
        let mut wide = vec![0.0f32; rows * stride];
        let mut band = MatMut::with_stride(&mut wide[off..], rows, rows.min(dh), stride);
        let mut narrow = vec![0.0f32; rows * rows.min(dh)];
        let small = Mat::new(&dense[..dh * rows.min(dh)], dh, rows.min(dh));
        gemm(strided, small, Trans::No, Trans::No, &mut band, &mut s);
        gemm(
            densem,
            small,
            Trans::No,
            Trans::No,
            &mut MatMut::new(&mut narrow, rows, rows.min(dh)),
            &mut s,
        );
        for r in 0..rows {
            assert_eq!(
                &wide[r * stride + off..r * stride + off + rows.min(dh)],
                &narrow[r * rows.min(dh)..(r + 1) * rows.min(dh)]
            );
        }
    }

    #[test]
    fn gemm_acc_matches_compute_then_add() {
        let a: Vec<f32> = (0..6).map(|i| i as f32 * 0.3 - 1.0).collect();
        let b: Vec<f32> = (0..6).map(|i| i as f32 * -0.2 + 0.5).collect();
        let am = Mat::new(&a, 2, 3);
        let bm = Mat::new(&b, 3, 2);
        let mut s = Scratch::new();
        let mut product = vec![0.0f32; 4];
        gemm(am, bm, Trans::No, Trans::No, &mut MatMut::new(&mut product, 2, 2), &mut s);
        let prior = [0.25f32, -1.5, 3.125, 0.0625];
        let mut acc = prior;
        gemm_acc(am, bm, Trans::No, Trans::No, &mut MatMut::new(&mut acc, 2, 2), &mut s);
        for i in 0..4 {
            assert_eq!(acc[i], prior[i] + product[i]);
        }
    }

    #[test]
    fn zero_inner_dimension_writes_zeros_and_acc_is_noop() {
        let a: [f32; 0] = [];
        let am = Mat::new(&a, 2, 0);
        let bm = Mat::new(&a, 0, 3);
        let mut s = Scratch::new();
        let mut out = [7.0f32; 6];
        gemm(am, bm, Trans::No, Trans::No, &mut MatMut::new(&mut out, 2, 3), &mut s);
        assert_eq!(out, [0.0; 6]);
        let mut out2 = [7.0f32; 6];
        gemm_acc(am, bm, Trans::No, Trans::No, &mut MatMut::new(&mut out2, 2, 3), &mut s);
        assert_eq!(out2, [7.0; 6]);
    }

    #[test]
    #[should_panic(expected = "gemm inner-dimension mismatch")]
    fn shape_mismatch_panics() {
        let a = [0.0f32; 6];
        let mut out = [0.0f32; 4];
        let mut s = Scratch::new();
        gemm(
            Mat::new(&a, 2, 3),
            Mat::new(&a, 2, 3),
            Trans::No,
            Trans::No,
            &mut MatMut::new(&mut out, 2, 2),
            &mut s,
        );
    }

    #[test]
    fn repeated_calls_are_allocation_free_in_scratch_terms() {
        let a: Vec<f32> = (0..12 * 7).map(|i| i as f32 * 0.01).collect();
        let b: Vec<f32> = (0..7 * 9).map(|i| i as f32 * 0.02).collect();
        let mut s = Scratch::new();
        let mut out = vec![0.0f32; 12 * 9];
        // TN packs both panels through scratch.
        let am = Mat::new(&a[..7 * 12], 7, 12);
        let bm = Mat::new(&b, 7, 9);
        gemm(am, bm, Trans::Yes, Trans::No, &mut MatMut::new(&mut out, 12, 9), &mut s);
        let after_warmup = s.fresh_allocs();
        for _ in 0..5 {
            gemm(am, bm, Trans::Yes, Trans::No, &mut MatMut::new(&mut out, 12, 9), &mut s);
        }
        assert_eq!(s.fresh_allocs(), after_warmup, "steady state allocates nothing");
    }
}
