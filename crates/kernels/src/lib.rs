//! Numeric kernels for the KGLink encoder.
//!
//! This crate is the single home for the tensor math that used to live
//! scattered across `kglink-nn` (`Tensor::matmul` / `matmul_tn` /
//! `matmul_nt` and the free functions of `ops.rs`). It exposes:
//!
//! * [`gemm`] / [`gemm_acc`] — one matrix-multiply entry point with
//!   transpose flags, operating on strided [`Mat`] / [`MatMut`] views so
//!   attention heads can be sliced out of a packed `(rows × d_model)`
//!   activation matrix without copying columns;
//! * fused row-wise kernels — [`scaled_softmax_rows`] (the attention
//!   `1/√d_h` scale folded into the softmax), [`layer_norm_rows`], and
//!   [`bias_gelu_rows`] (bias add + GELU in one pass);
//! * [`Scratch`] — a per-thread pool of recycled `f32` buffers so the
//!   steady-state inference path performs zero heap allocations.
//!
//! # Parity policy
//!
//! Every kernel accumulates each output element over `k` **sequentially,
//! in ascending order, starting from 0.0**, and vectorizes only across
//! independent output elements (a 4-row × 8-column register block). Packing
//! transposed operands is pure data movement. No `mul_add` contraction is
//! used. The fast path is therefore **bit-identical** to the naive
//! reference loops (toggle with [`set_reference_mode`]) and to the legacy
//! `kglink-nn` loops, with one documented exception: the legacy kernels
//! skipped `a[i][k] == 0.0` terms, so outputs can differ in the *sign of an
//! exact zero* (and for non-finite operands, which trained networks never
//! produce). Tests assert exact `==` on finite data.

#![deny(deprecated)]
#![cfg_attr(feature = "simd", feature(portable_simd))]

mod fused;
mod gemm;
mod scratch;

pub use fused::{
    add_bias_rows, bias_gelu_rows, gelu, gelu_grad, layer_norm_rows, layer_norm_rows_cached,
    log_softmax, mean, scaled_softmax_rows, softmax, softmax_backward_rows, softmax_rows,
    LAYER_NORM_EPS,
};
pub use gemm::{gemm, gemm_acc, reference_mode, set_reference_mode, Mat, MatMut, Trans};
pub use scratch::{with_thread_scratch, Scratch};
