//! Recycled buffer arenas: zero steady-state allocations for inference.

use std::cell::RefCell;

/// A pool of recycled `Vec<f32>` buffers.
///
/// Callers [`take`](Scratch::take) a buffer of the length they need and
/// [`give`](Scratch::give) it back when done. `take` picks the pooled
/// buffer with the smallest sufficient capacity (best fit), so after a
/// warm-up call with the largest shapes a workload uses, every subsequent
/// `take` is allocation-free — [`fresh_allocs`](Scratch::fresh_allocs)
/// counts the times the pool had to grow, which the steady-state
/// allocation tests pin to zero.
#[derive(Debug, Default)]
pub struct Scratch {
    pool: Vec<Vec<f32>>,
    fresh_allocs: u64,
}

impl Scratch {
    pub const fn new() -> Self {
        Scratch {
            pool: Vec::new(),
            fresh_allocs: 0,
        }
    }

    /// Borrow a zero-filled buffer of exactly `len` elements.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut best: Option<usize> = None;
        for (i, b) in self.pool.iter().enumerate() {
            if b.capacity() >= len
                && best.is_none_or(|j| b.capacity() < self.pool[j].capacity())
            {
                best = Some(i);
            }
        }
        let mut v = match best {
            Some(i) => self.pool.swap_remove(i),
            None => {
                self.fresh_allocs += 1;
                Vec::with_capacity(len)
            }
        };
        v.clear();
        v.resize(len, 0.0);
        v
    }

    /// Return a buffer to the pool for reuse.
    pub fn give(&mut self, v: Vec<f32>) {
        if v.capacity() > 0 {
            self.pool.push(v);
        }
    }

    /// Number of times `take` had to allocate because no pooled buffer was
    /// large enough. Constant across calls ⇒ the workload runs alloc-free.
    pub fn fresh_allocs(&self) -> u64 {
        self.fresh_allocs
    }

    /// Merge another pool into this one (used by the re-entrant
    /// thread-local accessor).
    fn absorb(&mut self, other: Scratch) {
        self.pool.extend(other.pool);
        self.fresh_allocs += other.fresh_allocs;
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = const { RefCell::new(Scratch::new()) };
}

/// Run `f` with this thread's shared [`Scratch`] pool.
///
/// Re-entrant: a nested call temporarily sees an empty pool (so it may
/// allocate) and its buffers are merged back into the thread pool
/// afterwards. Worker threads (e.g. the serving layer's per-worker
/// threads) each get their own pool automatically.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    SCRATCH.with(|cell| {
        let mut s = cell.take();
        let r = f(&mut s);
        s.absorb(cell.take());
        cell.replace(s);
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_pooled_buffers() {
        let mut s = Scratch::new();
        let a = s.take(100);
        s.give(a);
        let b = s.take(64); // fits in the 100-capacity buffer
        assert!(b.capacity() >= 100);
        assert_eq!(b.len(), 64);
        assert_eq!(s.fresh_allocs(), 1, "second take reuses the pool");
    }

    #[test]
    fn take_zeroes_contents() {
        let mut s = Scratch::new();
        let mut a = s.take(8);
        a.fill(7.0);
        s.give(a);
        let b = s.take(8);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let mut s = Scratch::new();
        let big = s.take(1000);
        let small = s.take(10);
        s.give(big);
        s.give(small);
        let c = s.take(8);
        assert!(c.capacity() < 1000, "best fit picks the small buffer");
    }

    #[test]
    fn thread_scratch_is_reentrant() {
        let before = with_thread_scratch(|s| {
            let v = s.take(32);
            s.give(v);
            s.fresh_allocs()
        });
        with_thread_scratch(|_outer| {
            with_thread_scratch(|inner| {
                let v = inner.take(16);
                inner.give(v);
            });
        });
        // The nested pool's buffer was merged back.
        let reused = with_thread_scratch(|s| {
            let v = s.take(16);
            let allocs = s.fresh_allocs();
            s.give(v);
            allocs
        });
        assert!(reused >= before);
    }
}
