//! Fused row-wise kernels: softmax (with the attention scale folded in),
//! layer norm, and bias+GELU, plus the scalar activation helpers.
//!
//! All functions operate on flat row-major `f32` slices; the row width is
//! taken from the parameter slice (`gamma`/`bias`) or passed as `cols`.
//! Each fusion performs exactly the operation sequence of the unfused
//! legacy code (e.g. `t = v * scale` then `exp(t - max)`), so results are
//! bit-identical to computing the steps separately.

/// Layer-norm variance epsilon (matches the original `kglink-nn` value).
pub const LAYER_NORM_EPS: f32 = 1e-5;

/// Numerically stable in-place row-wise softmax.
pub fn softmax_rows(x: &mut [f32], cols: usize) {
    assert!(cols > 0 && x.len().is_multiple_of(cols), "softmax_rows shape");
    for row in x.chunks_exact_mut(cols) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum.max(f32::MIN_POSITIVE);
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// In-place row-wise `softmax(x * scale)` — the attention `1/√d_h` scale
/// folded into the softmax pass. `v * scale` is recomputed with the same
/// multiply in both the max scan and the exp pass, so the result is
/// bit-identical to scaling first and then calling [`softmax_rows`].
pub fn scaled_softmax_rows(x: &mut [f32], cols: usize, scale: f32) {
    assert!(cols > 0 && x.len().is_multiple_of(cols), "scaled_softmax_rows shape");
    for row in x.chunks_exact_mut(cols) {
        let max = row
            .iter()
            .map(|&v| v * scale)
            .fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v * scale - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum.max(f32::MIN_POSITIVE);
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Softmax of a single slice, out of place.
pub fn softmax(x: &[f32]) -> Vec<f32> {
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut out: Vec<f32> = x.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = out.iter().sum();
    let inv = 1.0 / sum.max(f32::MIN_POSITIVE);
    for v in &mut out {
        *v *= inv;
    }
    out
}

/// Log-softmax of a single slice.
pub fn log_softmax(x: &[f32]) -> Vec<f32> {
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = x.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
    x.iter().map(|&v| v - log_sum).collect()
}

/// Backward through a row-wise softmax: given `probs = softmax(z)` and
/// upstream gradient `dp`, computes `dz = probs ⊙ (dp - Σ probs ⊙ dp)` row
/// by row, writing into `dp` in place.
pub fn softmax_backward_rows(probs: &[f32], dp: &mut [f32], cols: usize) {
    assert_eq!(probs.len(), dp.len(), "softmax_backward_rows shape");
    assert!(cols > 0 && dp.len().is_multiple_of(cols), "softmax_backward_rows cols");
    for (p, g) in probs.chunks_exact(cols).zip(dp.chunks_exact_mut(cols)) {
        let dot: f32 = p.iter().zip(g.iter()).map(|(a, b)| a * b).sum();
        for (gi, &pi) in g.iter_mut().zip(p) {
            *gi = pi * (*gi - dot);
        }
    }
}

/// In-place row-wise layer norm with learned gain and bias. The row width
/// is `gamma.len()`.
pub fn layer_norm_rows(x: &mut [f32], gamma: &[f32], beta: &[f32]) {
    let d = gamma.len();
    assert_eq!(beta.len(), d, "layer_norm_rows params");
    assert!(d > 0 && x.len().is_multiple_of(d), "layer_norm_rows shape");
    for row in x.chunks_exact_mut(d) {
        let mean: f32 = row.iter().sum::<f32>() / d as f32;
        let var: f32 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / d as f32;
        let istd = 1.0 / (var + LAYER_NORM_EPS).sqrt();
        for (c, v) in row.iter_mut().enumerate() {
            let h = (*v - mean) * istd;
            *v = h * gamma[c] + beta[c];
        }
    }
}

/// Layer norm that also records what the backward pass needs: writes `y`,
/// the normalized activations `x_hat`, and pushes one inverse-std per row
/// onto `inv_std`.
pub fn layer_norm_rows_cached(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    y: &mut [f32],
    x_hat: &mut [f32],
    inv_std: &mut Vec<f32>,
) {
    let d = gamma.len();
    assert_eq!(beta.len(), d, "layer_norm_rows_cached params");
    assert!(d > 0 && x.len().is_multiple_of(d), "layer_norm_rows_cached shape");
    assert_eq!(x.len(), y.len());
    assert_eq!(x.len(), x_hat.len());
    for ((row, yo), xh) in x
        .chunks_exact(d)
        .zip(y.chunks_exact_mut(d))
        .zip(x_hat.chunks_exact_mut(d))
    {
        let mean: f32 = row.iter().sum::<f32>() / d as f32;
        let var: f32 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / d as f32;
        let istd = 1.0 / (var + LAYER_NORM_EPS).sqrt();
        inv_std.push(istd);
        for c in 0..d {
            let h = (row[c] - mean) * istd;
            xh[c] = h;
            yo[c] = h * gamma[c] + beta[c];
        }
    }
}

/// In-place row-broadcast bias add; the row width is `bias.len()`.
pub fn add_bias_rows(x: &mut [f32], bias: &[f32]) {
    let d = bias.len();
    assert!(d > 0 && x.len().is_multiple_of(d), "add_bias_rows shape");
    for row in x.chunks_exact_mut(d) {
        for (v, &b) in row.iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// Fused bias add + GELU: `x[r][c] = gelu(x[r][c] + bias[c])`. Same op
/// sequence as the unfused add-then-activate, so bit-identical to it.
pub fn bias_gelu_rows(x: &mut [f32], bias: &[f32]) {
    let d = bias.len();
    assert!(d > 0 && x.len().is_multiple_of(d), "bias_gelu_rows shape");
    for row in x.chunks_exact_mut(d) {
        for (v, &b) in row.iter_mut().zip(bias) {
            *v = gelu(*v + b);
        }
    }
}

/// GELU activation (tanh approximation, as in BERT).
#[inline]
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

/// Derivative of [`gelu`].
#[inline]
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044_715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044_715 * x * x)
}

/// Mean of a slice.
#[inline]
pub fn mean(x: &[f32]) -> f32 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f32>() / x.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut x = vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        softmax_rows(&mut x, 3);
        for r in 0..2 {
            let s: f32 = x[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(x[r * 3..(r + 1) * 3].iter().all(|&v| v > 0.0));
        }
        // Ordering preserved.
        assert!(x[2] > x[1]);
    }

    #[test]
    fn scaled_softmax_matches_scale_then_softmax_bitwise() {
        let base = [0.3f32, -1.7, 2.2, 0.0, 5.5, -0.25, 1.125, -3.0];
        let scale = 1.0 / (12.0f32).sqrt();
        let mut fused = base;
        scaled_softmax_rows(&mut fused, 4, scale);
        let mut staged = base;
        for v in &mut staged {
            *v *= scale;
        }
        softmax_rows(&mut staged, 4);
        assert_eq!(fused, staged);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_matches_ln_of_softmax() {
        let x = [0.5f32, -1.0, 2.0];
        let p = softmax(&x);
        let lp = log_softmax(&x);
        for (a, b) in p.iter().zip(&lp) {
            assert!((a.ln() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let z = [0.3f32, -0.7, 1.1, 0.0];
        let upstream = [0.25f32, -0.5, 0.1, 0.9];
        let probs = softmax(&z);
        let mut dp = upstream;
        softmax_backward_rows(&probs, &mut dp, 4);
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut zp = z;
            zp[i] += eps;
            let mut zm = z;
            zm[i] -= eps;
            let f = |zz: &[f32]| -> f32 {
                softmax(zz).iter().zip(&upstream).map(|(p, u)| p * u).sum()
            };
            let num = (f(&zp) - f(&zm)) / (2.0 * eps);
            assert!(
                (num - dp[i]).abs() < 1e-3,
                "dim {i}: numeric {num} vs analytic {}",
                dp[i]
            );
        }
    }

    #[test]
    fn layer_norm_normalizes_with_identity_params() {
        let gamma = [1.0f32; 4];
        let beta = [0.0f32; 4];
        let mut x = vec![1.0, 2.0, 3.0, 4.0, -5.0, 0.0, 5.0, 10.0];
        layer_norm_rows(&mut x, &gamma, &beta);
        for r in 0..2 {
            let row = &x[r * 4..(r + 1) * 4];
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn cached_layer_norm_matches_in_place_variant_bitwise() {
        let gamma = [1.5f32, -0.5, 0.25, 2.0];
        let beta = [0.1f32, 0.0, -0.75, 0.5];
        let x: Vec<f32> = (0..12).map(|i| (i as f32) * 0.7 - 3.0).collect();
        let mut in_place = x.clone();
        layer_norm_rows(&mut in_place, &gamma, &beta);
        let mut y = vec![0.0f32; 12];
        let mut x_hat = vec![0.0f32; 12];
        let mut inv_std = Vec::new();
        layer_norm_rows_cached(&x, &gamma, &beta, &mut y, &mut x_hat, &mut inv_std);
        assert_eq!(y, in_place);
        assert_eq!(inv_std.len(), 3);
        for (h, istd) in x_hat.chunks_exact(4).zip(&inv_std) {
            assert!(istd.is_finite() && *istd > 0.0);
            let m: f32 = h.iter().sum::<f32>() / 4.0;
            assert!(m.abs() < 1e-5, "x_hat rows are normalized");
        }
    }

    #[test]
    fn bias_gelu_matches_add_then_gelu_bitwise() {
        let bias = [0.5f32, -1.0, 0.0];
        let base: Vec<f32> = (0..9).map(|i| (i as f32) * 0.4 - 2.0).collect();
        let mut fused = base.clone();
        bias_gelu_rows(&mut fused, &bias);
        let mut staged = base;
        add_bias_rows(&mut staged, &bias);
        for v in &mut staged {
            *v = gelu(*v);
        }
        assert_eq!(fused, staged);
    }

    #[test]
    fn gelu_known_values() {
        assert!((gelu(0.0)).abs() < 1e-7);
        assert!((gelu(100.0) - 100.0).abs() < 1e-3, "large x ≈ identity");
        assert!(gelu(-100.0).abs() < 1e-3, "very negative x ≈ 0");
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-3.0f32, -1.0, -0.1, 0.0, 0.5, 2.0] {
            let eps = 1e-3;
            let num = (gelu(x + eps) - gelu(x - eps)) / (2.0 * eps);
            assert!(
                (num - gelu_grad(x)).abs() < 1e-3,
                "x={x}: numeric {num} vs analytic {}",
                gelu_grad(x)
            );
        }
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
