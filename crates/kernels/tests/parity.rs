//! Property-based parity gates for the kernel crate.
//!
//! The fast (blocked, 4×8-unrolled) GEMM must be bit-identical to a naive
//! scalar model on finite inputs across ragged shapes and every
//! transpose-flag combination, and every fused kernel must be bit-identical
//! to the unfused composition it replaces. These are the randomized
//! counterparts of the hand-picked cases in the unit tests: shapes are
//! drawn around the 4-row/8-column register-block boundaries where the
//! edge-kernel paths live.

use kglink_kernels::{
    add_bias_rows, bias_gelu_rows, gelu, gemm, gemm_acc, layer_norm_rows,
    layer_norm_rows_cached, scaled_softmax_rows, softmax_rows, Mat, MatMut, Scratch, Trans,
};
use proptest::prelude::*;

/// Deterministic pseudo-random fill in [-2, 2): keeps the proptest input
/// space small (dims + one seed) while still exercising arbitrary data.
fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 4000) as f32 / 1000.0 - 2.0
        })
        .collect()
}

/// Naive scalar GEMM: each output element accumulates over `k` ascending
/// from 0.0 — exactly the summation order the fast path guarantees — so
/// the comparison below can demand bit equality, not tolerance.
#[allow(clippy::too_many_arguments)]
fn naive(
    a: &[f32],
    b: &[f32],
    m: usize,
    n: usize,
    k: usize,
    ta: Trans,
    tb: Trans,
) -> Vec<f32> {
    let at = |i: usize, kk: usize| match ta {
        Trans::No => a[i * k + kk],
        Trans::Yes => a[kk * m + i],
    };
    let bt = |kk: usize, j: usize| match tb {
        Trans::No => b[kk * n + j],
        Trans::Yes => b[j * k + kk],
    };
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += at(i, kk) * bt(kk, j);
            }
            out[i * n + j] = acc;
        }
    }
    out
}

const FLAGS: [(Trans, Trans); 4] = [
    (Trans::No, Trans::No),
    (Trans::No, Trans::Yes),
    (Trans::Yes, Trans::No),
    (Trans::Yes, Trans::Yes),
];

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gemm_matches_naive_scalar_bitwise(
        m in 0usize..13,
        n in 0usize..13,
        k in 0usize..13,
        seed in 0u64..(1 << 48),
    ) {
        let mut scratch = Scratch::new();
        for (ta, tb) in FLAGS {
            let a = fill(seed ^ 0xA, m * k);
            let b = fill(seed ^ 0xB, k * n);
            let (ar, ac) = match ta { Trans::No => (m, k), Trans::Yes => (k, m) };
            let (br, bc) = match tb { Trans::No => (k, n), Trans::Yes => (n, k) };
            let mut out = vec![0.0f32; m * n];
            gemm(
                Mat::new(&a, ar, ac),
                Mat::new(&b, br, bc),
                ta,
                tb,
                &mut MatMut::new(&mut out, m, n),
                &mut scratch,
            );
            prop_assert_eq!(bits(&out), bits(&naive(&a, &b, m, n, k, ta, tb)));
        }
    }

    #[test]
    fn gemm_acc_adds_the_whole_product_once(
        m in 0usize..10,
        n in 0usize..10,
        k in 0usize..10,
        seed in 0u64..(1 << 48),
    ) {
        let mut scratch = Scratch::new();
        let a = fill(seed ^ 0xC, m * k);
        let b = fill(seed ^ 0xD, k * n);
        let pre = fill(seed ^ 0xE, m * n);
        let mut out = pre.clone();
        gemm_acc(
            Mat::new(&a, m, k),
            Mat::new(&b, k, n),
            Trans::No,
            Trans::No,
            &mut MatMut::new(&mut out, m, n),
            &mut scratch,
        );
        // The contract is materialize-then-add: the block sum accumulates
        // from zero and lands on `out` in a single `+=` per element.
        let product = naive(&a, &b, m, n, k, Trans::No, Trans::No);
        let expected: Vec<f32> = pre.iter().zip(&product).map(|(p, q)| p + q).collect();
        prop_assert_eq!(bits(&out), bits(&expected));
    }

    #[test]
    fn strided_view_gemm_matches_dense_copy(
        rows in 1usize..9,
        dh in 1usize..9,
        pad in 0usize..5,
        seed in 0u64..(1 << 48),
    ) {
        let mut scratch = Scratch::new();
        let stride = dh + pad;
        let wide = fill(seed ^ 0xF, rows * stride);
        let dense: Vec<f32> = (0..rows)
            .flat_map(|r| wide[r * stride..r * stride + dh].to_vec())
            .collect();
        let mut out_view = vec![0.0f32; rows * rows];
        let mut out_dense = vec![0.0f32; rows * rows];
        gemm(
            Mat::with_stride(&wide, rows, dh, stride),
            Mat::with_stride(&wide, rows, dh, stride),
            Trans::No,
            Trans::Yes,
            &mut MatMut::new(&mut out_view, rows, rows),
            &mut scratch,
        );
        gemm(
            Mat::new(&dense, rows, dh),
            Mat::new(&dense, rows, dh),
            Trans::No,
            Trans::Yes,
            &mut MatMut::new(&mut out_dense, rows, rows),
            &mut scratch,
        );
        prop_assert_eq!(bits(&out_view), bits(&out_dense));
    }

    #[test]
    fn scaled_softmax_matches_scale_then_softmax(
        rows in 1usize..6,
        cols in 1usize..17,
        seed in 0u64..(1 << 48),
        scale_raw in 1usize..40,
    ) {
        let scale = scale_raw as f32 / 8.0;
        let x = fill(seed ^ 0x10, rows * cols);
        let mut fused = x.clone();
        scaled_softmax_rows(&mut fused, cols, scale);
        let mut unfused = x;
        for v in &mut unfused {
            *v *= scale;
        }
        softmax_rows(&mut unfused, cols);
        prop_assert_eq!(bits(&fused), bits(&unfused));
    }

    #[test]
    fn cached_layer_norm_matches_in_place(
        rows in 1usize..6,
        cols in 1usize..17,
        seed in 0u64..(1 << 48),
    ) {
        let x = fill(seed ^ 0x11, rows * cols);
        let gamma = fill(seed ^ 0x12, cols);
        let beta = fill(seed ^ 0x13, cols);
        let mut in_place = x.clone();
        layer_norm_rows(&mut in_place, &gamma, &beta);
        let mut y = vec![0.0f32; rows * cols];
        let mut x_hat = vec![0.0f32; rows * cols];
        let mut inv_std = Vec::new();
        layer_norm_rows_cached(&x, &gamma, &beta, &mut y, &mut x_hat, &mut inv_std);
        prop_assert_eq!(bits(&y), bits(&in_place));
        prop_assert_eq!(inv_std.len(), rows);
    }

    #[test]
    fn bias_gelu_matches_add_bias_then_gelu(
        rows in 1usize..6,
        cols in 1usize..17,
        seed in 0u64..(1 << 48),
    ) {
        let x = fill(seed ^ 0x14, rows * cols);
        let bias = fill(seed ^ 0x15, cols);
        let mut fused = x.clone();
        bias_gelu_rows(&mut fused, &bias);
        let mut unfused = x;
        add_bias_rows(&mut unfused, &bias);
        for v in &mut unfused {
            *v = gelu(*v);
        }
        prop_assert_eq!(bits(&fused), bits(&unfused));
    }
}
