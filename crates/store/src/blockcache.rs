//! A byte-budgeted cache of decoded segment blocks.
//!
//! Disk reads come in blocks (entity-shard data blocks, BM25 posting
//! lists); the hot set is far smaller than the segment files, and the whole
//! point of the store is that the *cold* set never has to be resident. The
//! cache reuses [`kglink_search::Lru`] for O(1) recency bookkeeping but
//! bounds **bytes, not entries** — a single giant posting list must not be
//! able to mean "128 MiB cached" just because the entry count allows it.
//!
//! Keys are `(file, block)` ordinal pairs assigned by the owner (shard
//! index + block index for entity segments; a reserved file id + term
//! ordinal for posting lists). Values are `Arc<Vec<u8>>` so a hit hands
//! out a cheap clone and eviction cannot invalidate bytes a reader is
//! still decoding.
//!
//! The lock is never held across a disk read: `get_or_try_load` drops the
//! shard lock, runs the loader, then re-locks to insert. Two threads may
//! race to load the same block; both loads are correct (segments are
//! immutable once published) and the second insert simply replaces the
//! first, so the race costs one redundant read, never wrong bytes.

use crate::error::StoreError;
use kglink_search::Lru;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Cache key: `(file ordinal, block ordinal)` as assigned by the owner.
pub type BlockKey = (u32, u32);

#[derive(Debug)]
struct Shard {
    lru: Lru<BlockKey, Arc<Vec<u8>>>,
    /// Bytes currently held by this shard's values.
    bytes: usize,
}

/// Point-in-time counters of a [`BlockCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Lookups answered without touching the loader.
    pub hits: u64,
    /// Lookups that ran the loader.
    pub misses: u64,
    /// Blocks evicted to stay under the byte budget.
    pub evictions: u64,
    /// Bytes resident across all shards right now.
    pub resident_bytes: usize,
}

/// A sharded, byte-budgeted LRU over immutable decoded blocks.
#[derive(Debug)]
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard byte budget (total budget / shard count).
    shard_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl BlockCache {
    /// A cache holding at most `budget_bytes` of block payload across
    /// `shards` independently locked shards. Budgets smaller than one block
    /// still work: the offending block is cached alone, then evicted by the
    /// next insert, so the budget is honoured between calls.
    pub fn new(budget_bytes: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        // Entry capacity is a backstop only; the byte budget is the real
        // bound. Blocks are ≥ ~1 KiB in practice, so budget/1024 entries
        // per shard can never be the binding constraint.
        let per_shard_entries = (budget_bytes / shards / 1024).max(16);
        BlockCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        lru: Lru::new(per_shard_entries),
                        bytes: 0,
                    })
                })
                .collect(),
            shard_budget: (budget_bytes / shards).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: BlockKey) -> &Mutex<Shard> {
        // Cheap deterministic spread; keys are small dense ordinals, so a
        // multiplicative mix avoids putting all of one file in one shard.
        let h = (key.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (key.1 as u64);
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Fetch the block for `key`, running `load` on a miss. The shard lock
    /// is not held while `load` runs.
    pub fn get_or_try_load<F>(&self, key: BlockKey, load: F) -> Result<Arc<Vec<u8>>, StoreError>
    where
        F: FnOnce() -> Result<Vec<u8>, StoreError>,
    {
        {
            let mut shard = self.shard(key).lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(block) = shard.lru.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(block));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let block = Arc::new(load()?);
        let mut shard = self.shard(key).lock().unwrap_or_else(PoisonError::into_inner);
        // A racing loader may have inserted while we read; replacing is
        // harmless (immutable bytes) but the byte accounting must see it.
        if let Some(old) = shard.lru.peek(&key) {
            shard.bytes -= old.len();
        }
        shard.bytes += block.len();
        if let Some((_, evicted)) = shard.lru.put(key, Arc::clone(&block)) {
            shard.bytes -= evicted.len();
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        while shard.bytes > self.shard_budget && shard.lru.len() > 1 {
            if let Some((_, evicted)) = shard.lru.pop_lru() {
                shard.bytes -= evicted.len();
                self.evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                break;
            }
        }
        Ok(block)
    }

    /// Current counters across all shards.
    pub fn stats(&self) -> BlockCacheStats {
        let resident = self
            .shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).bytes)
            .sum();
        BlockCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: resident,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_miss_returns_same_bytes() {
        let cache = BlockCache::new(1 << 20, 4);
        let a = cache.get_or_try_load((0, 1), || Ok(vec![1, 2, 3])).unwrap();
        let b = cache
            .get_or_try_load((0, 1), || panic!("must not reload a cached block"))
            .unwrap();
        assert_eq!(a, b);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.resident_bytes, 3);
    }

    #[test]
    fn loader_errors_pass_through_and_are_not_cached() {
        let cache = BlockCache::new(1 << 20, 1);
        let err = cache
            .get_or_try_load((7, 7), || Err(StoreError::Truncated))
            .unwrap_err();
        assert_eq!(err, StoreError::Truncated);
        // The failed load left nothing behind; a retry runs the loader again.
        let ok = cache.get_or_try_load((7, 7), || Ok(vec![9])).unwrap();
        assert_eq!(*ok, vec![9]);
    }

    #[test]
    fn byte_budget_evicts_least_recent() {
        // One shard, 100-byte budget, 40-byte blocks: the third insert must
        // evict the least recently used first block.
        let cache = BlockCache::new(100, 1);
        cache.get_or_try_load((0, 0), || Ok(vec![0u8; 40])).unwrap();
        cache.get_or_try_load((0, 1), || Ok(vec![1u8; 40])).unwrap();
        cache.get_or_try_load((0, 2), || Ok(vec![2u8; 40])).unwrap();
        let s = cache.stats();
        assert!(s.resident_bytes <= 100, "resident {} over budget", s.resident_bytes);
        assert!(s.evictions >= 1);
        // Block 2 (most recent) is still a hit.
        cache
            .get_or_try_load((0, 2), || panic!("block 2 should be resident"))
            .unwrap();
        // Block 0 was evicted: the loader runs again.
        let mut reloaded = false;
        cache
            .get_or_try_load((0, 0), || {
                reloaded = true;
                Ok(vec![0u8; 40])
            })
            .unwrap();
        assert!(reloaded);
    }

    #[test]
    fn oversized_block_is_served_then_bounded() {
        let cache = BlockCache::new(64, 1);
        let big = cache.get_or_try_load((0, 0), || Ok(vec![7u8; 500])).unwrap();
        assert_eq!(big.len(), 500);
        // The next insert pushes the oversized block out.
        cache.get_or_try_load((0, 1), || Ok(vec![1u8; 32])).unwrap();
        assert!(cache.stats().resident_bytes <= 64);
    }
}
