//! # kglink-store — disk-backed knowledge-graph and retrieval segments
//!
//! The in-memory [`kglink_kg::KnowledgeGraph`] and
//! `kglink_search::InvertedIndex` top out around the low millions of
//! entities before resident memory becomes the binding constraint. This
//! crate scales the world 100–1000× by moving both structures to disk
//! behind the same traits the pipeline already consumes:
//!
//! - **Entity shards** (`entities-NNNNN.kges`, [`segment`]): fixed-range
//!   sharding by entity id, length-prefixed records in CRC'd blocks, a
//!   binary-searchable block index in the file tail. [`DiskGraph`]
//!   implements [`kglink_kg::GraphAccess`] over them through a bounded
//!   [`BlockCache`].
//! - **BM25 segment** (`index.kgbm`, [`bm25seg`]): delta-varint
//!   compressed postings with per-block max-score metadata for rank-safe
//!   block-max top-k skipping, built in bounded memory via spill-and-merge
//!   runs. [`DiskBackend`] implements `kglink_search::KgBackend` over it
//!   and is *bit-identical* to `InvertedIndex::search` — same idf, same
//!   f32 summation order, same tie-breaks.
//! - **Manifest** (`world.kgsm`, [`manifest`]): written last through the
//!   atomic temp → fsync → rename writer, it is the directory-level commit
//!   point. A crashed build leaves no manifest and the world does not
//!   open.
//!
//! Every decoder returns a typed [`StoreError`] — corruption, truncation,
//! foreign magic and future versions are all distinguishable and none of
//! the library paths panic on bad bytes. The service facades
//! ([`GraphAccess`](kglink_kg::GraphAccess) /
//! [`KgBackend`](kglink_search::KgBackend)) degrade to neutral values and
//! count errors instead of propagating, so one corrupt block cannot take
//! down an annotation service; the `try_*` twins expose the typed errors
//! for tools that want them.

#![deny(deprecated)]

pub mod atomic;
pub mod backend;
pub mod blockcache;
pub mod bm25seg;
pub mod error;
pub mod manifest;
pub mod segment;
pub mod varint;
pub mod world;

pub use atomic::{atomic_write_segment, AtomicFile};
pub use backend::{
    BackendStats, DiskBackend, DiskGraph, DEFAULT_BM25_CACHE_BYTES, DEFAULT_GRAPH_CACHE_BYTES,
};
pub use blockcache::{BlockCache, BlockCacheStats};
pub use bm25seg::{Bm25SegBuilder, Bm25Segment, QueryStats, BM25_FILE, DEFAULT_SPILL_POSTINGS};
pub use error::StoreError;
pub use manifest::{Bm25Stats, Manifest, MANIFEST_FILE};
pub use segment::{shard_file_name, EntityRecord, Segment, SegmentWriter};
pub use world::{write_graph, DiskWorld, WorldWriter, WorldWriterConfig};
