//! `KGSM` world manifest: the commit point of a disk world.
//!
//! A world directory holds N entity shards, one BM25 segment, and this one
//! small file. The manifest is written **last**, through the atomic
//! writer, so its existence certifies that every other segment it names
//! was fully written and fsync'd first: a build that crashes half-way
//! leaves shards but no manifest, and `DiskWorld::open` fails typed
//! instead of serving a partial world. This is the same
//! "rename-is-the-commit" argument the checkpoint store makes, lifted
//! from one file to a directory.
//!
//! Being small, the manifest uses the full `KGCK`-style frame (magic,
//! version, whole-payload CRC, length) rather than per-block CRCs:
//!
//! ```text
//! magic "KGSM" | u32 version | u32 crc32(payload) | u64 payload_len | payload
//! ```
//!
//! The payload carries everything a reader needs before touching a shard:
//! entity count, sharding geometry, the predicate vocabulary in id order,
//! the `instance of` / `subclass of` predicate ids, and the BM25 corpus
//! statistics (doc count, total length, k1/b) that scoring needs and that
//! must match what the index was built with.

use crate::atomic::atomic_write_segment;
use crate::error::StoreError;
use crate::varint::{crc32, get_count, get_str, get_uv, put_str, put_uv};
use kglink_kg::PredicateId;
use std::path::Path;

pub(crate) const MAGIC: &[u8; 4] = b"KGSM";
pub(crate) const VERSION: u32 = 1;
const FRAME_LEN: usize = 20;

/// File name of the manifest inside a world directory.
pub const MANIFEST_FILE: &str = "world.kgsm";

/// Corpus statistics the BM25 segment was built with.
#[derive(Debug, Clone, PartialEq)]
pub struct Bm25Stats {
    /// Number of indexed documents (label + alias texts, not entities).
    pub n_docs: u64,
    /// Sum of document lengths in tokens.
    pub total_len: u64,
    /// Okapi k1 parameter.
    pub k1: f32,
    /// Okapi b parameter.
    pub b: f32,
}

/// The decoded world manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Total entities across all shards.
    pub n_entities: u64,
    /// Entities per shard (the last shard may hold fewer).
    pub per_shard: u32,
    /// Number of entity shards.
    pub n_shards: u32,
    /// Predicate names in id order (id `i` ↔ `predicates[i]`).
    pub predicates: Vec<String>,
    /// Predicate id of `instance of`, if the vocabulary registered it.
    pub instance_of: Option<PredicateId>,
    /// Predicate id of `subclass of`, if registered.
    pub subclass_of: Option<PredicateId>,
    /// BM25 corpus statistics.
    pub bm25: Bm25Stats,
}

fn put_opt_pred(buf: &mut Vec<u8>, p: Option<PredicateId>) {
    match p {
        Some(id) => {
            buf.push(1);
            put_uv(buf, u64::from(id.0));
        }
        None => buf.push(0),
    }
}

fn get_opt_pred(bytes: &[u8], pos: &mut usize) -> Result<Option<PredicateId>, StoreError> {
    let &flag = bytes.get(*pos).ok_or(StoreError::Truncated)?;
    *pos += 1;
    match flag {
        0 => Ok(None),
        1 => {
            let v = get_uv(bytes, pos)?;
            let id = u16::try_from(v)
                .map_err(|_| StoreError::Corrupt(format!("predicate id {v} overflows u16")))?;
            Ok(Some(PredicateId(id)))
        }
        other => Err(StoreError::Corrupt(format!(
            "option flag must be 0 or 1, found {other}"
        ))),
    }
}

impl Manifest {
    fn encode_payload(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&self.n_entities.to_le_bytes());
        buf.extend_from_slice(&self.per_shard.to_le_bytes());
        buf.extend_from_slice(&self.n_shards.to_le_bytes());
        put_uv(&mut buf, self.predicates.len() as u64);
        for p in &self.predicates {
            put_str(&mut buf, p);
        }
        put_opt_pred(&mut buf, self.instance_of);
        put_opt_pred(&mut buf, self.subclass_of);
        buf.extend_from_slice(&self.bm25.n_docs.to_le_bytes());
        buf.extend_from_slice(&self.bm25.total_len.to_le_bytes());
        buf.extend_from_slice(&self.bm25.k1.to_le_bytes());
        buf.extend_from_slice(&self.bm25.b.to_le_bytes());
        buf
    }

    fn decode_payload(bytes: &[u8]) -> Result<Self, StoreError> {
        fn take<const N: usize>(bytes: &[u8], pos: &mut usize) -> Result<[u8; N], StoreError> {
            let end = pos.checked_add(N).ok_or(StoreError::Truncated)?;
            let slice = bytes.get(*pos..end).ok_or(StoreError::Truncated)?;
            *pos = end;
            let mut out = [0u8; N];
            out.copy_from_slice(slice);
            Ok(out)
        }
        let mut pos = 0;
        let n_entities = u64::from_le_bytes(take(bytes, &mut pos)?);
        let per_shard = u32::from_le_bytes(take(bytes, &mut pos)?);
        let n_shards = u32::from_le_bytes(take(bytes, &mut pos)?);
        if per_shard == 0 {
            return Err(StoreError::Corrupt("per_shard must be positive".into()));
        }
        // n_shards must cover exactly n_entities.
        let expect_shards = n_entities.div_ceil(u64::from(per_shard));
        if u64::from(n_shards) != expect_shards {
            return Err(StoreError::Corrupt(format!(
                "{n_entities} entities at {per_shard}/shard needs {expect_shards} shards, manifest says {n_shards}"
            )));
        }
        // Predicate ids are u16, bounding the vocabulary.
        let n_preds = get_count(bytes, &mut pos, usize::from(u16::MAX))?;
        let mut predicates = Vec::with_capacity(n_preds);
        for _ in 0..n_preds {
            predicates.push(get_str(bytes, &mut pos)?);
        }
        let instance_of = get_opt_pred(bytes, &mut pos)?;
        let subclass_of = get_opt_pred(bytes, &mut pos)?;
        for p in [instance_of, subclass_of].into_iter().flatten() {
            if usize::from(p.0) >= predicates.len() {
                return Err(StoreError::Corrupt(format!(
                    "special predicate {p} outside the {}-entry vocabulary",
                    predicates.len()
                )));
            }
        }
        let n_docs = u64::from_le_bytes(take(bytes, &mut pos)?);
        let total_len = u64::from_le_bytes(take(bytes, &mut pos)?);
        let k1 = f32::from_le_bytes(take(bytes, &mut pos)?);
        let b = f32::from_le_bytes(take(bytes, &mut pos)?);
        if !(k1.is_finite() && b.is_finite()) {
            return Err(StoreError::Corrupt("BM25 parameters must be finite".into()));
        }
        if pos != bytes.len() {
            return Err(StoreError::Corrupt(format!(
                "{} trailing bytes after manifest payload",
                bytes.len() - pos
            )));
        }
        Ok(Manifest {
            n_entities,
            per_shard,
            n_shards,
            predicates,
            instance_of,
            subclass_of,
            bm25: Bm25Stats {
                n_docs,
                total_len,
                k1,
                b,
            },
        })
    }

    /// Atomically write the manifest — the world's commit point.
    pub fn write(&self, dir: &Path) -> Result<(), StoreError> {
        let payload = self.encode_payload();
        let mut frame = Vec::with_capacity(FRAME_LEN + payload.len());
        frame.extend_from_slice(MAGIC);
        frame.extend_from_slice(&VERSION.to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        frame.extend_from_slice(&payload);
        atomic_write_segment(&dir.join(MANIFEST_FILE), &frame)
    }

    /// Read and validate the manifest of a world directory.
    pub fn read(dir: &Path) -> Result<Self, StoreError> {
        let bytes = std::fs::read(dir.join(MANIFEST_FILE))?;
        if bytes.len() < FRAME_LEN {
            return Err(StoreError::Truncated);
        }
        if &bytes[0..4] != MAGIC {
            return Err(StoreError::BadMagic { expected: "KGSM" });
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != VERSION {
            return Err(StoreError::WrongVersion {
                found: version,
                expected: VERSION,
            });
        }
        let crc = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        let len = u64::from_le_bytes([
            bytes[12], bytes[13], bytes[14], bytes[15], bytes[16], bytes[17], bytes[18],
            bytes[19],
        ]);
        let payload = bytes
            .get(FRAME_LEN..)
            .filter(|p| p.len() as u64 == len)
            .ok_or(StoreError::Truncated)?;
        let found = crc32(payload);
        if found != crc {
            return Err(StoreError::CrcMismatch {
                expected: crc,
                found,
            });
        }
        Self::decode_payload(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "kglink-store-manifest-{tag}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample() -> Manifest {
        Manifest {
            n_entities: 1_000_003,
            per_shard: 65_536,
            n_shards: 16,
            predicates: vec!["instance of".into(), "performer".into()],
            instance_of: Some(PredicateId(0)),
            subclass_of: None,
            bm25: Bm25Stats {
                n_docs: 1_400_000,
                total_len: 4_200_000,
                k1: 1.2,
                b: 0.75,
            },
        }
    }

    #[test]
    fn manifest_round_trips() {
        let dir = tmpdir("roundtrip");
        let m = sample();
        m.write(&dir).unwrap();
        assert_eq!(Manifest::read(&dir).unwrap(), m);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_not_a_world() {
        let dir = tmpdir("missing");
        assert!(matches!(Manifest::read(&dir), Err(StoreError::Io(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_classes_are_distinguished() {
        let dir = tmpdir("corrupt");
        sample().write(&dir).unwrap();
        let path = dir.join(MANIFEST_FILE);
        let orig = std::fs::read(&path).unwrap();

        let mut bad = orig.clone();
        bad[2] = b'!';
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            Manifest::read(&dir),
            Err(StoreError::BadMagic { expected: "KGSM" })
        ));

        let mut bad = orig.clone();
        bad[4] = 42;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            Manifest::read(&dir),
            Err(StoreError::WrongVersion { found: 42, expected: VERSION })
        ));

        std::fs::write(&path, &orig[..orig.len() - 3]).unwrap();
        assert!(matches!(Manifest::read(&dir), Err(StoreError::Truncated)));

        let mut bad = orig.clone();
        let n = bad.len();
        bad[n - 1] ^= 0x80;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            Manifest::read(&dir),
            Err(StoreError::CrcMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inconsistent_geometry_is_corrupt() {
        let dir = tmpdir("geometry");
        let mut m = sample();
        m.n_shards = 2; // 1M entities at 65536/shard needs 16.
        m.write(&dir).unwrap();
        assert!(matches!(Manifest::read(&dir), Err(StoreError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
