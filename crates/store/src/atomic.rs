//! The store's one sanctioned segment writer: temp → fsync → rename.
//!
//! Same protocol as `kglink_nn::checkpoint::Checkpointer` (the module docs
//! there carry the full crash argument): bytes go to a temporary sibling,
//! are fsync'd, and only then renamed over the destination. On POSIX a
//! rename within one directory is atomic, so a crash at any point leaves
//! either the previous complete segment or the new complete segment, never
//! a torn hybrid. The `segment-atomicity` lint rule keeps every other
//! `fs::write`/`File::create` of segment data out of the workspace.
//!
//! Two shapes:
//!
//! * [`atomic_write_segment`] — buffer in, file out. For small segments
//!   (the manifest) that fit comfortably in memory.
//! * [`AtomicFile`] — a streaming handle for multi-megabyte segments
//!   (entity shards, the BM25 index) that are produced incrementally and
//!   must not be buffered whole. Supports the seek-back header patch:
//!   section offsets and CRCs are only known once the body is written.
//!
//! Dropping an [`AtomicFile`] without calling [`AtomicFile::commit`]
//! removes the temporary file: an aborted build never leaves debris that a
//! later open could mistake for a segment.

use crate::error::StoreError;
use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Extension appended to the destination name while writing. Distinct from
/// the checkpoint writer's `.kgck.tmp` so concurrent trainers and store
/// builds in one directory can never collide.
const TMP_SUFFIX: &str = "kgst.tmp";

/// Atomically replace `path` with `bytes` (temp → fsync → rename).
pub fn atomic_write_segment(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let mut f = AtomicFile::create(path)?;
    f.write_all(bytes)?;
    f.commit()
}

/// A streaming segment writer that only publishes complete files.
#[derive(Debug)]
pub struct AtomicFile {
    /// `Some` until commit/abort; buffered for throughput on varint-sized
    /// writes.
    writer: Option<BufWriter<File>>,
    tmp: PathBuf,
    dest: PathBuf,
    written: u64,
}

impl AtomicFile {
    /// Open a temporary sibling of `path` for writing. Parent directories
    /// are created as needed.
    pub fn create(path: &Path) -> Result<Self, StoreError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let tmp = path.with_extension(TMP_SUFFIX);
        // This *is* the sanctioned atomic writer: the create targets the
        // temporary sibling only, and the bytes become a segment solely at
        // the fsync+rename in `commit`.
        let file = File::create(&tmp)?;
        Ok(AtomicFile {
            writer: Some(BufWriter::new(file)),
            tmp,
            dest: path.to_path_buf(),
            written: 0,
        })
    }

    /// Bytes written so far — section offsets are derived from this, so it
    /// also serves as the current file position during sequential writes.
    pub fn position(&self) -> u64 {
        self.written
    }

    /// Append bytes at the current position.
    pub fn write_all(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        let w = self.writer.as_mut().ok_or_else(closed)?;
        w.write_all(bytes)?;
        self.written += bytes.len() as u64;
        Ok(())
    }

    /// Overwrite `bytes` at absolute `offset` (the header patch), then
    /// return to the end of the file. Does not extend the file.
    pub fn patch(&mut self, offset: u64, bytes: &[u8]) -> Result<(), StoreError> {
        if offset + bytes.len() as u64 > self.written {
            return Err(StoreError::Corrupt(format!(
                "patch at {offset}+{} runs past the {} bytes written",
                bytes.len(),
                self.written
            )));
        }
        let w = self.writer.as_mut().ok_or_else(closed)?;
        w.flush()?;
        let f = w.get_mut();
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(bytes)?;
        f.seek(SeekFrom::End(0))?;
        Ok(())
    }

    /// Flush, fsync, and atomically rename over the destination.
    pub fn commit(mut self) -> Result<(), StoreError> {
        let w = self.writer.take().ok_or_else(closed)?;
        let file = w.into_inner().map_err(|e| StoreError::Io(e.to_string()))?;
        // Data must be durable *before* the rename publishes it.
        file.sync_all()?;
        drop(file);
        std::fs::rename(&self.tmp, &self.dest)?;
        Ok(())
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        if self.writer.take().is_some() {
            // Uncommitted: remove the temporary so an aborted build leaves
            // nothing behind. Failure to remove is not actionable here.
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

fn closed() -> StoreError {
    StoreError::Io("atomic file already committed".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("kglink-store-atomic-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn whole_buffer_write_replaces_atomically() {
        let dir = tmpdir("whole");
        let path = dir.join("m.kgsm");
        atomic_write_segment(&path, b"first").unwrap();
        atomic_write_segment(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(
            !path.with_extension(TMP_SUFFIX).exists(),
            "temp file must not survive a successful commit"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_patch_fixes_the_header() {
        let dir = tmpdir("patch");
        let path = dir.join("s.kges");
        let mut f = AtomicFile::create(&path).unwrap();
        f.write_all(&[0u8; 8]).unwrap(); // header placeholder
        f.write_all(b"payload").unwrap();
        let len = f.position();
        f.patch(0, &len.to_le_bytes()).unwrap();
        f.commit().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(u64::from_le_bytes(bytes[..8].try_into().unwrap()), 15);
        assert_eq!(&bytes[8..], b"payload");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dropped_without_commit_leaves_no_debris() {
        let dir = tmpdir("abort");
        let path = dir.join("s.kges");
        {
            let mut f = AtomicFile::create(&path).unwrap();
            f.write_all(b"half a segment").unwrap();
        }
        assert!(!path.exists());
        assert!(!path.with_extension(TMP_SUFFIX).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn patch_past_end_is_rejected() {
        let dir = tmpdir("bound");
        let mut f = AtomicFile::create(&dir.join("x.kges")).unwrap();
        f.write_all(b"abc").unwrap();
        assert!(matches!(f.patch(2, b"zz"), Err(StoreError::Corrupt(_))));
        drop(f);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
