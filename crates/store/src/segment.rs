//! `KGES` entity-shard segments: the on-disk record format for entities
//! and their adjacency.
//!
//! One shard holds a contiguous id range of entity records. The layout is
//! the checkpoint (`KGCK`) idiom adapted for random access — magic, then
//! version, then CRC-guarded contents — with the single whole-payload CRC
//! replaced by *per-block* CRCs so a reader can verify exactly the bytes
//! it touches instead of hashing a multi-gigabyte file on open:
//!
//! ```text
//! offset 0, little-endian
//! ┌──────────────────────────────────────────────────────────────┐
//! │ magic "KGES" │ u32 version │ u32 index_crc                   │
//! │ u64 index_off │ u64 index_len                                │
//! │ u32 shard_index │ u32 first_id │ u32 n_records │ u32 n_blocks│  44-byte header
//! ├──────────────────────────────────────────────────────────────┤
//! │ data blocks: records, each `u32 len | payload`               │
//! ├──────────────────────────────────────────────────────────────┤
//! │ block index: per block                                       │
//! │   `u64 off | u32 len | u32 crc | u32 first_rec`  (20 bytes)  │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Version is checked before any CRC (a different version implies a
//! different layout, so hashing it is meaningless); the index CRC is
//! checked once at open; each block's CRC is checked when the block first
//! enters the block cache. Blocks close at [`MAX_BLOCK_BYTES`] *or*
//! [`MAX_BLOCK_RECORDS`], whichever comes first — variable records per
//! block means a handful of giant records (hub entities with huge edge
//! lists) cannot force every lookup in their neighborhood to read
//! megabytes.
//!
//! A record payload is fully self-describing:
//!
//! ```text
//! str label | varint n_aliases + strs | str description
//! u8 schema | u8 is_type
//! varint n_out + (varint predicate, varint target)*
//! varint n_in  + (varint predicate, varint target)*
//! ```
//!
//! Strings lead so the hot partial decodes (`label`, `schema`) never touch
//! the edge lists.

use crate::atomic::AtomicFile;
use crate::blockcache::BlockCache;
use crate::error::StoreError;
use crate::varint::{
    crc32, get_count, get_str, get_uv32, put_str, put_uv, skip_str,
};
use kglink_kg::{Edge, Entity, EntityId, NeSchema, PredicateId};
use std::fs::File;
use std::os::unix::fs::FileExt;
use std::path::Path;

pub(crate) const MAGIC: &[u8; 4] = b"KGES";
pub(crate) const VERSION: u32 = 1;
pub(crate) const HEADER_LEN: usize = 44;
const INDEX_ENTRY_LEN: usize = 20;

/// A data block closes once it holds this many payload bytes…
pub const MAX_BLOCK_BYTES: usize = 256 * 1024;
/// …or this many records, whichever comes first.
pub const MAX_BLOCK_RECORDS: u32 = 256;

/// File name of shard `i` inside a world directory.
pub fn shard_file_name(shard: u32) -> String {
    format!("entities-{shard:05}.kges")
}

fn schema_tag(s: NeSchema) -> u8 {
    match s {
        NeSchema::Person => 0,
        NeSchema::Date => 1,
        NeSchema::Organization => 2,
        NeSchema::Place => 3,
        NeSchema::Work => 4,
        NeSchema::Biology => 5,
        NeSchema::Concept => 6,
        NeSchema::Other => 7,
    }
}

fn schema_from_tag(tag: u8) -> Result<NeSchema, StoreError> {
    Ok(match tag {
        0 => NeSchema::Person,
        1 => NeSchema::Date,
        2 => NeSchema::Organization,
        3 => NeSchema::Place,
        4 => NeSchema::Work,
        5 => NeSchema::Biology,
        6 => NeSchema::Concept,
        7 => NeSchema::Other,
        other => {
            return Err(StoreError::Corrupt(format!(
                "unknown schema tag {other}"
            )))
        }
    })
}

/// One entity record decoded from a shard: the entity plus both adjacency
/// directions, exactly as the in-memory graph stores them.
#[derive(Debug, Clone)]
pub struct EntityRecord {
    pub entity: Entity,
    pub outgoing: Vec<Edge>,
    pub incoming: Vec<Edge>,
}

/// Encode one record payload (no length prefix).
pub(crate) fn encode_record(
    entity: &Entity,
    outgoing: &[Edge],
    incoming: &[Edge],
    buf: &mut Vec<u8>,
) {
    put_str(buf, &entity.label);
    put_uv(buf, entity.aliases.len() as u64);
    for a in &entity.aliases {
        put_str(buf, a);
    }
    put_str(buf, &entity.description);
    buf.push(schema_tag(entity.schema));
    buf.push(u8::from(entity.is_type));
    for edges in [outgoing, incoming] {
        put_uv(buf, edges.len() as u64);
        for e in edges {
            put_uv(buf, u64::from(e.predicate.0));
            put_uv(buf, u64::from(e.target.0));
        }
    }
}

fn get_u8(bytes: &[u8], pos: &mut usize) -> Result<u8, StoreError> {
    let &b = bytes.get(*pos).ok_or(StoreError::Truncated)?;
    *pos += 1;
    Ok(b)
}

fn decode_edges(bytes: &[u8], pos: &mut usize) -> Result<Vec<Edge>, StoreError> {
    // Each edge costs ≥ 2 bytes, so the remaining byte count bounds the
    // edge count — a corrupt count cannot drive the allocation.
    let n = get_count(bytes, pos, bytes.len().saturating_sub(*pos))?;
    let mut edges = Vec::with_capacity(n);
    for _ in 0..n {
        let pred = get_uv32(bytes, pos)?;
        let pred = u16::try_from(pred)
            .map_err(|_| StoreError::Corrupt(format!("predicate id {pred} overflows u16")))?;
        let target = get_uv32(bytes, pos)?;
        edges.push(Edge {
            predicate: PredicateId(pred),
            target: EntityId(target),
        });
    }
    Ok(edges)
}

/// Decode a full record payload.
pub(crate) fn decode_record(bytes: &[u8]) -> Result<EntityRecord, StoreError> {
    let mut pos = 0;
    let label = get_str(bytes, &mut pos)?;
    let n_aliases = get_count(bytes, &mut pos, bytes.len())?;
    let mut aliases = Vec::with_capacity(n_aliases);
    for _ in 0..n_aliases {
        aliases.push(get_str(bytes, &mut pos)?);
    }
    let description = get_str(bytes, &mut pos)?;
    let schema = schema_from_tag(get_u8(bytes, &mut pos)?)?;
    let is_type = match get_u8(bytes, &mut pos)? {
        0 => false,
        1 => true,
        other => {
            return Err(StoreError::Corrupt(format!(
                "is_type flag must be 0 or 1, found {other}"
            )))
        }
    };
    let outgoing = decode_edges(bytes, &mut pos)?;
    let incoming = decode_edges(bytes, &mut pos)?;
    Ok(EntityRecord {
        entity: Entity {
            label,
            aliases,
            description,
            schema,
            is_type,
        },
        outgoing,
        incoming,
    })
}

/// Decode only the label — the hottest partial read.
pub(crate) fn decode_label(bytes: &[u8]) -> Result<String, StoreError> {
    let mut pos = 0;
    get_str(bytes, &mut pos)
}

/// Decode the entity fields without materializing the edge lists.
pub(crate) fn decode_entity(bytes: &[u8]) -> Result<Entity, StoreError> {
    let mut pos = 0;
    let label = get_str(bytes, &mut pos)?;
    let n_aliases = get_count(bytes, &mut pos, bytes.len())?;
    let mut aliases = Vec::with_capacity(n_aliases);
    for _ in 0..n_aliases {
        aliases.push(get_str(bytes, &mut pos)?);
    }
    let description = get_str(bytes, &mut pos)?;
    let schema = schema_from_tag(get_u8(bytes, &mut pos)?)?;
    let is_type = get_u8(bytes, &mut pos)? == 1;
    Ok(Entity {
        label,
        aliases,
        description,
        schema,
        is_type,
    })
}

/// Decode only `(schema, is_type)`, skipping the strings without
/// allocating.
pub(crate) fn decode_schema(bytes: &[u8]) -> Result<(NeSchema, bool), StoreError> {
    let mut pos = 0;
    skip_str(bytes, &mut pos)?;
    let n_aliases = get_count(bytes, &mut pos, bytes.len())?;
    for _ in 0..n_aliases {
        skip_str(bytes, &mut pos)?;
    }
    skip_str(bytes, &mut pos)?;
    let schema = schema_from_tag(get_u8(bytes, &mut pos)?)?;
    let is_type = get_u8(bytes, &mut pos)? == 1;
    Ok((schema, is_type))
}

#[derive(Debug, Clone, Copy)]
struct BlockMeta {
    off: u64,
    len: u32,
    crc: u32,
    first_rec: u32,
}

/// Streaming writer for one entity shard. Records arrive in id order via
/// [`SegmentWriter::push`]; [`SegmentWriter::finish`] seals the file
/// through the atomic temp → fsync → rename protocol.
#[derive(Debug)]
pub struct SegmentWriter {
    file: AtomicFile,
    shard_index: u32,
    first_id: u32,
    n_records: u32,
    /// Payload of the currently open block (record frames, concatenated).
    block: Vec<u8>,
    block_records: u32,
    index: Vec<BlockMeta>,
    scratch: Vec<u8>,
}

impl SegmentWriter {
    /// Open a shard writer for entities `first_id..`.
    pub fn create(path: &Path, shard_index: u32, first_id: u32) -> Result<Self, StoreError> {
        let mut file = AtomicFile::create(path)?;
        // Header placeholder; patched with real offsets in `finish`.
        file.write_all(&[0u8; HEADER_LEN])?;
        Ok(SegmentWriter {
            file,
            shard_index,
            first_id,
            n_records: 0,
            block: Vec::with_capacity(MAX_BLOCK_BYTES + 4096),
            block_records: 0,
            index: Vec::new(),
            scratch: Vec::new(),
        })
    }

    /// Append the record for the next entity id in sequence.
    pub fn push(
        &mut self,
        entity: &Entity,
        outgoing: &[Edge],
        incoming: &[Edge],
    ) -> Result<(), StoreError> {
        self.scratch.clear();
        encode_record(entity, outgoing, incoming, &mut self.scratch);
        let len = u32::try_from(self.scratch.len()).map_err(|_| {
            StoreError::Corrupt(format!(
                "record for '{}' exceeds u32::MAX bytes",
                entity.label
            ))
        })?;
        self.block.extend_from_slice(&len.to_le_bytes());
        self.block.extend_from_slice(&self.scratch);
        self.block_records += 1;
        self.n_records += 1;
        if self.block.len() >= MAX_BLOCK_BYTES || self.block_records >= MAX_BLOCK_RECORDS {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<(), StoreError> {
        if self.block.is_empty() {
            return Ok(());
        }
        let off = self.file.position();
        let crc = crc32(&self.block);
        self.file.write_all(&self.block)?;
        self.index.push(BlockMeta {
            off,
            len: self.block.len() as u32,
            crc,
            first_rec: self.n_records - self.block_records,
        });
        self.block.clear();
        self.block_records = 0;
        Ok(())
    }

    /// Seal the shard: flush the open block, append the block index, patch
    /// the header, fsync, rename. Returns the number of records written.
    pub fn finish(mut self) -> Result<u32, StoreError> {
        self.flush_block()?;
        let index_off = self.file.position();
        let mut index_bytes = Vec::with_capacity(self.index.len() * INDEX_ENTRY_LEN);
        for b in &self.index {
            index_bytes.extend_from_slice(&b.off.to_le_bytes());
            index_bytes.extend_from_slice(&b.len.to_le_bytes());
            index_bytes.extend_from_slice(&b.crc.to_le_bytes());
            index_bytes.extend_from_slice(&b.first_rec.to_le_bytes());
        }
        self.file.write_all(&index_bytes)?;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&crc32(&index_bytes).to_le_bytes());
        header.extend_from_slice(&index_off.to_le_bytes());
        header.extend_from_slice(&(index_bytes.len() as u64).to_le_bytes());
        header.extend_from_slice(&self.shard_index.to_le_bytes());
        header.extend_from_slice(&self.first_id.to_le_bytes());
        header.extend_from_slice(&self.n_records.to_le_bytes());
        header.extend_from_slice(&(self.index.len() as u32).to_le_bytes());
        debug_assert_eq!(header.len(), HEADER_LEN);
        self.file.patch(0, &header)?;
        let n = self.n_records;
        self.file.commit()?;
        Ok(n)
    }
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    // Callers slice from fixed-size buffers they just length-checked.
    u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes([
        bytes[at],
        bytes[at + 1],
        bytes[at + 2],
        bytes[at + 3],
        bytes[at + 4],
        bytes[at + 5],
        bytes[at + 6],
        bytes[at + 7],
    ])
}

/// Read access to one sealed shard. Holds the open file handle and the
/// decoded block index; record bytes flow through the shared
/// [`BlockCache`] keyed by `(shard_index, block ordinal)`.
#[derive(Debug)]
pub struct Segment {
    file: File,
    shard_index: u32,
    first_id: u32,
    n_records: u32,
    blocks: Vec<BlockMeta>,
}

impl Segment {
    /// Open and validate a shard: magic, then version, then the index CRC.
    /// Block payloads are verified lazily on first read.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let file = File::open(path)?;
        let mut header = [0u8; HEADER_LEN];
        file.read_exact_at(&mut header, 0)?;
        if &header[0..4] != MAGIC {
            return Err(StoreError::BadMagic { expected: "KGES" });
        }
        let version = read_u32(&header, 4);
        if version != VERSION {
            return Err(StoreError::WrongVersion {
                found: version,
                expected: VERSION,
            });
        }
        let index_crc = read_u32(&header, 8);
        let index_off = read_u64(&header, 12);
        let index_len = read_u64(&header, 20);
        let shard_index = read_u32(&header, 28);
        let first_id = read_u32(&header, 32);
        let n_records = read_u32(&header, 36);
        let n_blocks = read_u32(&header, 40);
        if index_len != u64::from(n_blocks) * INDEX_ENTRY_LEN as u64 {
            return Err(StoreError::Corrupt(format!(
                "index length {index_len} does not match {n_blocks} blocks"
            )));
        }
        let file_len = file.metadata()?.len();
        if index_off
            .checked_add(index_len)
            .map(|end| end > file_len)
            .unwrap_or(true)
        {
            return Err(StoreError::Truncated);
        }
        let mut index_bytes = vec![0u8; index_len as usize];
        file.read_exact_at(&mut index_bytes, index_off)?;
        let found = crc32(&index_bytes);
        if found != index_crc {
            return Err(StoreError::CrcMismatch {
                expected: index_crc,
                found,
            });
        }
        let mut blocks = Vec::with_capacity(n_blocks as usize);
        for i in 0..n_blocks as usize {
            let at = i * INDEX_ENTRY_LEN;
            let meta = BlockMeta {
                off: read_u64(&index_bytes, at),
                len: read_u32(&index_bytes, at + 8),
                crc: read_u32(&index_bytes, at + 12),
                first_rec: read_u32(&index_bytes, at + 16),
            };
            if meta
                .off
                .checked_add(u64::from(meta.len))
                .map(|end| end > index_off)
                .unwrap_or(true)
            {
                return Err(StoreError::Corrupt(format!(
                    "block {i} spans [{}, +{}) past the data section",
                    meta.off, meta.len
                )));
            }
            blocks.push(meta);
        }
        Ok(Segment {
            file,
            shard_index,
            first_id,
            n_records,
            blocks,
        })
    }

    /// Shard ordinal recorded at write time.
    pub fn shard_index(&self) -> u32 {
        self.shard_index
    }

    /// First global entity id stored in this shard.
    pub fn first_id(&self) -> u32 {
        self.first_id
    }

    /// Number of records in this shard.
    pub fn n_records(&self) -> u32 {
        self.n_records
    }

    /// Fetch a block through the cache, verifying its CRC on first load.
    fn block(
        &self,
        block_idx: usize,
        cache: &BlockCache,
    ) -> Result<std::sync::Arc<Vec<u8>>, StoreError> {
        let meta = self.blocks[block_idx];
        cache.get_or_try_load((self.shard_index, block_idx as u32), || {
            let mut buf = vec![0u8; meta.len as usize];
            self.file.read_exact_at(&mut buf, meta.off)?;
            let found = crc32(&buf);
            if found != meta.crc {
                return Err(StoreError::CrcMismatch {
                    expected: meta.crc,
                    found,
                });
            }
            Ok(buf)
        })
    }

    /// Run `decode` over the payload bytes of local record `local`.
    fn with_record<T>(
        &self,
        local: u32,
        cache: &BlockCache,
        decode: impl FnOnce(&[u8]) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        if local >= self.n_records {
            return Err(StoreError::UnknownEntity {
                id: self.first_id.saturating_add(local),
                n_entities: u64::from(self.first_id) + u64::from(self.n_records),
            });
        }
        // Last block whose first_rec <= local.
        let block_idx = self
            .blocks
            .partition_point(|b| b.first_rec <= local)
            .checked_sub(1)
            .ok_or_else(|| StoreError::Corrupt("record before first block".into()))?;
        let bytes = self.block(block_idx, cache)?;
        let mut pos = 0usize;
        let mut rec = self.blocks[block_idx].first_rec;
        loop {
            if pos + 4 > bytes.len() {
                return Err(StoreError::Truncated);
            }
            let len = read_u32(&bytes, pos) as usize;
            pos += 4;
            let end = pos.checked_add(len).ok_or(StoreError::Truncated)?;
            if end > bytes.len() {
                return Err(StoreError::Truncated);
            }
            if rec == local {
                return decode(&bytes[pos..end]);
            }
            pos = end;
            rec += 1;
        }
    }

    /// Full record of local record `local`.
    pub fn read_record(&self, local: u32, cache: &BlockCache) -> Result<EntityRecord, StoreError> {
        self.with_record(local, cache, decode_record)
    }

    /// Entity fields only, edge lists untouched.
    pub fn read_entity(&self, local: u32, cache: &BlockCache) -> Result<Entity, StoreError> {
        self.with_record(local, cache, decode_entity)
    }

    /// Label only.
    pub fn read_label(&self, local: u32, cache: &BlockCache) -> Result<String, StoreError> {
        self.with_record(local, cache, decode_label)
    }

    /// `(schema, is_type)` only.
    pub fn read_schema(
        &self,
        local: u32,
        cache: &BlockCache,
    ) -> Result<(NeSchema, bool), StoreError> {
        self.with_record(local, cache, decode_schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "kglink-store-segment-{tag}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_entity(i: u32) -> (Entity, Vec<Edge>, Vec<Edge>) {
        let e = Entity::new(format!("entity {i}"), NeSchema::Work)
            .with_alias(format!("alias {i}"))
            .with_description(format!("the {i}th sample"));
        let out = vec![Edge {
            predicate: PredicateId(0),
            target: EntityId(i.wrapping_add(1)),
        }];
        let inc = vec![Edge {
            predicate: PredicateId(1),
            target: EntityId(i.wrapping_mul(7)),
        }];
        (e, out, inc)
    }

    fn write_shard(path: &Path, n: u32) {
        let mut w = SegmentWriter::create(path, 3, 100).unwrap();
        for i in 0..n {
            let (e, out, inc) = sample_entity(i);
            w.push(&e, &out, &inc).unwrap();
        }
        assert_eq!(w.finish().unwrap(), n);
    }

    #[test]
    fn records_round_trip_across_block_boundaries() {
        let dir = tmpdir("roundtrip");
        let path = dir.join(shard_file_name(3));
        // > MAX_BLOCK_RECORDS records forces multiple blocks.
        let n = MAX_BLOCK_RECORDS * 2 + 13;
        write_shard(&path, n);
        let seg = Segment::open(&path).unwrap();
        assert_eq!(seg.shard_index(), 3);
        assert_eq!(seg.first_id(), 100);
        assert_eq!(seg.n_records(), n);
        let cache = BlockCache::new(1 << 20, 2);
        for i in [0, 1, MAX_BLOCK_RECORDS - 1, MAX_BLOCK_RECORDS, n - 1] {
            let (e, out, inc) = sample_entity(i);
            let rec = seg.read_record(i, &cache).unwrap();
            assert_eq!(rec.entity.label, e.label);
            assert_eq!(rec.entity.aliases, e.aliases);
            assert_eq!(rec.entity.description, e.description);
            assert_eq!(rec.outgoing, out);
            assert_eq!(rec.incoming, inc);
            assert_eq!(seg.read_label(i, &cache).unwrap(), e.label);
            assert_eq!(seg.read_schema(i, &cache).unwrap(), (NeSchema::Work, false));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_range_record_is_unknown_entity() {
        let dir = tmpdir("range");
        let path = dir.join(shard_file_name(0));
        write_shard(&path, 5);
        let seg = Segment::open(&path).unwrap();
        let cache = BlockCache::new(1 << 16, 1);
        assert!(matches!(
            seg.read_record(5, &cache),
            Err(StoreError::UnknownEntity { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_and_wrong_version_fail_typed() {
        let dir = tmpdir("magic");
        let path = dir.join(shard_file_name(0));
        write_shard(&path, 3);
        let mut bytes = std::fs::read(&path).unwrap();
        let orig = bytes.clone();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Segment::open(&path),
            Err(StoreError::BadMagic { expected: "KGES" })
        ));
        bytes = orig.clone();
        bytes[4] = 99;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Segment::open(&path),
            Err(StoreError::WrongVersion { found: 99, expected: VERSION })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_file_fails_typed() {
        let dir = tmpdir("trunc");
        let path = dir.join(shard_file_name(0));
        write_shard(&path, 10);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        assert!(matches!(Segment::open(&path), Err(StoreError::Truncated)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_data_bit_is_caught_at_read_time() {
        let dir = tmpdir("bitrot");
        let path = dir.join(shard_file_name(0));
        write_shard(&path, 10);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the data section (past the header, before the
        // index): open still succeeds, the damaged block fails on read.
        bytes[HEADER_LEN + 10] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let seg = Segment::open(&path).unwrap();
        let cache = BlockCache::new(1 << 16, 1);
        assert!(matches!(
            seg.read_record(0, &cache),
            Err(StoreError::CrcMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_index_bit_is_caught_at_open() {
        let dir = tmpdir("idxrot");
        let path = dir.join(shard_file_name(0));
        write_shard(&path, 10);
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Segment::open(&path),
            Err(StoreError::CrcMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_enum_tags_fail_typed() {
        let mut buf = Vec::new();
        let e = Entity::new("x", NeSchema::Other);
        encode_record(&e, &[], &[], &mut buf);
        // Schema byte sits right after the three strings; label "x" is
        // [1,'x'], no aliases [0], empty description [0] → offset 5.
        buf[5] = 200;
        assert!(matches!(decode_record(&buf), Err(StoreError::Corrupt(_))));
        let mut buf = Vec::new();
        encode_record(&e, &[], &[], &mut buf);
        buf[6] = 9; // is_type flag
        assert!(matches!(decode_record(&buf), Err(StoreError::Corrupt(_))));
    }
}
