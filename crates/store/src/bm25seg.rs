//! `KGBM` compressed on-disk BM25 index segments.
//!
//! The in-memory [`kglink_search::InvertedIndex`] holds every posting as a
//! struct in a `HashMap` — fine at 100k entities, impossible at 10M. This
//! module stores the same index as one segment file: delta-varint
//! compressed postings with per-block *max-score* metadata, a
//! binary-searchable sorted term dictionary, and a dense document-length
//! array. Queries over it return **bit-identical** hits to
//! `InvertedIndex::search` (same f32 summation order, same IDF, same
//! heap tie-breaks) — the transparency proptests pin this.
//!
//! ```text
//! offset 0, little-endian
//! ┌───────────────────────────────────────────────────────────────────┐
//! │ magic "KGBM" │ u32 version │ u32 header_crc (over bytes 12..80)   │
//! │ u32 n_terms │ u64 postings_off │ u64 postings_len                 │
//! │ u64 dict_off │ u64 dict_len │ u32 dict_crc                        │
//! │ u64 doclen_off │ u64 doclen_len │ u32 doclen_crc │ f32 k1 │ f32 b │  80-byte header
//! ├───────────────────────────────────────────────────────────────────┤
//! │ postings: per term, blocks of ≤ 128 postings                      │
//! │   varint count │ varint first_delta │ varint span                 │
//! │   f32 max_score │ varint payload_len                              │
//! │   payload: (count−1) varint doc gaps, then count varint tfs       │
//! ├───────────────────────────────────────────────────────────────────┤
//! │ dict: [u32 entry_off]*n_terms ++ entries (sorted by term bytes)   │
//! │   entry: varint term_len + bytes │ varint df                      │
//! │          u64 post_off (rel) │ u32 post_len │ u32 post_crc         │
//! │          varint n_blocks                                          │
//! ├───────────────────────────────────────────────────────────────────┤
//! │ doclens: dense u32 token count per doc id                         │
//! └───────────────────────────────────────────────────────────────────┘
//! ```
//!
//! **Why per-block max scores.** `max_score` is the largest BM25
//! contribution any posting in the block can make (computable at build
//! time: df, doc lengths, and corpus stats are all final). At query time
//! the reader runs document-at-a-time over the term cursors and skips
//! work the current top-k provably cannot lose to: a candidate whose
//! summed block maxes fall below the heap threshold is dropped without
//! scoring, and once a single live cursor remains, whole blocks are
//! *skipped undecoded* via `payload_len`. Skipping is rank-safe, not
//! approximate: f32 addition is monotone, and block maxes are computed by
//! the very expression scoring uses, so `sum(actual) ≤ sum(max)` holds in
//! f32, summed in the same query-term order. Strict `<` against the
//! threshold leaves ties (which break by doc id) to the exact path.
//!
//! **Why the builder spills.** `Bm25SegBuilder` accumulates postings in a
//! `BTreeMap` and, past a posting budget, spills term-sorted runs to
//! scratch files — always at a document boundary, so one document's
//! postings never straddle runs. `finish` k-way merges the runs (term
//! order from the BTreeMap, doc order from run order) and streams blocks
//! through the atomic writer. Peak memory is the budget, not the corpus.

use crate::atomic::AtomicFile;
use crate::blockcache::BlockCache;
use crate::error::StoreError;
use crate::varint::{crc32, get_count, get_uv32, put_uv, Crc32, MAX_VARINT_LEN};
use kglink_search::tokenize::{tokenize, tokenize_unique};
use kglink_search::Bm25Params;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

pub(crate) const MAGIC: &[u8; 4] = b"KGBM";
pub(crate) const VERSION: u32 = 1;
pub(crate) const HEADER_LEN: usize = 80;

/// Postings per block. 128 keeps blocks ≲ 1 KiB while making whole-block
/// skips worth real decode work.
pub const MAX_BLOCK_POSTINGS: usize = 128;

/// Default spill threshold: postings buffered in memory before a run goes
/// to disk (~48 MB of `(String, Vec)` overhead at typical term lengths).
pub const DEFAULT_SPILL_POSTINGS: usize = 4_000_000;

/// File name of the BM25 segment inside a world directory.
pub const BM25_FILE: &str = "index.kgbm";

/// Corpus statistics produced by [`Bm25SegBuilder::finish`] — what the
/// manifest records.
pub use crate::manifest::Bm25Stats;

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Streaming builder for a `KGBM` segment. Documents must arrive in
/// ascending id order (multiple fields of one document are consecutive
/// calls with the same id, exactly like `InvertedIndex::add_document`).
#[derive(Debug)]
pub struct Bm25SegBuilder {
    path: PathBuf,
    run_dir: PathBuf,
    params: Bm25Params,
    spill_budget: usize,
    cur: BTreeMap<String, Vec<(u32, u32)>>,
    cur_postings: usize,
    runs: Vec<PathBuf>,
    doc_lens: Vec<u32>,
    last_doc: Option<u32>,
    n_docs: usize,
    total_len: u64,
}

impl Bm25SegBuilder {
    /// Start building the segment that will be committed at `path`.
    pub fn create(path: &Path, params: Bm25Params, spill_budget: usize) -> Self {
        Bm25SegBuilder {
            path: path.to_path_buf(),
            run_dir: path.with_extension("runs"),
            params,
            spill_budget: spill_budget.max(1),
            cur: BTreeMap::new(),
            cur_postings: 0,
            runs: Vec::new(),
            doc_lens: Vec::new(),
            last_doc: None,
            n_docs: 0,
            total_len: 0,
        }
    }

    /// Index one field of document `doc`. Ids must be non-decreasing.
    pub fn add_doc(&mut self, doc: u32, text: &str) -> Result<(), StoreError> {
        if let Some(last) = self.last_doc {
            if doc < last {
                return Err(StoreError::Corrupt(format!(
                    "documents must arrive in ascending id order (got {doc} after {last})"
                )));
            }
            // Spill only when crossing to a *new* document, so one
            // document's postings never straddle two runs.
            if doc > last && self.cur_postings >= self.spill_budget {
                self.spill()?;
            }
        }
        self.last_doc = Some(doc);
        let tokens = tokenize(text);
        if tokens.is_empty() {
            return Ok(());
        }
        if self.doc_lens.len() <= doc as usize {
            self.doc_lens.resize(doc as usize + 1, 0);
        }
        if self.doc_lens[doc as usize] == 0 {
            self.n_docs += 1;
        }
        self.doc_lens[doc as usize] += tokens.len() as u32;
        self.total_len += tokens.len() as u64;
        let mut tf: BTreeMap<&str, u32> = BTreeMap::new();
        for t in &tokens {
            *tf.entry(t.as_str()).or_insert(0) += 1;
        }
        for (term, count) in tf {
            let list = self.cur.entry(term.to_string()).or_default();
            if let Some(last) = list.last_mut() {
                if last.0 == doc {
                    last.1 += count;
                    continue;
                }
            }
            list.push((doc, count));
            self.cur_postings += 1;
        }
        Ok(())
    }

    fn spill(&mut self) -> Result<(), StoreError> {
        if self.cur.is_empty() {
            return Ok(());
        }
        std::fs::create_dir_all(&self.run_dir)?;
        let run_path = self.run_dir.join(format!("run-{:04}.bin", self.runs.len()));
        // Runs are transient scratch (deleted in finish/Drop), not store
        // files: plain sequential writes, no framing, no fsync.
        let file = File::create(&run_path)?;
        let mut w = BufWriter::new(file);
        let mut buf = Vec::new();
        for (term, list) in &self.cur {
            buf.clear();
            put_uv(&mut buf, term.len() as u64);
            buf.extend_from_slice(term.as_bytes());
            put_uv(&mut buf, list.len() as u64);
            for &(doc, tf) in list {
                put_uv(&mut buf, u64::from(doc));
                put_uv(&mut buf, u64::from(tf));
            }
            w.write_all(&buf)?;
        }
        w.flush()?;
        self.runs.push(run_path);
        self.cur.clear();
        self.cur_postings = 0;
        Ok(())
    }

    /// Merge, compress, and atomically commit the segment. Returns the
    /// corpus statistics for the manifest.
    pub fn finish(mut self) -> Result<Bm25Stats, StoreError> {
        let stats = Bm25Stats {
            n_docs: self.n_docs as u64,
            total_len: self.total_len,
            k1: self.params.k1,
            b: self.params.b,
        };
        if !self.runs.is_empty() {
            // Earlier spills mean the in-memory tail must join the merge.
            self.spill()?;
        }
        let mut file = AtomicFile::create(&self.path)?;
        file.write_all(&[0u8; HEADER_LEN])?;
        let mut sink = TermSink {
            file: &mut file,
            params: self.params,
            n_docs: self.n_docs,
            avg: avg_len(self.n_docs, self.total_len),
            doc_lens: &self.doc_lens,
            entries: Vec::new(),
            offsets: Vec::new(),
            prev_term: String::new(),
            block_buf: Vec::new(),
        };
        if self.runs.is_empty() {
            for (term, list) in &self.cur {
                sink.emit(term, list)?;
            }
        } else {
            merge_runs(&self.runs, &mut sink)?;
        }
        let n_terms = sink.offsets.len() as u32;
        let postings_len = sink.file.position() - HEADER_LEN as u64;
        // Dictionary: offset table then entries, CRC'd as one blob.
        let mut dict = Vec::with_capacity(sink.offsets.len() * 4 + sink.entries.len());
        for off in &sink.offsets {
            dict.extend_from_slice(&off.to_le_bytes());
        }
        dict.extend_from_slice(&sink.entries);
        drop(sink);
        let dict_off = file.position();
        file.write_all(&dict)?;
        let doclen_off = file.position();
        let mut doclens = Vec::with_capacity(self.doc_lens.len() * 4);
        for &len in &self.doc_lens {
            doclens.extend_from_slice(&len.to_le_bytes());
        }
        file.write_all(&doclens)?;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&[0u8; 4]); // header_crc, patched below
        header.extend_from_slice(&n_terms.to_le_bytes());
        header.extend_from_slice(&(HEADER_LEN as u64).to_le_bytes());
        header.extend_from_slice(&postings_len.to_le_bytes());
        header.extend_from_slice(&dict_off.to_le_bytes());
        header.extend_from_slice(&(dict.len() as u64).to_le_bytes());
        header.extend_from_slice(&crc32(&dict).to_le_bytes());
        header.extend_from_slice(&doclen_off.to_le_bytes());
        header.extend_from_slice(&(doclens.len() as u64).to_le_bytes());
        header.extend_from_slice(&crc32(&doclens).to_le_bytes());
        header.extend_from_slice(&self.params.k1.to_le_bytes());
        header.extend_from_slice(&self.params.b.to_le_bytes());
        debug_assert_eq!(header.len(), HEADER_LEN);
        let hcrc = crc32(&header[12..HEADER_LEN]);
        header[8..12].copy_from_slice(&hcrc.to_le_bytes());
        file.patch(0, &header)?;
        file.commit()?;
        self.cleanup_runs();
        Ok(stats)
    }

    fn cleanup_runs(&mut self) {
        if self.run_dir.exists() {
            let _ = std::fs::remove_dir_all(&self.run_dir);
        }
        self.runs.clear();
    }
}

impl Drop for Bm25SegBuilder {
    fn drop(&mut self) {
        self.cleanup_runs();
    }
}

fn avg_len(n_docs: usize, total_len: u64) -> f32 {
    // Exactly InvertedIndex::avg_doc_len() followed by the .max(1e-6) its
    // query paths apply — same f32 expression, same types.
    let avg = if n_docs == 0 {
        0.0
    } else {
        total_len as f32 / n_docs as f32
    };
    avg.max(1e-6)
}

/// Streams per-term posting blocks to the segment file and accumulates
/// dictionary entries.
struct TermSink<'a> {
    file: &'a mut AtomicFile,
    params: Bm25Params,
    n_docs: usize,
    avg: f32,
    doc_lens: &'a [u32],
    entries: Vec<u8>,
    offsets: Vec<u32>,
    prev_term: String,
    block_buf: Vec<u8>,
}

impl TermSink<'_> {
    fn emit(&mut self, term: &str, postings: &[(u32, u32)]) -> Result<(), StoreError> {
        if postings.is_empty() {
            return Ok(());
        }
        if !self.offsets.is_empty() && term.as_bytes() <= self.prev_term.as_bytes() {
            return Err(StoreError::Corrupt(format!(
                "terms must be emitted in ascending order ('{term}' after '{}')",
                self.prev_term
            )));
        }
        let df = postings.len();
        let idf = Bm25Params::idf(self.n_docs, df);
        let post_off = self.file.position() - HEADER_LEN as u64;
        let mut crc = Crc32::new();
        let mut post_len = 0u64;
        let mut n_blocks = 0u64;
        let mut prev_last = 0u32;
        for chunk in postings.chunks(MAX_BLOCK_POSTINGS) {
            let first = chunk[0].0;
            let last = chunk[chunk.len() - 1].0;
            // The block max is computed by the *same* f32 expression the
            // reader scores with — that equality is what makes skipping
            // against it rank-safe rather than heuristic.
            let mut max_score = f32::NEG_INFINITY;
            for &(doc, tf) in chunk {
                let dl = *self.doc_lens.get(doc as usize).ok_or_else(|| {
                    StoreError::Corrupt(format!("posting names doc {doc} outside the corpus"))
                })?;
                max_score =
                    max_score.max(self.params.term_score(idf, tf as f32, dl as f32, self.avg));
            }
            self.block_buf.clear();
            put_uv(&mut self.block_buf, chunk.len() as u64);
            put_uv(&mut self.block_buf, u64::from(first - prev_last));
            put_uv(&mut self.block_buf, u64::from(last - first));
            self.block_buf.extend_from_slice(&max_score.to_le_bytes());
            let mut payload = Vec::with_capacity(chunk.len() * 2);
            let mut prev = first;
            for &(doc, _) in &chunk[1..] {
                put_uv(&mut payload, u64::from(doc - prev));
                prev = doc;
            }
            for &(_, tf) in chunk {
                put_uv(&mut payload, u64::from(tf));
            }
            put_uv(&mut self.block_buf, payload.len() as u64);
            self.block_buf.extend_from_slice(&payload);
            crc.update(&self.block_buf);
            post_len += self.block_buf.len() as u64;
            let block = std::mem::take(&mut self.block_buf);
            self.file.write_all(&block)?;
            self.block_buf = block;
            n_blocks += 1;
            prev_last = last;
        }
        self.offsets.push(u32::try_from(self.entries.len()).map_err(|_| {
            StoreError::Corrupt("dictionary entries exceed u32::MAX bytes".into())
        })?);
        put_uv(&mut self.entries, term.len() as u64);
        self.entries.extend_from_slice(term.as_bytes());
        put_uv(&mut self.entries, df as u64);
        self.entries.extend_from_slice(&post_off.to_le_bytes());
        self.entries.extend_from_slice(
            &u32::try_from(post_len)
                .map_err(|_| {
                    StoreError::Corrupt(format!("postings for '{term}' exceed u32::MAX bytes"))
                })?
                .to_le_bytes(),
        );
        self.entries.extend_from_slice(&crc.finish().to_le_bytes());
        put_uv(&mut self.entries, n_blocks);
        self.prev_term.clear();
        self.prev_term.push_str(term);
        Ok(())
    }
}

/// K-way merge of term-sorted runs into the sink. Runs are indexed in
/// creation order; because spills happen at document boundaries and
/// documents arrive ascending, concatenating one term's lists in run order
/// preserves ascending doc order with no duplicates.
fn merge_runs(runs: &[PathBuf], sink: &mut TermSink<'_>) -> Result<(), StoreError> {
    struct RunHead {
        term: String,
        run: usize,
    }
    impl PartialEq for RunHead {
        fn eq(&self, other: &Self) -> bool {
            self.term == other.term && self.run == other.run
        }
    }
    impl Eq for RunHead {}
    impl PartialOrd for RunHead {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for RunHead {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reversed: BinaryHeap is a max-heap, we pop the smallest term,
            // earliest run first.
            other
                .term
                .cmp(&self.term)
                .then_with(|| other.run.cmp(&self.run))
        }
    }

    let mut readers: Vec<BufReader<File>> = Vec::with_capacity(runs.len());
    for p in runs {
        readers.push(BufReader::new(File::open(p)?));
    }
    let mut heap: BinaryHeap<RunHead> = BinaryHeap::new();
    let mut pending: Vec<Option<Vec<(u32, u32)>>> = Vec::new();
    pending.resize_with(runs.len(), || None);
    for run in 0..readers.len() {
        if let Some((term, list)) = read_run_record(&mut readers[run])? {
            pending[run] = Some(list);
            heap.push(RunHead { term, run });
        }
    }
    /// Append run `run`'s pending list, then refill it from its reader.
    fn take(
        run: usize,
        readers: &mut [BufReader<File>],
        heap: &mut BinaryHeap<RunHead>,
        pending: &mut [Option<Vec<(u32, u32)>>],
        merged: &mut Vec<(u32, u32)>,
    ) -> Result<(), StoreError> {
        let list = pending[run]
            .take()
            .ok_or_else(|| StoreError::Corrupt("run record lost".into()))?;
        merged.extend_from_slice(&list);
        if let Some((t, l)) = read_run_record(&mut readers[run])? {
            pending[run] = Some(l);
            heap.push(RunHead { term: t, run });
        }
        Ok(())
    }

    let mut merged: Vec<(u32, u32)> = Vec::new();
    while let Some(head) = heap.pop() {
        merged.clear();
        let term = head.term;
        take(head.run, &mut readers, &mut heap, &mut pending, &mut merged)?;
        while heap.peek().is_some_and(|h| h.term == term) {
            // kglink-lint: allow(panic-in-lib) — peek just proved non-empty.
            let next = heap.pop().expect("peeked entry");
            take(next.run, &mut readers, &mut heap, &mut pending, &mut merged)?;
        }
        sink.emit(&term, &merged)?;
    }
    Ok(())
}

/// A spilled run record: the term and its `(doc, tf)` postings.
type RunRecord = (String, Vec<(u32, u32)>);

/// Read one run record, or `None` at clean end-of-run.
fn read_run_record(r: &mut BufReader<File>) -> Result<Option<RunRecord>, StoreError> {
    let Some(term_len) = read_uv_opt(r)? else {
        return Ok(None);
    };
    if term_len > 1 << 20 {
        return Err(StoreError::Corrupt(format!("run term length {term_len}")));
    }
    let mut term = vec![0u8; term_len as usize];
    r.read_exact(&mut term)?;
    let term = String::from_utf8(term)
        .map_err(|_| StoreError::Corrupt("run term is not UTF-8".into()))?;
    let count = read_uv(r)?;
    if count > u64::from(u32::MAX) {
        return Err(StoreError::Corrupt(format!("run posting count {count}")));
    }
    let mut list = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let doc = read_uv(r)?;
        let tf = read_uv(r)?;
        list.push((
            u32::try_from(doc).map_err(|_| StoreError::Corrupt("run doc id".into()))?,
            u32::try_from(tf).map_err(|_| StoreError::Corrupt("run tf".into()))?,
        ));
    }
    Ok(Some((term, list)))
}

fn read_uv(r: &mut BufReader<File>) -> Result<u64, StoreError> {
    read_uv_opt(r)?.ok_or(StoreError::Truncated)
}

/// Varint from a reader; `None` only on EOF *before the first byte*.
fn read_uv_opt(r: &mut BufReader<File>) -> Result<Option<u64>, StoreError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    let mut first = true;
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte)? {
            0 if first => return Ok(None),
            0 => return Err(StoreError::Truncated),
            _ => {}
        }
        first = false;
        let b = byte[0];
        if shift == 63 && b > 1 {
            return Err(StoreError::Corrupt("varint overflows u64".into()));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(Some(v));
        }
        shift += 7;
        if shift as usize > (MAX_VARINT_LEN - 1) * 7 {
            return Err(StoreError::Corrupt("varint longer than 10 bytes".into()));
        }
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Work counters for one query — proof that block-max skipping engages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Candidates fully scored and offered to the heap.
    pub scored_docs: u64,
    /// Candidates dropped by an upper-bound check without scoring.
    pub skipped_docs: u64,
    /// Whole posting blocks skipped without decoding.
    pub skipped_blocks: u64,
}

#[derive(Debug, Clone)]
struct DictEntry {
    df: usize,
    post_off: u64,
    post_len: u32,
    post_crc: u32,
}

/// Read access to a sealed `KGBM` segment. The dictionary and document
/// lengths are resident (a few MB per 10M docs); posting bytes are read on
/// demand through a [`BlockCache`] keyed by `(0, term ordinal)`.
#[derive(Debug)]
pub struct Bm25Segment {
    file: File,
    params: Bm25Params,
    postings_off: u64,
    n_terms: u32,
    /// `[u32 entry_off]*n_terms` portion of the dict blob.
    dict_offsets: Vec<u32>,
    /// Entries portion of the dict blob.
    dict_entries: Vec<u8>,
    doc_lens: Vec<u32>,
    n_docs: usize,
    avg: f32,
}

fn le_u32(bytes: &[u8], at: usize) -> Result<u32, StoreError> {
    bytes
        .get(at..at + 4)
        .ok_or(StoreError::Truncated)
        .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

fn le_u64(bytes: &[u8], at: usize) -> Result<u64, StoreError> {
    bytes
        .get(at..at + 8)
        .ok_or(StoreError::Truncated)
        .map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
}

impl Bm25Segment {
    /// Open and validate a segment: magic, version, header CRC, dictionary
    /// CRC, doc-length CRC. Posting bytes verify lazily per term.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let file = File::open(path)?;
        let mut header = [0u8; HEADER_LEN];
        file.read_exact_at(&mut header, 0)?;
        if &header[0..4] != MAGIC {
            return Err(StoreError::BadMagic { expected: "KGBM" });
        }
        let version = le_u32(&header, 4)?;
        if version != VERSION {
            return Err(StoreError::WrongVersion {
                found: version,
                expected: VERSION,
            });
        }
        let header_crc = le_u32(&header, 8)?;
        let found = crc32(&header[12..HEADER_LEN]);
        if found != header_crc {
            return Err(StoreError::CrcMismatch {
                expected: header_crc,
                found,
            });
        }
        let n_terms = le_u32(&header, 12)?;
        let postings_off = le_u64(&header, 16)?;
        let postings_len = le_u64(&header, 24)?;
        let dict_off = le_u64(&header, 32)?;
        let dict_len = le_u64(&header, 40)?;
        let dict_crc = le_u32(&header, 48)?;
        let doclen_off = le_u64(&header, 52)?;
        let doclen_len = le_u64(&header, 60)?;
        let doclen_crc = le_u32(&header, 68)?;
        let k1 = f32::from_bits(le_u32(&header, 72)?);
        let b = f32::from_bits(le_u32(&header, 76)?);
        if !(k1.is_finite() && b.is_finite()) {
            return Err(StoreError::Corrupt("BM25 parameters must be finite".into()));
        }
        if postings_off != HEADER_LEN as u64 {
            return Err(StoreError::Corrupt(format!(
                "postings section at {postings_off}, expected {HEADER_LEN}"
            )));
        }
        let file_len = file.metadata()?.len();
        for (off, len) in [
            (postings_off, postings_len),
            (dict_off, dict_len),
            (doclen_off, doclen_len),
        ] {
            if off.checked_add(len).map(|e| e > file_len).unwrap_or(true) {
                return Err(StoreError::Truncated);
            }
        }
        if doclen_len % 4 != 0 {
            return Err(StoreError::Corrupt(format!(
                "doc-length section of {doclen_len} bytes is not u32-aligned"
            )));
        }
        let mut dict = vec![0u8; dict_len as usize];
        file.read_exact_at(&mut dict, dict_off)?;
        let found = crc32(&dict);
        if found != dict_crc {
            return Err(StoreError::CrcMismatch {
                expected: dict_crc,
                found,
            });
        }
        let offsets_len = n_terms as usize * 4;
        if dict.len() < offsets_len {
            return Err(StoreError::Corrupt(format!(
                "dict blob of {} bytes cannot hold {n_terms} offsets",
                dict.len()
            )));
        }
        let dict_entries = dict.split_off(offsets_len);
        let dict_offsets: Vec<u32> = dict
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let mut doclen_bytes = vec![0u8; doclen_len as usize];
        file.read_exact_at(&mut doclen_bytes, doclen_off)?;
        let found = crc32(&doclen_bytes);
        if found != doclen_crc {
            return Err(StoreError::CrcMismatch {
                expected: doclen_crc,
                found,
            });
        }
        let doc_lens: Vec<u32> = doclen_bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let n_docs = doc_lens.iter().filter(|&&l| l > 0).count();
        let total_len: u64 = doc_lens.iter().map(|&l| u64::from(l)).sum();
        Ok(Bm25Segment {
            file,
            params: Bm25Params { k1, b },
            postings_off,
            n_terms,
            dict_offsets,
            dict_entries,
            doc_lens,
            n_docs,
            avg: avg_len(n_docs, total_len),
        })
    }

    /// Number of indexed documents.
    pub fn doc_count(&self) -> usize {
        self.n_docs
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.n_terms as usize
    }

    /// Token count of `doc`, or `None` if it was never indexed.
    pub fn doc_len(&self, doc: u32) -> Option<u32> {
        match self.doc_lens.get(doc as usize) {
            Some(&l) if l > 0 => Some(l),
            _ => None,
        }
    }

    /// The BM25 parameters the segment was built with.
    pub fn params(&self) -> Bm25Params {
        self.params
    }

    /// Decode the dictionary entry at ordinal `i`, returning the term bytes
    /// and metadata.
    fn entry(&self, i: usize) -> Result<(&[u8], DictEntry), StoreError> {
        let start = *self
            .dict_offsets
            .get(i)
            .ok_or_else(|| StoreError::Corrupt(format!("term ordinal {i} out of range")))? as usize;
        let bytes = &self.dict_entries;
        let mut pos = start;
        let term_len = get_count(bytes, &mut pos, bytes.len())?;
        let end = pos
            .checked_add(term_len)
            .filter(|&e| e <= bytes.len())
            .ok_or(StoreError::Truncated)?;
        let term = &bytes[pos..end];
        pos = end;
        let df = get_count(bytes, &mut pos, u32::MAX as usize)?;
        let post_off = le_u64(bytes, pos)?;
        pos += 8;
        let post_len = le_u32(bytes, pos)?;
        pos += 4;
        let post_crc = le_u32(bytes, pos)?;
        if df == 0 {
            return Err(StoreError::Corrupt("dictionary entry with df = 0".into()));
        }
        Ok((
            term,
            DictEntry {
                df,
                post_off,
                post_len,
                post_crc,
            },
        ))
    }

    /// Binary-search the sorted dictionary for `term`.
    fn lookup(&self, term: &str) -> Result<Option<(usize, DictEntry)>, StoreError> {
        let needle = term.as_bytes();
        let (mut lo, mut hi) = (0usize, self.n_terms as usize);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let (probe, entry) = self.entry(mid)?;
            match probe.cmp(needle) {
                Ordering::Less => lo = mid + 1,
                Ordering::Greater => hi = mid,
                Ordering::Equal => return Ok(Some((mid, entry))),
            }
        }
        Ok(None)
    }

    /// Fetch (and CRC-verify, once) the full posting bytes of a term.
    fn postings(
        &self,
        ordinal: usize,
        entry: &DictEntry,
        cache: &BlockCache,
    ) -> Result<Arc<Vec<u8>>, StoreError> {
        cache.get_or_try_load((0, ordinal as u32), || {
            let mut buf = vec![0u8; entry.post_len as usize];
            self.file
                .read_exact_at(&mut buf, self.postings_off + entry.post_off)?;
            let found = crc32(&buf);
            if found != entry.post_crc {
                return Err(StoreError::CrcMismatch {
                    expected: entry.post_crc,
                    found,
                });
            }
            Ok(buf)
        })
    }

    /// Top-`k` documents for `query`, bit-identical to
    /// `InvertedIndex::search` on the same corpus.
    pub fn search(
        &self,
        query: &str,
        k: usize,
        cache: &BlockCache,
    ) -> Result<Vec<(u32, f32)>, StoreError> {
        self.search_with_stats(query, k, cache).map(|(hits, _)| hits)
    }

    /// [`Bm25Segment::search`] plus the work counters.
    pub fn search_with_stats(
        &self,
        query: &str,
        k: usize,
        cache: &BlockCache,
    ) -> Result<(Vec<(u32, f32)>, QueryStats), StoreError> {
        let mut stats = QueryStats::default();
        let terms = tokenize_unique(query);
        if terms.is_empty() || k == 0 {
            return Ok((Vec::new(), stats));
        }
        // Cursors in query-term order: scoring sums per-candidate
        // contributions in this order, matching the in-memory term loop.
        let mut cursors: Vec<Cursor> = Vec::with_capacity(terms.len());
        for term in &terms {
            if let Some((ordinal, entry)) = self.lookup(term)? {
                let bytes = self.postings(ordinal, &entry, cache)?;
                let idf = Bm25Params::idf(self.n_docs, entry.df);
                let mut c = Cursor::new(bytes, idf);
                c.enter_next_block()?;
                if !c.exhausted {
                    cursors.push(c);
                }
            }
        }
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        loop {
            let live = cursors.iter().filter(|c| !c.exhausted).count();
            if live == 0 {
                break;
            }
            if live == 1 {
                if let Some(c) = cursors.iter_mut().find(|c| !c.exhausted) {
                    drain_single(c, self, k, &mut heap, &mut stats)?;
                }
                break;
            }
            // Candidate = smallest current doc across live cursors.
            let d = cursors
                .iter()
                .filter(|c| !c.exhausted)
                .map(|c| c.current_doc())
                .min()
                // kglink-lint: allow(panic-in-lib) — live > 0 just checked.
                .expect("live cursor");
            let threshold = (heap.len() == k).then(|| heap.peek().map(|e| e.score));
            if let Some(Some(t)) = threshold {
                // Upper bound: block maxes of the cursors at d, summed in
                // the same order scoring would use. f32 addition is
                // monotone, so sum(actual) ≤ sum(max); strict < means the
                // candidate cannot enter the top-k (ties break exact).
                let mut ub = 0.0f32;
                for c in cursors.iter().filter(|c| !c.exhausted) {
                    if c.current_doc() == d {
                        ub += c.block_max;
                    }
                }
                if ub < t {
                    stats.skipped_docs += 1;
                    for c in cursors.iter_mut().filter(|c| !c.exhausted) {
                        if c.current_doc() == d {
                            c.step()?;
                        }
                    }
                    continue;
                }
            }
            let len = *self
                .doc_lens
                .get(d as usize)
                .ok_or_else(|| StoreError::Corrupt(format!("posting names doc {d} outside the corpus")))?
                as f32;
            let mut score = 0.0f32;
            for c in cursors.iter_mut().filter(|c| !c.exhausted) {
                if c.current_doc() == d {
                    score += self.params.term_score(c.idf, c.current_tf() as f32, len, self.avg);
                }
            }
            stats.scored_docs += 1;
            offer(&mut heap, k, d, score);
            for c in cursors.iter_mut().filter(|c| !c.exhausted) {
                if c.current_doc() == d {
                    c.step()?;
                }
            }
        }
        let mut hits: Vec<(u32, f32)> = heap.into_iter().map(|e| (e.doc, e.score)).collect();
        hits.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Ok((hits, stats))
    }
}

/// Score the lone remaining cursor's postings, skipping whole blocks whose
/// max score cannot beat the current threshold.
fn drain_single(
    c: &mut Cursor,
    seg: &Bm25Segment,
    k: usize,
    heap: &mut BinaryHeap<HeapEntry>,
    stats: &mut QueryStats,
) -> Result<(), StoreError> {
    loop {
        // Score out the currently decoded block.
        while c.i < c.docs.len() {
            if heap.len() == k {
                // The threshold may have risen past this block's max since
                // it was decoded; everything left in it is then unreachable.
                let t = heap.peek().map(|e| e.score).unwrap_or(f32::NEG_INFINITY);
                if c.block_max < t {
                    stats.skipped_docs += (c.docs.len() - c.i) as u64;
                    c.i = c.docs.len();
                    break;
                }
            }
            let d = c.docs[c.i];
            let len = *seg
                .doc_lens
                .get(d as usize)
                .ok_or_else(|| StoreError::Corrupt(format!("posting names doc {d} outside the corpus")))?
                as f32;
            let score = 0.0f32 + seg.params.term_score(c.idf, c.tfs[c.i] as f32, len, seg.avg);
            stats.scored_docs += 1;
            offer(heap, k, d, score);
            c.i += 1;
        }
        // Pick the next block, skipping undecoded ones that cannot compete.
        loop {
            let Some(head) = c.peek_head()? else {
                c.exhausted = true;
                return Ok(());
            };
            if heap.len() == k {
                let t = heap.peek().map(|e| e.score).unwrap_or(f32::NEG_INFINITY);
                if head.max < t {
                    stats.skipped_blocks += 1;
                    stats.skipped_docs += head.count as u64;
                    c.skip_block(&head);
                    continue;
                }
            }
            c.load_block(&head)?;
            break;
        }
    }
}

fn offer(heap: &mut BinaryHeap<HeapEntry>, k: usize, doc: u32, score: f32) {
    heap.push(HeapEntry { doc, score });
    if heap.len() > k {
        heap.pop();
    }
}

/// Min-heap entry replicating `kglink_search::index`'s top-k semantics:
/// pop the smallest score first, and among equal scores the *larger* doc
/// id, so the k survivors are exactly the in-memory ones.
struct HeapEntry {
    doc: u32,
    score: f32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| self.doc.cmp(&other.doc))
    }
}

#[derive(Debug)]
struct BlockHead {
    count: usize,
    first: u32,
    last: u32,
    max: f32,
    payload_start: usize,
    payload_len: usize,
}

/// A decode cursor over one term's posting bytes.
struct Cursor {
    bytes: Arc<Vec<u8>>,
    /// Byte position of the next unread block header.
    pos: usize,
    idf: f32,
    /// Last doc id of the last consumed or skipped block.
    prev_last: u32,
    /// Decoded current block.
    docs: Vec<u32>,
    tfs: Vec<u32>,
    i: usize,
    block_max: f32,
    exhausted: bool,
}

impl Cursor {
    fn new(bytes: Arc<Vec<u8>>, idf: f32) -> Self {
        Cursor {
            bytes,
            pos: 0,
            idf,
            prev_last: 0,
            docs: Vec::new(),
            tfs: Vec::new(),
            i: 0,
            block_max: 0.0,
            exhausted: false,
        }
    }

    fn current_doc(&self) -> u32 {
        self.docs[self.i]
    }

    fn current_tf(&self) -> u32 {
        self.tfs[self.i]
    }

    /// Decode the next block's header without touching its payload.
    fn peek_head(&self) -> Result<Option<BlockHead>, StoreError> {
        if self.pos >= self.bytes.len() {
            return Ok(None);
        }
        let bytes = &self.bytes[..];
        let mut p = self.pos;
        let count = get_count(bytes, &mut p, MAX_BLOCK_POSTINGS)?;
        if count == 0 {
            return Err(StoreError::Corrupt("empty posting block".into()));
        }
        let delta = get_uv32(bytes, &mut p)?;
        let span = get_uv32(bytes, &mut p)?;
        let max_bytes = bytes.get(p..p + 4).ok_or(StoreError::Truncated)?;
        let max = f32::from_le_bytes([max_bytes[0], max_bytes[1], max_bytes[2], max_bytes[3]]);
        p += 4;
        let remaining = bytes.len().saturating_sub(p);
        let payload_len = get_count(bytes, &mut p, remaining)?;
        let first = self
            .prev_last
            .checked_add(delta)
            .ok_or_else(|| StoreError::Corrupt("doc id overflows u32".into()))?;
        let last = first
            .checked_add(span)
            .ok_or_else(|| StoreError::Corrupt("doc id overflows u32".into()))?;
        Ok(Some(BlockHead {
            count,
            first,
            last,
            max,
            payload_start: p,
            payload_len,
        }))
    }

    /// Jump past an undecoded block.
    fn skip_block(&mut self, head: &BlockHead) {
        self.pos = head.payload_start + head.payload_len;
        self.prev_last = head.last;
    }

    /// Decode a block's payload into the cursor.
    fn load_block(&mut self, head: &BlockHead) -> Result<(), StoreError> {
        let end = head.payload_start + head.payload_len;
        let bytes = &self.bytes[..];
        let mut p = head.payload_start;
        self.docs.clear();
        self.tfs.clear();
        self.docs.push(head.first);
        let mut prev = head.first;
        for _ in 1..head.count {
            let gap = get_uv32(bytes, &mut p)?;
            prev = prev
                .checked_add(gap)
                .ok_or_else(|| StoreError::Corrupt("doc id overflows u32".into()))?;
            self.docs.push(prev);
        }
        if prev != head.last {
            return Err(StoreError::Corrupt(format!(
                "block ends at doc {prev}, header says {}",
                head.last
            )));
        }
        for _ in 0..head.count {
            self.tfs.push(get_uv32(bytes, &mut p)?);
        }
        if p != end {
            return Err(StoreError::Corrupt(format!(
                "block payload has {} undecoded bytes",
                end as i64 - p as i64
            )));
        }
        self.i = 0;
        self.block_max = head.max;
        self.pos = end;
        self.prev_last = head.last;
        Ok(())
    }

    /// Advance one posting, entering the next block as needed.
    fn step(&mut self) -> Result<(), StoreError> {
        self.i += 1;
        if self.i >= self.docs.len() {
            self.enter_next_block()?;
        }
        Ok(())
    }

    fn enter_next_block(&mut self) -> Result<(), StoreError> {
        match self.peek_head()? {
            None => {
                self.exhausted = true;
                Ok(())
            }
            Some(head) => self.load_block(&head),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_search::InvertedIndex;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "kglink-store-bm25-{tag}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// Corpus of (doc, field text) pairs, doc-ascending.
    fn corpus() -> Vec<(u32, String)> {
        let words = ["peter", "steele", "rust", "album", "band", "city"];
        let mut docs = Vec::new();
        for i in 0u32..400 {
            let a = words[(i % 6) as usize];
            let b = words[((i / 6) % 6) as usize];
            docs.push((i, format!("{a} {b} item{i}")));
            if i % 3 == 0 {
                docs.push((i, format!("alias {a}")));
            }
        }
        docs
    }

    fn build_both(docs: &[(u32, String)], spill: usize) -> (InvertedIndex, Bm25Segment, PathBuf) {
        let mut idx = InvertedIndex::new(Bm25Params::default());
        for (d, t) in docs {
            idx.add_document(*d, t);
        }
        idx.finish();
        let dir = tmpdir(&format!("build-{spill}"));
        let path = dir.join(BM25_FILE);
        let mut b = Bm25SegBuilder::create(&path, Bm25Params::default(), spill);
        for (d, t) in docs {
            b.add_doc(*d, t).unwrap();
        }
        b.finish().unwrap();
        (idx, Bm25Segment::open(&path).unwrap(), dir)
    }

    #[test]
    fn disk_search_is_bit_identical_to_memory() {
        let docs = corpus();
        let (idx, seg, dir) = build_both(&docs, usize::MAX);
        let cache = BlockCache::new(1 << 20, 2);
        for query in ["peter steele", "rust", "album band city", "item7", "zzz", ""] {
            for k in [1, 3, 10, 50] {
                let mem = idx.search(query, k);
                let disk = seg.search(query, k, &cache).unwrap();
                assert_eq!(mem.len(), disk.len(), "{query} k={k}");
                for (m, d) in mem.iter().zip(&disk) {
                    assert_eq!(m.doc, d.0, "{query} k={k}");
                    assert_eq!(m.score.to_bits(), d.1.to_bits(), "{query} k={k}");
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spilling_builder_produces_the_same_segment_results() {
        let docs = corpus();
        let (_, seg_nospill, dir1) = build_both(&docs, usize::MAX);
        // A 50-posting budget forces many runs through the merge path.
        let (_, seg_spill, dir2) = build_both(&docs, 50);
        let cache = BlockCache::new(1 << 20, 2);
        assert_eq!(seg_nospill.term_count(), seg_spill.term_count());
        assert_eq!(seg_nospill.doc_count(), seg_spill.doc_count());
        for query in ["peter steele", "rust album", "item11 city"] {
            let a = seg_nospill.search(query, 10, &cache).unwrap();
            let b = seg_spill.search(query, 10, &cache).unwrap();
            assert_eq!(a, b, "{query}");
        }
        // No run scratch left behind.
        assert!(!dir2.join("index.runs").exists());
        std::fs::remove_dir_all(&dir1).unwrap();
        std::fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn block_max_skipping_engages_and_stays_exact() {
        // One common term over many docs of increasing length: scores fall
        // with id, so later blocks cannot beat an established top-3.
        let mut docs = Vec::new();
        for i in 0u32..800 {
            let pad: String = (0..(i as usize / 4 + 1)).map(|j| format!(" w{j}")).collect();
            docs.push((i, format!("common{pad}")));
        }
        let (idx, seg, dir) = build_both(&docs, usize::MAX);
        let cache = BlockCache::new(1 << 20, 2);
        let (hits, stats) = seg.search_with_stats("common", 3, &cache).unwrap();
        let mem = idx.search("common", 3);
        assert_eq!(hits.len(), mem.len());
        for (m, d) in mem.iter().zip(&hits) {
            assert_eq!((m.doc, m.score.to_bits()), (d.0, d.1.to_bits()));
        }
        assert!(
            stats.skipped_docs > 0,
            "skipping never engaged: {stats:?}"
        );
        assert!(
            stats.scored_docs + stats.skipped_docs == 800,
            "every posting accounted for: {stats:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_classes_fail_typed() {
        let docs = corpus();
        let (_, _, dir) = build_both(&docs, usize::MAX);
        let path = dir.join(BM25_FILE);
        let orig = std::fs::read(&path).unwrap();

        let mut bad = orig.clone();
        bad[0] = b'x';
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            Bm25Segment::open(&path),
            Err(StoreError::BadMagic { expected: "KGBM" })
        ));

        let mut bad = orig.clone();
        bad[4] = 7;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            Bm25Segment::open(&path),
            Err(StoreError::WrongVersion { found: 7, expected: VERSION })
        ));

        let mut bad = orig.clone();
        bad[20] ^= 1; // inside the CRC'd header region
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            Bm25Segment::open(&path),
            Err(StoreError::CrcMismatch { .. })
        ));

        std::fs::write(&path, &orig[..HEADER_LEN + 3]).unwrap();
        assert!(matches!(
            Bm25Segment::open(&path),
            Err(StoreError::Truncated)
        ));

        // A bit flip in the postings section passes open (lazy) but fails
        // the term's CRC at query time.
        let mut bad = orig.clone();
        bad[HEADER_LEN + 2] ^= 0x10;
        std::fs::write(&path, &bad).unwrap();
        let seg = Bm25Segment::open(&path).unwrap();
        let cache = BlockCache::new(1 << 20, 1);
        let mut saw_crc_error = false;
        for q in ["peter", "steele", "rust", "album", "band", "city"] {
            if matches!(
                seg.search(q, 5, &cache),
                Err(StoreError::CrcMismatch { .. })
            ) {
                saw_crc_error = true;
            }
        }
        assert!(saw_crc_error, "flipped posting byte never surfaced");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_order_docs_and_terms_are_rejected() {
        let dir = tmpdir("order");
        let mut b = Bm25SegBuilder::create(&dir.join(BM25_FILE), Bm25Params::default(), 10);
        b.add_doc(5, "alpha").unwrap();
        assert!(matches!(b.add_doc(4, "beta"), Err(StoreError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
