//! LEB128 variable-length integers and length-prefixed strings.
//!
//! Posting lists and entity records are dominated by small integers (doc-id
//! gaps, term frequencies, edge targets near their source), so the store
//! encodes every integer as a little-endian base-128 varint: 7 payload bits
//! per byte, high bit = continuation. Decoding is bounds-checked and returns
//! typed [`StoreError`]s — corrupt bytes must never panic a reader.

use crate::error::StoreError;

/// Maximum encoded length of a `u64` (`ceil(64 / 7)`).
pub const MAX_VARINT_LEN: usize = 10;

/// Append `v` to `buf` as a LEB128 varint.
#[inline]
pub fn put_uv(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Decode a varint at `*pos`, advancing `*pos` past it.
#[inline]
pub fn get_uv(bytes: &[u8], pos: &mut usize) -> Result<u64, StoreError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*pos).ok_or(StoreError::Truncated)?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return Err(StoreError::Corrupt("varint overflows u64".into()));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(StoreError::Corrupt("varint longer than 10 bytes".into()));
        }
    }
}

/// Decode a varint that must fit a `u32`.
#[inline]
pub fn get_uv32(bytes: &[u8], pos: &mut usize) -> Result<u32, StoreError> {
    let v = get_uv(bytes, pos)?;
    u32::try_from(v).map_err(|_| StoreError::Corrupt(format!("varint {v} overflows u32")))
}

/// Decode a varint bounded by `limit` (record counts, lengths): anything
/// larger is structurally impossible and fails typed instead of driving an
/// allocation from attacker-controlled bytes.
#[inline]
pub fn get_count(bytes: &[u8], pos: &mut usize, limit: usize) -> Result<usize, StoreError> {
    let v = get_uv(bytes, pos)?;
    if v > limit as u64 {
        return Err(StoreError::Corrupt(format!("count {v} exceeds bound {limit}")));
    }
    Ok(v as usize)
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_uv(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Decode a length-prefixed UTF-8 string.
pub fn get_str(bytes: &[u8], pos: &mut usize) -> Result<String, StoreError> {
    let len = get_count(bytes, pos, bytes.len())?;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or(StoreError::Truncated)?;
    let s = std::str::from_utf8(&bytes[*pos..end])
        .map_err(|_| StoreError::Corrupt("string is not UTF-8".into()))?
        .to_string();
    *pos = end;
    Ok(s)
}

/// Skip a length-prefixed string without allocating.
pub fn skip_str(bytes: &[u8], pos: &mut usize) -> Result<(), StoreError> {
    let len = get_count(bytes, pos, bytes.len())?;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or(StoreError::Truncated)?;
    *pos = end;
    Ok(())
}

/// Incremental CRC32 (IEEE 802.3, reflected) — the same polynomial and test
/// vectors as `kglink_nn::checkpoint::crc32`, restated here in streaming
/// form so segment writers can hash multi-megabyte sections as they go
/// instead of buffering them.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: !0u32 }
    }

    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &byte in data {
            crc ^= byte as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xedb8_8320 & mask);
            }
        }
        self.state = crc;
    }

    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC32 of a slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_uv(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_uv(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_and_overlong_varints_fail_typed() {
        let mut pos = 0;
        assert_eq!(get_uv(&[0x80], &mut pos), Err(StoreError::Truncated));
        let overlong = [0x80u8; 11];
        let mut pos = 0;
        assert!(matches!(get_uv(&overlong, &mut pos), Err(StoreError::Corrupt(_))));
        // 10-byte varint whose last byte sets bits beyond 64 overflows.
        let mut too_big = vec![0xffu8; 9];
        too_big.push(0x02);
        let mut pos = 0;
        assert!(matches!(get_uv(&too_big, &mut pos), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn strings_round_trip_and_reject_bad_bytes() {
        let mut buf = Vec::new();
        put_str(&mut buf, "Peter Steele");
        put_str(&mut buf, "");
        let mut pos = 0;
        assert_eq!(get_str(&buf, &mut pos).unwrap(), "Peter Steele");
        assert_eq!(get_str(&buf, &mut pos).unwrap(), "");
        assert_eq!(pos, buf.len());
        // Declared length running past the buffer is truncation.
        let mut bad = Vec::new();
        put_uv(&mut bad, 100);
        bad.extend_from_slice(b"short");
        let mut pos = 0;
        assert!(get_str(&bad, &mut pos).is_err());
        // Invalid UTF-8 is corruption, not a panic.
        let mut bad = Vec::new();
        put_uv(&mut bad, 2);
        bad.extend_from_slice(&[0xff, 0xfe]);
        let mut pos = 0;
        assert!(matches!(get_str(&bad, &mut pos), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn skip_matches_get() {
        let mut buf = Vec::new();
        put_str(&mut buf, "alpha");
        put_uv(&mut buf, 7);
        let mut p1 = 0;
        let mut p2 = 0;
        get_str(&buf, &mut p1).unwrap();
        skip_str(&buf, &mut p2).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn crc_matches_the_checkpoint_implementation() {
        // Standard IEEE test vector, same as checkpoint.rs pins.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        // Streaming in pieces equals one-shot.
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"56789");
        assert_eq!(c.finish(), 0xcbf4_3926);
    }

    #[test]
    fn count_guard_bounds_allocations() {
        let mut buf = Vec::new();
        put_uv(&mut buf, 1_000_000);
        let mut pos = 0;
        assert!(matches!(
            get_count(&buf, &mut pos, 1024),
            Err(StoreError::Corrupt(_))
        ));
    }
}
