//! Disk-backed implementations of the pipeline's two abstraction seams:
//! [`DiskGraph`] behind [`kglink_kg::GraphAccess`] and [`DiskBackend`]
//! behind [`kglink_search::KgBackend`].
//!
//! Both follow the same two-tier error contract: inherent `try_*` methods
//! surface every [`StoreError`] typed, while the trait facades *degrade*
//! failures to the paper's no-linkage semantics (empty results, default
//! placeholders) and count them on an atomic — the pipeline never sees a
//! panic or an `Err` it has no recovery for, and `exp_scale` asserts the
//! counters stayed at zero on healthy worlds. This mirrors how
//! `KgBackend::link_mention` already treats retrieval failure.
//!
//! The trait facades make these drop-in replacements: an
//! `Arc<DiskGraph>` goes wherever an in-memory graph went, and a
//! `DiskBackend` composes under `ResilientBackend`/`CachingBackend`
//! exactly like `EntitySearcher` does. On small worlds the results are
//! bit-identical (the transparency proptests pin both seams); the only
//! observable difference is that the world no longer has to fit in RAM.

use crate::blockcache::{BlockCache, BlockCacheStats};
use crate::bm25seg::{Bm25Segment, QueryStats, BM25_FILE};
use crate::error::StoreError;
use crate::manifest::Manifest;
use crate::segment::{shard_file_name, EntityRecord, Segment};
use kglink_kg::{Entity, EntityId, GraphAccess, NeSchema, PredicateId};
use kglink_search::backend::{Deadline, KgBackend, RetrievalError, SearchOutcome};
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default block-cache budget for a [`DiskGraph`]: enough for a hot
/// working set, far below any interesting world size.
pub const DEFAULT_GRAPH_CACHE_BYTES: usize = 64 << 20;
/// Default posting-cache budget for a [`DiskBackend`].
pub const DEFAULT_BM25_CACHE_BYTES: usize = 64 << 20;

/// A sharded, disk-backed knowledge graph.
///
/// Entity id `i` lives in shard `i / per_shard` at local offset
/// `i % per_shard`; each lookup touches one cached block. Resident memory
/// is the manifest, the per-shard block indexes, and the block cache —
/// independent of world size.
#[derive(Debug)]
pub struct DiskGraph {
    manifest: Manifest,
    shards: Vec<Segment>,
    cache: BlockCache,
    errors: AtomicU64,
}

impl DiskGraph {
    /// Open a world directory with the default cache budget.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        Self::open_with_cache(dir, DEFAULT_GRAPH_CACHE_BYTES)
    }

    /// Open a world directory, bounding the block cache to `cache_bytes`.
    pub fn open_with_cache(dir: &Path, cache_bytes: usize) -> Result<Self, StoreError> {
        let manifest = Manifest::read(dir)?;
        let mut shards = Vec::with_capacity(manifest.n_shards as usize);
        for i in 0..manifest.n_shards {
            let seg = Segment::open(&dir.join(shard_file_name(i)))?;
            if seg.shard_index() != i {
                return Err(StoreError::Corrupt(format!(
                    "shard file {i} claims index {}",
                    seg.shard_index()
                )));
            }
            let expect_first = i as u64 * u64::from(manifest.per_shard);
            if u64::from(seg.first_id()) != expect_first {
                return Err(StoreError::Corrupt(format!(
                    "shard {i} starts at entity {} instead of {expect_first}",
                    seg.first_id()
                )));
            }
            let expect_records = (manifest.n_entities - expect_first)
                .min(u64::from(manifest.per_shard));
            if u64::from(seg.n_records()) != expect_records {
                return Err(StoreError::Corrupt(format!(
                    "shard {i} holds {} records, manifest implies {expect_records}",
                    seg.n_records()
                )));
            }
            shards.push(seg);
        }
        Ok(DiskGraph {
            manifest,
            shards,
            cache: BlockCache::new(cache_bytes, 8),
            errors: AtomicU64::new(0),
        })
    }

    /// The world manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Failures degraded by the `GraphAccess` facade so far.
    pub fn error_count(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Block-cache counters.
    pub fn cache_stats(&self) -> BlockCacheStats {
        self.cache.stats()
    }

    fn locate(&self, id: EntityId) -> Result<(&Segment, u32), StoreError> {
        let idx = u64::from(id.0);
        if idx >= self.manifest.n_entities {
            return Err(StoreError::UnknownEntity {
                id: id.0,
                n_entities: self.manifest.n_entities,
            });
        }
        let shard = (idx / u64::from(self.manifest.per_shard)) as usize;
        let local = (idx % u64::from(self.manifest.per_shard)) as u32;
        Ok((&self.shards[shard], local))
    }

    /// Full record — entity plus both adjacency directions.
    pub fn try_record(&self, id: EntityId) -> Result<EntityRecord, StoreError> {
        let (seg, local) = self.locate(id)?;
        seg.read_record(local, &self.cache)
    }

    /// Entity fields without the edge lists.
    pub fn try_entity(&self, id: EntityId) -> Result<Entity, StoreError> {
        let (seg, local) = self.locate(id)?;
        seg.read_entity(local, &self.cache)
    }

    /// Label only.
    pub fn try_label(&self, id: EntityId) -> Result<String, StoreError> {
        let (seg, local) = self.locate(id)?;
        seg.read_label(local, &self.cache)
    }

    /// `(schema, is_type)` only.
    pub fn try_schema(&self, id: EntityId) -> Result<(NeSchema, bool), StoreError> {
        let (seg, local) = self.locate(id)?;
        seg.read_schema(local, &self.cache)
    }

    /// One-hop neighborhood, replicating `KnowledgeGraph::one_hop`
    /// (either direction, deduplicated, sorted, self removed).
    pub fn try_one_hop(&self, id: EntityId) -> Result<Vec<EntityId>, StoreError> {
        let rec = self.try_record(id)?;
        let mut set: BTreeSet<EntityId> = BTreeSet::new();
        for e in rec.outgoing.iter().chain(rec.incoming.iter()) {
            set.insert(e.target);
        }
        set.remove(&id);
        Ok(set.into_iter().collect())
    }

    /// One-hop neighborhood with predicates, replicating
    /// `KnowledgeGraph::one_hop_with_predicates` (outgoing then incoming,
    /// self-loops dropped, sorted by predicate *name* then target, deduped).
    pub fn try_one_hop_with_predicates(
        &self,
        id: EntityId,
    ) -> Result<Vec<(PredicateId, EntityId)>, StoreError> {
        let rec = self.try_record(id)?;
        let mut pairs: Vec<(PredicateId, EntityId)> = rec
            .outgoing
            .iter()
            .chain(rec.incoming.iter())
            .map(|e| (e.predicate, e.target))
            .filter(|&(_, t)| t != id)
            .collect();
        for &(p, _) in &pairs {
            if usize::from(p.0) >= self.manifest.predicates.len() {
                return Err(StoreError::Corrupt(format!(
                    "edge predicate {p} outside the vocabulary"
                )));
            }
        }
        pairs.sort_unstable_by(|a, b| {
            self.manifest.predicates[usize::from(a.0 .0)]
                .cmp(&self.manifest.predicates[usize::from(b.0 .0)])
                .then(a.1.cmp(&b.1))
        });
        pairs.dedup();
        Ok(pairs)
    }

    fn try_targets_of(
        &self,
        id: EntityId,
        predicate: Option<PredicateId>,
    ) -> Result<Vec<EntityId>, StoreError> {
        let Some(p) = predicate else {
            return Ok(Vec::new());
        };
        let rec = self.try_record(id)?;
        Ok(rec
            .outgoing
            .iter()
            .filter(|e| e.predicate == p)
            .map(|e| e.target)
            .collect())
    }

    /// Targets of `instance of` edges, in insertion order.
    pub fn try_types_of(&self, id: EntityId) -> Result<Vec<EntityId>, StoreError> {
        self.try_targets_of(id, self.manifest.instance_of)
    }

    /// Targets of `subclass of` edges, in insertion order.
    pub fn try_superclasses_of(&self, id: EntityId) -> Result<Vec<EntityId>, StoreError> {
        self.try_targets_of(id, self.manifest.subclass_of)
    }

    fn degrade<T>(&self, r: Result<T, StoreError>, default: T) -> T {
        match r {
            Ok(v) => v,
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                default
            }
        }
    }
}

impl GraphAccess for DiskGraph {
    fn entity_count(&self) -> usize {
        self.manifest.n_entities as usize
    }

    fn entity(&self, id: EntityId) -> Entity {
        let r = self.try_entity(id);
        self.degrade(r, Entity::new("", NeSchema::Other))
    }

    fn label(&self, id: EntityId) -> String {
        let r = self.try_label(id);
        self.degrade(r, String::new())
    }

    fn schema_of(&self, id: EntityId) -> NeSchema {
        let r = self.try_schema(id).map(|(s, _)| s);
        self.degrade(r, NeSchema::Other)
    }

    fn predicate_name(&self, p: PredicateId) -> String {
        match self.manifest.predicates.get(usize::from(p.0)) {
            Some(name) => name.clone(),
            None => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                String::new()
            }
        }
    }

    fn one_hop(&self, id: EntityId) -> Vec<EntityId> {
        let r = self.try_one_hop(id);
        self.degrade(r, Vec::new())
    }

    fn one_hop_with_predicates(&self, id: EntityId) -> Vec<(PredicateId, EntityId)> {
        let r = self.try_one_hop_with_predicates(id);
        self.degrade(r, Vec::new())
    }

    fn types_of(&self, id: EntityId) -> Vec<EntityId> {
        let r = self.try_types_of(id);
        self.degrade(r, Vec::new())
    }

    fn superclasses_of(&self, id: EntityId) -> Vec<EntityId> {
        let r = self.try_superclasses_of(id);
        self.degrade(r, Vec::new())
    }
}

/// Accumulated block-max work counters across a backend's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendStats {
    pub queries: u64,
    pub scored_docs: u64,
    pub skipped_docs: u64,
    pub skipped_blocks: u64,
    /// Queries degraded to empty results by the `KgBackend` facade.
    pub errors: u64,
}

/// The on-disk BM25 index as a retrieval backend.
///
/// `search_entities` succeeds like `EntitySearcher` does (zero simulated
/// latency, `truncated: false`); a [`StoreError`] degrades to an *empty,
/// truncated* outcome plus an error count rather than a `RetrievalError`,
/// because the trait's error vocabulary describes transient service
/// faults, not durable data corruption — retrying a corrupt segment
/// cannot help, so the breaker must not trip on it.
#[derive(Debug)]
pub struct DiskBackend {
    seg: Bm25Segment,
    cache: BlockCache,
    queries: AtomicU64,
    scored: AtomicU64,
    skipped: AtomicU64,
    skipped_blocks: AtomicU64,
    errors: AtomicU64,
}

impl DiskBackend {
    /// Open the BM25 segment of a world directory.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        Self::open_with_cache(dir, DEFAULT_BM25_CACHE_BYTES)
    }

    /// Open with an explicit posting-cache budget.
    pub fn open_with_cache(dir: &Path, cache_bytes: usize) -> Result<Self, StoreError> {
        let seg = Bm25Segment::open(&dir.join(BM25_FILE))?;
        Ok(DiskBackend {
            seg,
            cache: BlockCache::new(cache_bytes, 8),
            queries: AtomicU64::new(0),
            scored: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            skipped_blocks: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        })
    }

    /// The underlying segment.
    pub fn segment(&self) -> &Bm25Segment {
        &self.seg
    }

    /// Typed search: every store failure surfaces.
    pub fn try_search(
        &self,
        query: &str,
        top_k: usize,
    ) -> Result<Vec<(EntityId, f32)>, StoreError> {
        let (hits, stats) = self.seg.search_with_stats(query, top_k, &self.cache)?;
        self.record(stats);
        Ok(hits.into_iter().map(|(d, s)| (EntityId(d), s)).collect())
    }

    fn record(&self, s: QueryStats) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.scored.fetch_add(s.scored_docs, Ordering::Relaxed);
        self.skipped.fetch_add(s.skipped_docs, Ordering::Relaxed);
        self.skipped_blocks
            .fetch_add(s.skipped_blocks, Ordering::Relaxed);
    }

    /// Lifetime counters.
    pub fn stats(&self) -> BackendStats {
        BackendStats {
            queries: self.queries.load(Ordering::Relaxed),
            scored_docs: self.scored.load(Ordering::Relaxed),
            skipped_docs: self.skipped.load(Ordering::Relaxed),
            skipped_blocks: self.skipped_blocks.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }

    /// Failures degraded by the `KgBackend` facade so far.
    pub fn error_count(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Posting-cache counters.
    pub fn cache_stats(&self) -> BlockCacheStats {
        self.cache.stats()
    }
}

impl KgBackend for DiskBackend {
    fn search_entities(
        &self,
        query: &str,
        top_k: usize,
        _deadline: Deadline,
    ) -> Result<SearchOutcome, RetrievalError> {
        match self.try_search(query, top_k) {
            Ok(hits) => Ok(SearchOutcome {
                hits,
                latency_us: 0,
                truncated: false,
            }),
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                Ok(SearchOutcome {
                    hits: Vec::new(),
                    latency_us: 0,
                    truncated: true,
                })
            }
        }
    }
}
