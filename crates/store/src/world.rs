//! Building and opening complete on-disk worlds.
//!
//! A *world directory* is the unit a pipeline opens: N entity shards
//! (`entities-NNNNN.kges`), one BM25 segment (`index.kgbm`), and the
//! manifest (`world.kgsm`) that commits them. [`WorldWriter`] streams a
//! world to disk in bounded memory — entities arrive once, in id order,
//! and are never all resident; [`write_graph`] converts an in-memory
//! [`KnowledgeGraph`] (the transparency baseline); [`DiskWorld`] opens the
//! result as the `GraphAccess` + `KgBackend` pair the pipeline consumes.
//!
//! Crash safety composes from the segment layer: every file is published
//! by temp → fsync → rename, the manifest is written last, and
//! [`WorldWriter::new`] deletes any *stale* manifest up front — so a crash
//! during a rebuild can never pair an old manifest with new shards.
//!
//! Identifier discipline: entity ids are assigned densely in arrival
//! order (exactly like `KnowledgeGraph::add_entity`), and predicate ids in
//! interning order (exactly like `intern_predicate`, including `instance
//! of` / `subclass of` detection). Edges may reference entities not yet
//! written — block generators emit forward references to a core type set
//! at the end of the id space — and [`WorldWriter::finish`] verifies every
//! reference landed inside the world.

use crate::backend::{DiskBackend, DiskGraph};
use crate::bm25seg::{Bm25SegBuilder, BM25_FILE, DEFAULT_SPILL_POSTINGS};
use crate::error::StoreError;
use crate::manifest::{Manifest, MANIFEST_FILE};
use crate::segment::{shard_file_name, SegmentWriter};
use kglink_kg::{predicates, Edge, Entity, EntityId, KnowledgeGraph, PredicateId};
use kglink_search::Bm25Params;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Geometry and indexing knobs for a world build.
#[derive(Debug, Clone)]
pub struct WorldWriterConfig {
    /// Entities per shard. 65 536 keeps shard files ≈ tens of MB at
    /// typical record sizes.
    pub per_shard: u32,
    /// BM25 parameters baked into the index segment.
    pub bm25: Bm25Params,
    /// Posting budget before the BM25 builder spills a run to disk.
    pub spill_postings: usize,
}

impl Default for WorldWriterConfig {
    fn default() -> Self {
        WorldWriterConfig {
            per_shard: 65_536,
            bm25: Bm25Params::default(),
            spill_postings: DEFAULT_SPILL_POSTINGS,
        }
    }
}

/// Streaming writer for a world directory.
#[derive(Debug)]
pub struct WorldWriter {
    dir: PathBuf,
    cfg: WorldWriterConfig,
    predicates: Vec<String>,
    instance_of: Option<PredicateId>,
    subclass_of: Option<PredicateId>,
    shard: Option<SegmentWriter>,
    next_shard: u32,
    next_id: u32,
    /// Highest entity id any edge referenced (forward references allowed).
    max_ref: Option<u32>,
    bm25: Bm25SegBuilder,
}

impl WorldWriter {
    /// Start a world build in `dir` (created if missing). Any manifest
    /// left by a previous build is removed immediately, so the directory
    /// cannot be opened as a world until [`WorldWriter::finish`] commits.
    pub fn new(dir: &Path, cfg: WorldWriterConfig) -> Result<Self, StoreError> {
        if cfg.per_shard == 0 {
            return Err(StoreError::Corrupt("per_shard must be positive".into()));
        }
        std::fs::create_dir_all(dir)?;
        let stale = dir.join(MANIFEST_FILE);
        if stale.exists() {
            std::fs::remove_file(&stale)?;
        }
        let bm25 = Bm25SegBuilder::create(&dir.join(BM25_FILE), cfg.bm25, cfg.spill_postings);
        Ok(WorldWriter {
            dir: dir.to_path_buf(),
            cfg,
            predicates: Vec::new(),
            instance_of: None,
            subclass_of: None,
            shard: None,
            next_shard: 0,
            next_id: 0,
            max_ref: None,
            bm25,
        })
    }

    /// Register (or look up) a predicate by name — same id assignment and
    /// special-predicate detection as `KnowledgeGraph::intern_predicate`.
    pub fn intern_predicate(&mut self, name: &str) -> Result<PredicateId, StoreError> {
        if let Some(pos) = self.predicates.iter().position(|p| p == name) {
            return Ok(PredicateId(pos as u16));
        }
        let id = PredicateId(u16::try_from(self.predicates.len()).map_err(|_| {
            StoreError::Corrupt("more than u16::MAX predicates".into())
        })?);
        self.predicates.push(name.to_string());
        if name == predicates::INSTANCE_OF {
            self.instance_of = Some(id);
        } else if name == predicates::SUBCLASS_OF {
            self.subclass_of = Some(id);
        }
        Ok(id)
    }

    /// Append the next entity (ids are dense, in arrival order) together
    /// with both adjacency directions. Edge targets may point forward to
    /// ids not yet written; predicates must already be interned.
    pub fn add_entity(
        &mut self,
        entity: &Entity,
        outgoing: &[Edge],
        incoming: &[Edge],
    ) -> Result<EntityId, StoreError> {
        let id = self.next_id;
        for e in outgoing.iter().chain(incoming.iter()) {
            if usize::from(e.predicate.0) >= self.predicates.len() {
                return Err(StoreError::Corrupt(format!(
                    "edge on entity Q{id} uses uninterned predicate {}",
                    e.predicate
                )));
            }
            self.max_ref = Some(self.max_ref.map_or(e.target.0, |m| m.max(e.target.0)));
        }
        if self.shard.is_none() {
            let path = self.dir.join(shard_file_name(self.next_shard));
            self.shard = Some(SegmentWriter::create(
                &path,
                self.next_shard,
                self.next_id,
            )?);
        }
        // kglink-lint: allow(panic-in-lib) — just populated above.
        let shard = self.shard.as_mut().expect("open shard");
        shard.push(entity, outgoing, incoming)?;
        self.bm25.add_doc(id, &entity.label)?;
        for alias in &entity.aliases {
            self.bm25.add_doc(id, alias)?;
        }
        self.next_id = self.next_id.checked_add(1).ok_or_else(|| {
            StoreError::Corrupt("more than u32::MAX entities".into())
        })?;
        if self.next_id.is_multiple_of(self.cfg.per_shard) {
            // kglink-lint: allow(panic-in-lib) — a record was just pushed,
            // so the shard writer exists.
            let full = self.shard.take().expect("open shard");
            full.finish()?;
            self.next_shard += 1;
        }
        Ok(EntityId(id))
    }

    /// Number of entities written so far.
    pub fn entity_count(&self) -> u64 {
        u64::from(self.next_id)
    }

    /// Seal the world: close the open shard, commit the BM25 segment, and
    /// write the manifest (the commit point). Fails typed if any edge
    /// referenced an entity that was never written.
    pub fn finish(mut self) -> Result<Manifest, StoreError> {
        if let Some(m) = self.max_ref {
            if m >= self.next_id {
                return Err(StoreError::Corrupt(format!(
                    "an edge references entity Q{m} but only {} entities were written",
                    self.next_id
                )));
            }
        }
        if let Some(shard) = self.shard.take() {
            shard.finish()?;
            self.next_shard += 1;
        }
        let stats = self.bm25.finish()?;
        let manifest = Manifest {
            n_entities: u64::from(self.next_id),
            per_shard: self.cfg.per_shard,
            n_shards: self.next_shard,
            predicates: self.predicates,
            instance_of: self.instance_of,
            subclass_of: self.subclass_of,
            bm25: stats,
        };
        manifest.write(&self.dir)?;
        Ok(manifest)
    }
}

/// Convert an in-memory graph to a world directory. Entity and predicate
/// ids carry over unchanged (both stores assign them densely in order), so
/// results from the disk world are directly comparable to the source graph
/// — the transparency tests depend on this.
pub fn write_graph(
    dir: &Path,
    graph: &KnowledgeGraph,
    cfg: WorldWriterConfig,
) -> Result<Manifest, StoreError> {
    let mut w = WorldWriter::new(dir, cfg)?;
    for i in 0..graph.predicate_count() {
        let p = PredicateId(i as u16);
        let interned = w.intern_predicate(graph.predicate_name(p))?;
        if interned != p {
            return Err(StoreError::Corrupt(format!(
                "predicate {p} re-interned as {interned}"
            )));
        }
    }
    for (id, entity) in graph.entities() {
        let got = w.add_entity(entity, graph.outgoing(id), graph.incoming(id))?;
        if got != id {
            return Err(StoreError::Corrupt(format!(
                "entity {id} re-assigned as {got}"
            )));
        }
    }
    w.finish()
}

/// An opened world: the disk graph and the disk retrieval backend, shared
/// the way the pipeline consumes them.
#[derive(Debug, Clone)]
pub struct DiskWorld {
    pub graph: Arc<DiskGraph>,
    pub backend: Arc<DiskBackend>,
}

impl DiskWorld {
    /// Open a world directory with default cache budgets.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        Ok(DiskWorld {
            graph: Arc::new(DiskGraph::open(dir)?),
            backend: Arc::new(DiskBackend::open(dir)?),
        })
    }

    /// Open with explicit block-cache budgets (graph bytes, BM25 bytes).
    pub fn open_with_caches(
        dir: &Path,
        graph_cache_bytes: usize,
        bm25_cache_bytes: usize,
    ) -> Result<Self, StoreError> {
        Ok(DiskWorld {
            graph: Arc::new(DiskGraph::open_with_cache(dir, graph_cache_bytes)?),
            backend: Arc::new(DiskBackend::open_with_cache(dir, bm25_cache_bytes)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_kg::{GraphAccess, KgBuilder, NeSchema};
    use kglink_search::EntitySearcher;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "kglink-store-world-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn toy_graph() -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        let musician = b.add_type("Musician", None);
        let album = b.add_type("Album", None);
        let steele = b.add_instance(
            Entity::new("Peter Steele", NeSchema::Person).with_alias("P. Steele"),
            musician,
        );
        let rust_album = b.add_instance(Entity::new("Rust", NeSchema::Work), album);
        let mut g = b.build();
        let performer = g.intern_predicate(predicates::PERFORMER);
        g.add_edge(rust_album, performer, steele);
        g
    }

    #[test]
    fn graph_round_trips_through_disk() {
        let dir = tmpdir("roundtrip");
        let g = toy_graph();
        // Tiny shards exercise the multi-shard path even on a toy world.
        let cfg = WorldWriterConfig {
            per_shard: 2,
            ..WorldWriterConfig::default()
        };
        let manifest = write_graph(&dir, &g, cfg).unwrap();
        assert_eq!(manifest.n_entities, g.len() as u64);
        assert_eq!(manifest.n_shards, g.len().div_ceil(2) as u32);
        let world = DiskWorld::open(&dir).unwrap();
        assert_eq!(world.graph.entity_count(), g.len());
        for (id, entity) in g.entities() {
            assert_eq!(world.graph.entity(id).label, entity.label);
            assert_eq!(world.graph.entity(id).aliases, entity.aliases);
            assert_eq!(world.graph.label(id), g.label(id));
            assert_eq!(world.graph.schema_of(id), entity.schema);
            assert_eq!(world.graph.one_hop(id), g.one_hop(id));
            assert_eq!(
                world.graph.one_hop_with_predicates(id),
                g.one_hop_with_predicates(id)
            );
            assert_eq!(world.graph.types_of(id), g.types_of(id));
            assert_eq!(world.graph.superclasses_of(id), g.superclasses_of(id));
        }
        // Retrieval parity against the in-memory searcher.
        let mem = EntitySearcher::build(&g);
        for q in ["Peter Steele", "P. Steele", "Rust", "Musician", "zzz"] {
            let m = mem.link_mention(q, 5);
            let d = world.backend.try_search(q, 5).unwrap();
            assert_eq!(m.len(), d.len(), "{q}");
            for (a, b) in m.iter().zip(&d) {
                assert_eq!(a.0, b.0, "{q}");
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "{q}");
            }
        }
        assert_eq!(world.graph.error_count(), 0);
        assert_eq!(world.backend.error_count(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unfinished_build_is_not_openable() {
        let dir = tmpdir("crash");
        let g = toy_graph();
        write_graph(&dir, &g, WorldWriterConfig::default()).unwrap();
        assert!(DiskWorld::open(&dir).is_ok());
        // Restarting a build immediately invalidates the old manifest:
        // a crash right here must not leave an openable half-world.
        let w = WorldWriter::new(&dir, WorldWriterConfig::default()).unwrap();
        drop(w);
        assert!(matches!(DiskWorld::open(&dir), Err(StoreError::Io(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dangling_forward_references_fail_at_finish() {
        let dir = tmpdir("dangling");
        let mut w = WorldWriter::new(&dir, WorldWriterConfig::default()).unwrap();
        let p = w.intern_predicate(predicates::INSTANCE_OF).unwrap();
        let e = Entity::new("loner", NeSchema::Other);
        let out = [Edge {
            predicate: p,
            target: EntityId(99),
        }];
        w.add_entity(&e, &out, &[]).unwrap();
        assert!(matches!(w.finish(), Err(StoreError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uninterned_predicates_fail_immediately() {
        let dir = tmpdir("nopred");
        let mut w = WorldWriter::new(&dir, WorldWriterConfig::default()).unwrap();
        let e = Entity::new("x", NeSchema::Other);
        let out = [Edge {
            predicate: PredicateId(3),
            target: EntityId(0),
        }];
        assert!(matches!(
            w.add_entity(&e, &out, &[]),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_world_round_trips() {
        let dir = tmpdir("empty");
        let g = KnowledgeGraph::new();
        write_graph(&dir, &g, WorldWriterConfig::default()).unwrap();
        let world = DiskWorld::open(&dir).unwrap();
        assert_eq!(world.graph.entity_count(), 0);
        assert!(world.backend.try_search("anything", 5).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
