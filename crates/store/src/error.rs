//! Typed errors for the on-disk store.
//!
//! Mirrors the corruption model of `kglink_nn::checkpoint::CheckpointError`:
//! every distinct way a segment file can be damaged yields a distinct
//! variant, so tests (and operators) can tell a truncated download from a
//! flipped bit from a file written by a different build. No store API
//! panics on bad bytes — the [`crate::DiskGraph`]'s `GraphAccess` facade
//! *degrades* these errors to empty results behind an error counter, but
//! the inherent `try_*` methods always surface them typed.

use std::fmt;

/// Why a segment could not be read, decoded, or written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The file does not start with the expected segment magic.
    BadMagic {
        /// The four-byte magic this reader expected (e.g. `"KGES"`).
        expected: &'static str,
    },
    /// The format version does not match what this build reads. Checked
    /// *before* any CRC, because a different version implies a different
    /// layout.
    WrongVersion { found: u32, expected: u32 },
    /// The file ends before its declared contents do (short read, crash
    /// while a non-atomic writer ran, truncated copy).
    Truncated,
    /// A CRC32-guarded section does not hash to its header value (bit rot,
    /// torn write, in-flight corruption).
    CrcMismatch { expected: u32, found: u32 },
    /// The bytes pass their CRC but decode to something structurally
    /// impossible (an offset past the file, an out-of-range enum tag, an
    /// edge to an entity the world never wrote). Only a writer bug or a
    /// hand-forged file produces this.
    Corrupt(String),
    /// A lookup named an entity id outside the world.
    UnknownEntity { id: u32, n_entities: u64 },
    /// The underlying filesystem operation failed.
    Io(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadMagic { expected } => {
                write!(f, "not a {expected} segment (bad magic)")
            }
            StoreError::WrongVersion { found, expected } => {
                write!(f, "segment version {found}, this build reads {expected}")
            }
            StoreError::Truncated => write!(f, "segment is truncated"),
            StoreError::CrcMismatch { expected, found } => write!(
                f,
                "segment CRC mismatch: header says {expected:#010x}, bytes hash to {found:#010x}"
            ),
            StoreError::Corrupt(what) => write!(f, "segment is structurally corrupt: {what}"),
            StoreError::UnknownEntity { id, n_entities } => {
                write!(f, "entity Q{id} is outside this world ({n_entities} entities)")
            }
            StoreError::Io(e) => write!(f, "store I/O failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        // An unexpected EOF from a positional read is a short file, which
        // is the Truncated corruption class, not an environment failure.
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated
        } else {
            StoreError::Io(e.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(StoreError::BadMagic { expected: "KGES" }.to_string().contains("KGES"));
        let e = StoreError::WrongVersion { found: 9, expected: 1 };
        assert!(e.to_string().contains('9'));
        let e = StoreError::CrcMismatch { expected: 1, found: 2 };
        assert!(e.to_string().contains("CRC"));
        assert!(StoreError::UnknownEntity { id: 3, n_entities: 2 }.to_string().contains("Q3"));
    }

    #[test]
    fn io_eof_maps_to_truncated() {
        let eof = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "short");
        assert_eq!(StoreError::from(eof), StoreError::Truncated);
        let perm = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "no");
        assert!(matches!(StoreError::from(perm), StoreError::Io(_)));
    }
}
