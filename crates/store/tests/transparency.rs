//! Transparency property: a disk world is observationally identical to the
//! in-memory structures it was written from.
//!
//! For random small graphs, every [`GraphAccess`] method of [`DiskGraph`]
//! must agree with [`KnowledgeGraph`], and [`DiskBackend`] retrieval must
//! be **bit-identical** (`f32::to_bits` on every score) to
//! [`EntitySearcher`] — same hits, same order, same floats. Worlds are
//! written with tiny shards so the multi-shard paths are always exercised.

use kglink_kg::{Entity, GraphAccess, KgBuilder, NeSchema};
use kglink_search::EntitySearcher;
use kglink_store::{write_graph, DiskWorld, WorldWriterConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn casedir() -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!(
        "kglink-store-transparency-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

const SCHEMAS: [NeSchema; 4] = [
    NeSchema::Person,
    NeSchema::Place,
    NeSchema::Work,
    NeSchema::Other,
];
const EXTRA_PREDS: [&str; 2] = ["performer", "country"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random graph → disk → every observation matches the source.
    #[test]
    fn disk_world_is_bit_identical_to_memory(
        type_labels in proptest::collection::vec("[a-e]{1,4}", 1..4),
        instances in proptest::collection::vec(
            ("[a-e]{1,4}", "[a-e]{0,3}", 0usize..4, 0usize..4),
            1..20,
        ),
        edges in proptest::collection::vec((0usize..20, 0usize..20, 0usize..2), 0..15),
        queries in proptest::collection::vec("[a-e]{1,4}", 1..6),
        per_shard in 1u32..7,
    ) {
        let mut b = KgBuilder::new();
        let tys: Vec<_> = type_labels
            .iter()
            .enumerate()
            .map(|(i, l)| b.add_type(&format!("{l}{i}"), None))
            .collect();
        let mut ids = Vec::new();
        for (label, alias, ty, schema) in &instances {
            let mut e = Entity::new(label.clone(), SCHEMAS[*schema % SCHEMAS.len()]);
            if !alias.is_empty() {
                e = e.with_alias(alias.clone());
            }
            ids.push(b.add_instance(e, tys[*ty % tys.len()]));
        }
        let mut g = b.build();
        for (s, t, p) in &edges {
            let pred = g.intern_predicate(EXTRA_PREDS[*p % EXTRA_PREDS.len()]);
            g.add_edge(ids[*s % ids.len()], pred, ids[*t % ids.len()]);
        }

        let dir = casedir();
        let cfg = WorldWriterConfig { per_shard, ..WorldWriterConfig::default() };
        let manifest = write_graph(&dir, &g, cfg).unwrap();
        prop_assert_eq!(manifest.n_entities, g.len() as u64);
        let world = DiskWorld::open(&dir).unwrap();

        prop_assert_eq!(world.graph.entity_count(), g.len());
        for (id, entity) in g.entities() {
            let got = world.graph.entity(id);
            prop_assert_eq!(&got.label, &entity.label);
            prop_assert_eq!(&got.aliases, &entity.aliases);
            prop_assert_eq!(&got.description, &entity.description);
            prop_assert_eq!(got.schema, entity.schema);
            prop_assert_eq!(got.is_type, entity.is_type);
            prop_assert_eq!(world.graph.label(id), g.label(id));
            prop_assert_eq!(world.graph.schema_of(id), g.schema_of(id));
            prop_assert_eq!(world.graph.one_hop(id), g.one_hop(id));
            prop_assert_eq!(
                world.graph.one_hop_with_predicates(id),
                g.one_hop_with_predicates(id)
            );
            prop_assert_eq!(world.graph.types_of(id), g.types_of(id));
            prop_assert_eq!(world.graph.superclasses_of(id), g.superclasses_of(id));
        }
        for i in 0..g.predicate_count() {
            let p = kglink_kg::PredicateId(i as u16);
            prop_assert_eq!(world.graph.predicate_name(p), g.predicate_name(p));
        }

        let mem = EntitySearcher::build(&g);
        for q in queries.iter().map(String::as_str).chain(["zzz", ""]) {
            for k in [1usize, 3, 10] {
                let m = mem.link_mention(q, k);
                let d = world.backend.try_search(q, k).unwrap();
                prop_assert_eq!(m.len(), d.len(), "query {:?} k {}", q, k);
                for (a, b) in m.iter().zip(&d) {
                    prop_assert_eq!(a.0, b.0, "query {:?} k {}", q, k);
                    prop_assert_eq!(
                        a.1.to_bits(),
                        b.1.to_bits(),
                        "query {:?} k {}",
                        q,
                        k
                    );
                }
            }
        }
        prop_assert_eq!(world.graph.error_count(), 0);
        prop_assert_eq!(world.backend.error_count(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
