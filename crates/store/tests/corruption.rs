//! End-to-end corruption drills: every damaged-file class must surface as
//! a *typed* [`StoreError`] — never a panic, never silently wrong data —
//! and the service facades must degrade to neutral values while counting.
//!
//! Open-time damage (magic, version, truncation, index CRC) fails the
//! `open` call itself; data-block damage is only detectable lazily and
//! must fail the first read that touches the block, leaving the rest of
//! the world servable.

use kglink_kg::{Entity, GraphAccess, KgBuilder, NeSchema};
use kglink_search::backend::{Deadline, KgBackend};
use kglink_store::{
    shard_file_name, write_graph, DiskBackend, DiskGraph, DiskWorld, StoreError,
    WorldWriterConfig, BM25_FILE, MANIFEST_FILE,
};
use std::path::PathBuf;

fn build_world(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "kglink-store-corruption-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut b = KgBuilder::new();
    let musician = b.add_type("Musician", None);
    for i in 0..10 {
        b.add_instance(
            Entity::new(format!("peter steele {i}"), NeSchema::Person).with_alias("pete"),
            musician,
        );
    }
    let g = b.build();
    let cfg = WorldWriterConfig {
        per_shard: 4,
        ..WorldWriterConfig::default()
    };
    write_graph(&dir, &g, cfg).unwrap();
    dir
}

fn corrupt(path: &PathBuf, f: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
    let orig = std::fs::read(path).unwrap();
    let mut bad = orig.clone();
    f(&mut bad);
    std::fs::write(path, &bad).unwrap();
    orig
}

#[test]
fn missing_or_damaged_manifest_refuses_to_open() {
    let dir = build_world("manifest");
    let path = dir.join(MANIFEST_FILE);

    let orig = corrupt(&path, |b| b[0] = b'x');
    assert!(matches!(
        DiskWorld::open(&dir),
        Err(StoreError::BadMagic { expected: "KGSM" })
    ));

    std::fs::write(&path, &orig[..10]).unwrap();
    assert!(matches!(DiskWorld::open(&dir), Err(StoreError::Truncated)));

    std::fs::write(&path, {
        let mut b = orig.clone();
        b[4] = 9;
        b
    })
    .unwrap();
    assert!(matches!(
        DiskWorld::open(&dir),
        Err(StoreError::WrongVersion {
            found: 9,
            expected: 1
        })
    ));

    std::fs::remove_file(&path).unwrap();
    assert!(matches!(DiskWorld::open(&dir), Err(StoreError::Io(_))));

    std::fs::write(&path, &orig).unwrap();
    assert!(DiskWorld::open(&dir).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shard_header_damage_fails_at_open() {
    let dir = build_world("shard-header");
    let path = dir.join(shard_file_name(1));

    let orig = corrupt(&path, |b| b[0] = b'Z');
    assert!(matches!(
        DiskGraph::open(&dir),
        Err(StoreError::BadMagic { expected: "KGES" })
    ));

    std::fs::write(&path, {
        let mut b = orig.clone();
        b[4] = 7;
        b
    })
    .unwrap();
    assert!(matches!(
        DiskGraph::open(&dir),
        Err(StoreError::WrongVersion {
            found: 7,
            expected: 1
        })
    ));

    // Chopping off the tail destroys the block index.
    std::fs::write(&path, &orig[..orig.len() - 7]).unwrap();
    assert!(matches!(
        DiskGraph::open(&dir),
        Err(StoreError::Truncated | StoreError::CrcMismatch { .. })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shard_block_bitflip_fails_lazily_and_degrades_scoped() {
    let dir = build_world("shard-block");
    // Flip one byte inside shard 0's first data block (data starts after
    // the 44-byte header). Opening still succeeds — the damage is only
    // visible to reads that touch that block.
    corrupt(&dir.join(shard_file_name(0)), |b| b[50] ^= 0x40);
    let g = DiskGraph::open(&dir).unwrap();
    assert!(matches!(
        g.try_entity(kglink_kg::EntityId(0)),
        Err(StoreError::CrcMismatch { .. })
    ));
    // The facade degrades to a placeholder and counts, instead of failing.
    let before = g.error_count();
    assert_eq!(g.entity(kglink_kg::EntityId(0)).label, "");
    assert_eq!(g.error_count(), before + 1);
    // Entities in undamaged shards still read fine.
    assert_eq!(g.try_label(kglink_kg::EntityId(5)).unwrap(), "peter steele 4");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bm25_header_damage_fails_at_open() {
    let dir = build_world("bm25-header");
    let path = dir.join(BM25_FILE);

    let orig = corrupt(&path, |b| b[0] = b'!');
    assert!(matches!(
        DiskBackend::open(&dir),
        Err(StoreError::BadMagic { expected: "KGBM" })
    ));

    std::fs::write(&path, {
        let mut b = orig.clone();
        b[4] = 3;
        b
    })
    .unwrap();
    assert!(matches!(
        DiskBackend::open(&dir),
        Err(StoreError::WrongVersion {
            found: 3,
            expected: 1
        })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bm25_posting_bitflip_fails_typed_and_facade_degrades() {
    let dir = build_world("bm25-postings");
    // XOR the whole postings region (offset/length live at header bytes
    // [16..32)); the header, dictionary and doc-length CRCs stay intact so
    // the segment opens, but every posting-list CRC now mismatches.
    corrupt(&dir.join(BM25_FILE), |b| {
        let off = u64::from_le_bytes(b[16..24].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(b[24..32].try_into().unwrap()) as usize;
        for byte in &mut b[off..off + len] {
            *byte ^= 0xff;
        }
    });
    let backend = DiskBackend::open(&dir).unwrap();
    assert!(matches!(
        backend.try_search("peter", 5),
        Err(StoreError::CrcMismatch { .. })
    ));
    // Unknown terms never touch postings, so they still answer cleanly.
    assert!(backend.try_search("zzz", 5).unwrap().is_empty());
    // The KgBackend facade degrades to empty-truncated, not RetrievalError:
    // corruption is durable, so the circuit breaker must not trip on it.
    let out = backend
        .search_entities("peter", 5, Deadline::UNBOUNDED)
        .unwrap();
    assert!(out.hits.is_empty());
    assert!(out.truncated);
    assert_eq!(backend.error_count(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}
