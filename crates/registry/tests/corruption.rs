//! Satellite: every damaged registry artifact is a *typed* error at
//! prepare (load) time — never a panic, never promotable, and
//! quarantinable. The damage families mirror what a torn disk, a bad
//! copy, or a future code generation can actually produce:
//!
//! - truncated manifest / truncated weights
//! - bit-flipped weights (every stride-sampled byte position)
//! - a manifest transplanted from a foreign version directory
//! - a foreign format generation in the manifest framing
//! - NaN-poisoned weights (decode cleanly, rejected by the finite scan)
//! - a torn publish (weights present, manifest never committed)

use kglink_core::pipeline::KgLink;
use kglink_core::{KgLinkConfig, KgLinkModel};
use kglink_nn::checkpoint::save_train_state;
use kglink_registry::{Artifact, ModelRegistry, RegistryError};
use kglink_table::LabelVocab;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

const VOCAB: usize = 64;

fn tiny_model(seed: u64) -> KgLink {
    let mut labels = LabelVocab::new();
    for name in ["person", "place", "organization", "date"] {
        labels.intern(name);
    }
    let config = KgLinkConfig {
        seed,
        ..KgLinkConfig::fast_test()
    };
    let model = KgLinkModel::new(&config, VOCAB, labels.len());
    KgLink {
        config,
        model,
        labels,
    }
}

fn fresh_registry(tag: &str) -> (ModelRegistry, PathBuf) {
    let root = std::env::temp_dir().join(format!(
        "kglink-registry-corruption-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&root);
    let reg = ModelRegistry::open(&root).expect("open registry");
    (reg, root)
}

fn weights_path(root: &Path, version: u64) -> PathBuf {
    root.join("versions")
        .join(format!("v{version:06}"))
        .join("weights.kgck")
}

fn manifest_path(root: &Path, version: u64) -> PathBuf {
    root.join("versions")
        .join(format!("v{version:06}"))
        .join("manifest.kgmf")
}

/// Loading must yield `Err`, not unwind. Returns the error for matching.
fn load_is_typed(reg: &ModelRegistry, version: u64) -> RegistryError {
    let result = catch_unwind(AssertUnwindSafe(|| reg.load(version)));
    match result {
        Ok(Ok(_)) => panic!("damaged version {version} loaded successfully"),
        Ok(Err(e)) => e,
        Err(_) => panic!("loading damaged version {version} panicked"),
    }
}

#[test]
fn clean_publish_round_trips_bit_exactly() {
    let (reg, root) = fresh_registry("roundtrip");
    let mut model = tiny_model(7);
    let before = save_train_state(&mut model.model);
    let published = reg.publish(&mut model, VOCAB, "baseline").expect("publish");
    assert_eq!(published.version, 1);
    assert_eq!(reg.list(), vec![1]);

    let mut loaded = reg.load(1).expect("load");
    assert_eq!(loaded.version, 1);
    assert_eq!(loaded.tag, "baseline");
    assert_eq!(loaded.vocab_size, VOCAB);
    assert_eq!(loaded.model.labels.len(), model.labels.len());
    let after = save_train_state(&mut loaded.model.model);
    assert_eq!(&before[..], &after[..], "weights round trip bit-exactly");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn truncated_manifest_is_typed_and_quarantinable() {
    let (reg, root) = fresh_registry("trunc-manifest");
    reg.publish(&mut tiny_model(1), VOCAB, "m").expect("publish");
    let path = manifest_path(&root, 1);
    let full = fs::read(&path).expect("read manifest");
    // Every proper prefix must fail with a typed error, never a panic.
    for cut in [0, 3, 4, 7, 8, 11, 12, 19, full.len() / 2, full.len() - 1] {
        fs::write(&path, &full[..cut]).expect("truncate");
        let err = load_is_typed(&reg, 1);
        assert!(
            matches!(
                err,
                RegistryError::Truncated { artifact: Artifact::Manifest, .. }
                    | RegistryError::BadMagic { artifact: Artifact::Manifest, .. }
            ),
            "cut at {cut}: unexpected error {err:?}"
        );
    }
    // Quarantine moves it out of the version namespace entirely.
    let err = match reg.load_or_quarantine(1) {
        Ok(_) => panic!("damaged version loaded"),
        Err(e) => e,
    };
    assert!(err.is_corruption());
    assert_eq!(reg.list(), Vec::<u64>::new(), "quarantined ⇒ not promotable");
    assert!(!manifest_path(&root, 1).exists());
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn bit_flipped_weights_are_always_caught() {
    let (reg, root) = fresh_registry("bitflip");
    reg.publish(&mut tiny_model(2), VOCAB, "m").expect("publish");
    let path = weights_path(&root, 1);
    let clean = fs::read(&path).expect("read weights");
    // Stride-sample byte positions across the whole artifact (header,
    // metadata, weight payload) and flip one bit at each.
    let stride = (clean.len() / 97).max(1);
    for pos in (0..clean.len()).step_by(stride) {
        let mut damaged = clean.clone();
        damaged[pos] ^= 0x10;
        fs::write(&path, &damaged).expect("write damaged");
        let err = load_is_typed(&reg, 1);
        assert!(
            err.is_corruption(),
            "flip at {pos}: expected corruption-class error, got {err:?}"
        );
    }
    // Restore and verify the registry itself was never damaged.
    fs::write(&path, &clean).expect("restore");
    reg.load(1).expect("clean weights load again");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn truncated_weights_are_typed() {
    let (reg, root) = fresh_registry("trunc-weights");
    reg.publish(&mut tiny_model(3), VOCAB, "m").expect("publish");
    let path = weights_path(&root, 1);
    let full = fs::read(&path).expect("read weights");
    fs::write(&path, &full[..full.len() / 2]).expect("truncate");
    assert!(matches!(
        load_is_typed(&reg, 1),
        RegistryError::Truncated { artifact: Artifact::Weights, .. }
    ));
    fs::remove_file(&path).expect("remove weights");
    assert!(matches!(
        load_is_typed(&reg, 1),
        RegistryError::Malformed { artifact: Artifact::Weights, .. }
    ));
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn transplanted_manifest_is_rejected() {
    let (reg, root) = fresh_registry("transplant");
    reg.publish(&mut tiny_model(4), VOCAB, "a").expect("publish v1");
    reg.publish(&mut tiny_model(5), VOCAB, "b").expect("publish v2");
    // Copy v2's manifest over v1's: framing and CRC are valid, but the
    // manifest vouches for a different version's weights.
    let v2_manifest = fs::read(manifest_path(&root, 2)).expect("read v2 manifest");
    fs::write(manifest_path(&root, 1), &v2_manifest).expect("transplant");
    assert!(matches!(
        load_is_typed(&reg, 1),
        RegistryError::Malformed { artifact: Artifact::Manifest, .. }
    ));
    // v2 itself is untouched.
    reg.load(2).expect("v2 still loads");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn foreign_format_generation_is_typed() {
    let (reg, root) = fresh_registry("foreign");
    reg.publish(&mut tiny_model(6), VOCAB, "m").expect("publish");
    let path = manifest_path(&root, 1);
    let mut bytes = fs::read(&path).expect("read manifest");
    // The u32 after the 4-byte magic is the format generation.
    bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
    fs::write(&path, &bytes).expect("write foreign");
    match load_is_typed(&reg, 1) {
        RegistryError::ForeignFormat {
            artifact: Artifact::Manifest,
            found: 99,
            expected,
            ..
        } => assert_eq!(expected, kglink_registry::FORMAT_VERSION),
        other => panic!("expected ForeignFormat, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn nan_poisoned_weights_never_load() {
    let (reg, root) = fresh_registry("nan");
    let mut poisoned = tiny_model(8);
    let mut first = true;
    use kglink_nn::layers::param::HasParams;
    poisoned.model.visit_params(&mut |p| {
        if first {
            p.value.data_mut()[0] = f32::NAN;
            first = false;
        }
    });
    reg.publish(&mut poisoned, VOCAB, "poisoned").expect("publish succeeds");
    match load_is_typed(&reg, 1) {
        RegistryError::NonFiniteWeights { bad_values, .. } => assert_eq!(bad_values, 1),
        other => panic!("expected NonFiniteWeights, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn torn_publish_is_invisible_and_id_is_burned() {
    let (reg, root) = fresh_registry("torn");
    reg.publish(&mut tiny_model(9), VOCAB, "m").expect("publish v1");
    // Simulate a crash between the weights write and the manifest commit.
    fs::remove_file(manifest_path(&root, 1)).expect("tear the commit");
    assert_eq!(reg.list(), Vec::<u64>::new(), "uncommitted ⇒ invisible");
    assert!(matches!(
        load_is_typed(&reg, 1),
        RegistryError::Missing { version: 1 }
    ));
    // The next publish must not resurrect the husk under the same id.
    let p = reg.publish(&mut tiny_model(10), VOCAB, "m2").expect("publish again");
    assert_eq!(p.version, 2, "torn version id is burned, not reused");
    assert_eq!(reg.list(), vec![2]);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn gc_keeps_the_newest_versions() {
    let (reg, root) = fresh_registry("gc");
    for i in 0..5 {
        reg.publish(&mut tiny_model(20 + i), VOCAB, "m").expect("publish");
    }
    let removed = reg.gc(2).expect("gc");
    assert_eq!(removed, vec![1, 2, 3]);
    assert_eq!(reg.list(), vec![4, 5]);
    reg.load(5).expect("survivor loads");
    let _ = fs::remove_dir_all(&root);
}
