//! Typed registry errors.
//!
//! Every way a published model can be damaged on disk maps to a distinct
//! variant: loaders and the serving swap path branch on *what* broke, and
//! nothing in this crate panics on foreign bytes. The variants mirror
//! [`kglink_nn::checkpoint::CheckpointError`] where the damage lives in the
//! weights artifact, with the registry version and artifact attached so a
//! quarantine report names the exact file.

use std::fmt;

/// Which on-disk artifact of a version directory an error refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Artifact {
    /// `manifest.kgmf` — the commit point, written last.
    Manifest,
    /// `weights.kgck` — the framed model payload, written first.
    Weights,
}

impl fmt::Display for Artifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Artifact::Manifest => write!(f, "manifest"),
            Artifact::Weights => write!(f, "weights"),
        }
    }
}

/// Everything that can go wrong opening, publishing, or loading a version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The version directory does not exist or was never committed (no
    /// manifest): the publish either never happened or was torn before its
    /// commit point, in which case the leftovers are invisible by design.
    Missing { version: u64 },
    /// An artifact does not start with its magic — not ours, or overwritten.
    BadMagic { version: u64, artifact: Artifact },
    /// An artifact was written by a different format generation than this
    /// reader understands (a foreign or future version of the code).
    ForeignFormat {
        version: u64,
        artifact: Artifact,
        found: u32,
        expected: u32,
    },
    /// An artifact is shorter than its own framing claims.
    Truncated { version: u64, artifact: Artifact },
    /// An artifact's payload does not hash to its recorded CRC.
    CrcMismatch {
        version: u64,
        artifact: Artifact,
        expected: u32,
        found: u32,
    },
    /// Framing is intact but the payload does not parse, or the manifest
    /// and the weights disagree (e.g. a manifest transplanted from another
    /// version directory).
    Malformed {
        version: u64,
        artifact: Artifact,
        detail: String,
    },
    /// The weights decode cleanly but contain NaN/Inf values — the model
    /// would serve garbage, so it is rejected at load, before any Arc
    /// hand-off to serving.
    NonFiniteWeights { version: u64, bad_values: u64 },
    /// Filesystem-level failure (`version` 0 = registry root).
    Io { version: u64, detail: String },
}

impl RegistryError {
    /// True for damage classes that justify quarantining the version
    /// directory (as opposed to transient I/O or a plain missing version).
    pub fn is_corruption(&self) -> bool {
        !matches!(
            self,
            RegistryError::Missing { .. } | RegistryError::Io { .. }
        )
    }

    /// Short stable tag used in quarantine directory names.
    pub fn kind(&self) -> &'static str {
        match self {
            RegistryError::Missing { .. } => "missing",
            RegistryError::BadMagic { .. } => "bad-magic",
            RegistryError::ForeignFormat { .. } => "foreign-format",
            RegistryError::Truncated { .. } => "truncated",
            RegistryError::CrcMismatch { .. } => "crc-mismatch",
            RegistryError::Malformed { .. } => "malformed",
            RegistryError::NonFiniteWeights { .. } => "non-finite",
            RegistryError::Io { .. } => "io",
        }
    }
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Missing { version } => {
                write!(f, "model version {version} is not in the registry")
            }
            RegistryError::BadMagic { version, artifact } => {
                write!(f, "version {version}: {artifact} has a bad magic number")
            }
            RegistryError::ForeignFormat {
                version,
                artifact,
                found,
                expected,
            } => write!(
                f,
                "version {version}: {artifact} is format generation {found}, \
                 this reader understands {expected}"
            ),
            RegistryError::Truncated { version, artifact } => {
                write!(f, "version {version}: {artifact} is truncated")
            }
            RegistryError::CrcMismatch {
                version,
                artifact,
                expected,
                found,
            } => write!(
                f,
                "version {version}: {artifact} CRC mismatch \
                 (recorded {expected:#010x}, computed {found:#010x})"
            ),
            RegistryError::Malformed {
                version,
                artifact,
                detail,
            } => write!(f, "version {version}: {artifact} malformed: {detail}"),
            RegistryError::NonFiniteWeights { version, bad_values } => write!(
                f,
                "version {version}: weights contain {bad_values} non-finite value(s)"
            ),
            RegistryError::Io { version, detail } => {
                write!(f, "version {version}: I/O error: {detail}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}
