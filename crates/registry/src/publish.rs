//! The one sanctioned writer for registry artifacts.
//!
//! Same protocol as `kglink_store::atomic`: bytes land in a temp file in
//! the *same directory* as the target (rename is only atomic within a
//! filesystem), the temp file is fsync'd, then renamed over the target,
//! then the directory is fsync'd so the rename itself is durable. A crash
//! at any point leaves either the old artifact or the new one — never a
//! torn file — and a leftover `.tmp` is deleted on the next publish.
//!
//! The `model-publish-atomicity` lint rule flags any other
//! `fs::write`/`File::create` that mentions registry artifacts; this
//! module keeps the marker names out of its create statement so the
//! sanctioned writer itself stays clean (the same structure
//! `kglink_store::atomic` uses).

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

const TMP_SUFFIX: &str = "pub.tmp";

/// Atomically install `bytes` as `dir/name`.
pub(crate) fn write_artifact(dir: &Path, name: &str, bytes: &[u8]) -> io::Result<()> {
    let target = dir.join(name);
    let tmp = dir.join(format!("{name}.{TMP_SUFFIX}"));
    let mut guard = TmpGuard { path: Some(&tmp) };
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, &target)?;
    guard.path = None; // renamed away — nothing to clean up
    fsync_dir(dir)?;
    Ok(())
}

/// Remove stale temp files from an interrupted publish in `dir`.
pub(crate) fn sweep_tmp(dir: &Path) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        if name.to_string_lossy().ends_with(TMP_SUFFIX) {
            let _ = fs::remove_file(entry.path());
        }
    }
}

fn fsync_dir(dir: &Path) -> io::Result<()> {
    // Directory fsync is how the rename becomes durable on Linux; on
    // platforms where opening a directory fails, the rename is still
    // atomic, just not durability-ordered.
    if let Ok(d) = File::open(dir) {
        d.sync_all()?;
    }
    Ok(())
}

/// Deletes the temp file if the publish never reached its rename.
struct TmpGuard<'a> {
    path: Option<&'a Path>,
}

impl Drop for TmpGuard<'_> {
    fn drop(&mut self) {
        if let Some(p) = self.path {
            let _ = fs::remove_file(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "kglink-registry-publish-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn artifact_lands_whole_and_tmp_is_gone() {
        let d = tmp_dir("whole");
        write_artifact(&d, "blob.bin", b"0123456789").unwrap();
        assert_eq!(fs::read(d.join("blob.bin")).unwrap(), b"0123456789");
        let leftovers: Vec<_> = fs::read_dir(&d)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(TMP_SUFFIX))
            .collect();
        assert!(leftovers.is_empty(), "stale temp files: {leftovers:?}");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn overwrite_is_all_or_nothing() {
        let d = tmp_dir("overwrite");
        write_artifact(&d, "blob.bin", b"old-old-old").unwrap();
        write_artifact(&d, "blob.bin", b"new").unwrap();
        assert_eq!(fs::read(d.join("blob.bin")).unwrap(), b"new");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn sweep_removes_interrupted_temps() {
        let d = tmp_dir("sweep");
        fs::write(d.join(format!("blob.bin.{TMP_SUFFIX}")), b"torn").unwrap();
        sweep_tmp(&d);
        assert!(!d.join(format!("blob.bin.{TMP_SUFFIX}")).exists());
        let _ = fs::remove_dir_all(&d);
    }
}
