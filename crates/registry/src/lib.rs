//! # kglink-registry — versioned model registry with atomic publishes
//!
//! The zero-downtime model lifecycle (DESIGN.md §15) starts here: trained
//! [`KgLink`](kglink_core::pipeline::KgLink) models are *published* into
//! CRC'd, atomically committed version directories, and the serving layer
//! *loads* fully validated versions to hot-swap between. The invariants:
//!
//! - **Manifest-last commit point.** A version's weights are written (via
//!   the same temp-file → fsync → rename protocol as `kglink_store`)
//!   before the manifest that vouches for them; a crash anywhere leaves
//!   either a committed version or an invisible, id-burning husk.
//! - **Typed corruption, no panics.** Truncated manifests, bit-flipped
//!   weights, transplanted manifests, and foreign format generations all
//!   surface as distinct [`RegistryError`] variants.
//! - **Quarantine over deletion.** [`ModelRegistry::load_or_quarantine`]
//!   moves damaged versions into `quarantine/` so evidence survives and
//!   retry loops stop re-tripping.
//! - **No NaN ever reaches serving.** Loads scan every parameter and
//!   reject non-finite weights before the model is handed out.

#![deny(deprecated)]

mod codec;
mod error;
mod publish;
mod registry;

pub use error::{Artifact, RegistryError};
pub use registry::{
    count_non_finite, LoadedModel, ModelRegistry, PublishedModel, FORMAT_VERSION,
};
