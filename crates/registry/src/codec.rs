//! Hand-rolled binary codec for the model metadata blob.
//!
//! The vendored `serde` stub is derive-markers only (nothing serializes
//! through it), so the registry encodes the [`KgLinkConfig`], the label
//! vocabulary, and the tokenizer vocab size explicitly. The blob rides in
//! the `extra` field of the PR-4 [`kglink_nn::TrainCheckpoint`], so it
//! inherits the outer KGCK CRC; its own magic + version only guard against
//! the *meaning* of the fields drifting between code generations.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "KGMX" | u16 codec version (=1) | u32 vocab_size | config fields (fixed
//! order, see `encode`) | u32 n_labels | n_labels × (u32 len | utf-8 name)
//! ```

use kglink_core::config::{EncoderSize, KgLinkConfig, RowFilter};
use kglink_nn::AdamWConfig;
use kglink_table::LabelVocab;

const MAGIC: &[u8; 4] = b"KGMX";
const CODEC_VERSION: u16 = 1;

/// Encode the pieces needed to rebuild a `KgLink` around a weights blob.
pub(crate) fn encode_model_meta(
    config: &KgLinkConfig,
    labels: &LabelVocab,
    vocab_size: usize,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(MAGIC);
    put_u16(&mut out, CODEC_VERSION);
    put_u64(&mut out, vocab_size as u64);

    put_u64(&mut out, config.max_entities_per_mention as u64);
    put_u64(&mut out, config.max_candidate_types as u64);
    put_u64(&mut out, config.top_k_rows as u64);
    out.push(match config.row_filter {
        RowFilter::LinkScore => 0,
        RowFilter::Original => 1,
    });
    put_u64(&mut out, config.max_columns as u64);
    put_u64(&mut out, config.retrieval_deadline_us);
    put_u64(&mut out, config.tokens_per_column as u64);
    put_u64(&mut out, config.feature_seq_tokens as u64);
    out.push(match config.encoder {
        EncoderSize::Mini => 0,
        EncoderSize::Large => 1,
    });
    put_f32(&mut out, config.temperature);
    put_f32(&mut out, config.dropout);
    out.push(config.use_mask_task as u8);
    out.push(config.use_candidate_types as u8);
    out.push(config.use_feature_vector as u8);
    put_u64(&mut out, config.epochs as u64);
    put_u64(&mut out, config.batch_size as u64);
    put_u64(&mut out, config.patience as u64);
    put_f32(&mut out, config.optimizer.lr);
    put_f32(&mut out, config.optimizer.beta1);
    put_f32(&mut out, config.optimizer.beta2);
    put_f32(&mut out, config.optimizer.eps);
    put_f32(&mut out, config.optimizer.weight_decay);
    put_f32(&mut out, config.optimizer.clip_norm);
    match config.fixed_log_sigmas {
        None => out.push(0),
        Some((a, b)) => {
            out.push(1);
            put_f32(&mut out, a);
            put_f32(&mut out, b);
        }
    }
    put_u64(&mut out, config.seed);

    put_u32(&mut out, labels.len() as u32);
    for (_, name) in labels.iter() {
        put_u32(&mut out, name.len() as u32);
        out.extend_from_slice(name.as_bytes());
    }
    out
}

/// Decode [`encode_model_meta`] output. Errors are human-readable details;
/// the caller wraps them in a typed `RegistryError::Malformed`.
pub(crate) fn decode_model_meta(
    buf: &[u8],
) -> Result<(KgLinkConfig, LabelVocab, usize), String> {
    let mut r = Reader { buf, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err("model-meta blob has a bad magic number".into());
    }
    let ver = r.u16()?;
    if ver != CODEC_VERSION {
        return Err(format!(
            "model-meta codec version {ver}, expected {CODEC_VERSION}"
        ));
    }
    let vocab_size = r.u64()? as usize;

    let max_entities_per_mention = r.u64()? as usize;
    let max_candidate_types = r.u64()? as usize;
    let top_k_rows = r.u64()? as usize;
    let row_filter = match r.u8()? {
        0 => RowFilter::LinkScore,
        1 => RowFilter::Original,
        n => return Err(format!("unknown row filter tag {n}")),
    };
    let max_columns = r.u64()? as usize;
    let retrieval_deadline_us = r.u64()?;
    let tokens_per_column = r.u64()? as usize;
    let feature_seq_tokens = r.u64()? as usize;
    let encoder = match r.u8()? {
        0 => EncoderSize::Mini,
        1 => EncoderSize::Large,
        n => return Err(format!("unknown encoder size tag {n}")),
    };
    let temperature = r.f32()?;
    let dropout = r.f32()?;
    let use_mask_task = r.u8()? != 0;
    let use_candidate_types = r.u8()? != 0;
    let use_feature_vector = r.u8()? != 0;
    let epochs = r.u64()? as usize;
    let batch_size = r.u64()? as usize;
    let patience = r.u64()? as usize;
    let optimizer = AdamWConfig {
        lr: r.f32()?,
        beta1: r.f32()?,
        beta2: r.f32()?,
        eps: r.f32()?,
        weight_decay: r.f32()?,
        clip_norm: r.f32()?,
    };
    let fixed_log_sigmas = match r.u8()? {
        0 => None,
        1 => Some((r.f32()?, r.f32()?)),
        n => return Err(format!("unknown fixed-sigma tag {n}")),
    };
    let seed = r.u64()?;

    let n_labels = r.u32()? as usize;
    let mut labels = LabelVocab::new();
    for i in 0..n_labels {
        let len = r.u32()? as usize;
        let raw = r.take(len)?;
        let name = std::str::from_utf8(raw)
            .map_err(|_| format!("label {i} is not valid UTF-8"))?;
        labels.intern(name);
    }
    if labels.len() != n_labels {
        return Err(format!(
            "label vocabulary collapsed on decode: {n_labels} recorded, {} distinct",
            labels.len()
        ));
    }
    if r.pos != buf.len() {
        return Err(format!(
            "{} trailing byte(s) after model metadata",
            buf.len() - r.pos
        ));
    }

    let config = KgLinkConfig {
        max_entities_per_mention,
        max_candidate_types,
        top_k_rows,
        row_filter,
        max_columns,
        retrieval_deadline_us,
        tokens_per_column,
        feature_seq_tokens,
        encoder,
        temperature,
        dropout,
        use_mask_task,
        use_candidate_types,
        use_feature_vector,
        epochs,
        batch_size,
        patience,
        optimizer,
        fixed_log_sigmas,
        seed,
    };
    Ok((config, labels, vocab_size))
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Bounds-checked little-endian reader over a borrowed slice.
pub(crate) struct Reader<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "input is short: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, String> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    pub(crate) fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
    fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_bits(self.u32()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_meta_round_trips_bit_exactly() {
        let mut labels = LabelVocab::new();
        for name in ["person", "place", "work of art"] {
            labels.intern(name);
        }
        let config = KgLinkConfig {
            retrieval_deadline_us: 12_345,
            fixed_log_sigmas: Some((-0.25, 0.5)),
            seed: 0xdead_beef,
            ..KgLinkConfig::fast_test()
        };
        let blob = encode_model_meta(&config, &labels, 6000);
        let (c2, l2, vocab) = decode_model_meta(&blob).expect("round trip");
        assert_eq!(vocab, 6000);
        assert_eq!(l2.len(), labels.len());
        for (id, name) in labels.iter() {
            assert_eq!(l2.name(id), name);
        }
        // `KgLinkConfig` has no `PartialEq`; bit-exact re-encoding is the
        // stronger statement anyway.
        assert_eq!(encode_model_meta(&c2, &l2, vocab), blob);
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let mut labels = LabelVocab::new();
        labels.intern("only");
        let blob = encode_model_meta(&KgLinkConfig::fast_test(), &labels, 64);
        for cut in 0..blob.len() {
            assert!(
                decode_model_meta(&blob[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut labels = LabelVocab::new();
        labels.intern("only");
        let mut blob = encode_model_meta(&KgLinkConfig::fast_test(), &labels, 64);
        blob.push(0);
        assert!(decode_model_meta(&blob).is_err());
    }
}
