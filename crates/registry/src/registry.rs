//! The versioned on-disk model registry.
//!
//! Layout under the registry root:
//!
//! ```text
//! root/
//!   versions/v000001/
//!     weights.kgck    # framed TrainCheckpoint (PR-4 KGCK format):
//!                     #   extra = KGMX model metadata (config/labels/vocab)
//!                     #   train_state = KGLT weights + optimizer moments
//!     manifest.kgmf   # commit point — written LAST, CRC'd, names the
//!                     #   weights length/CRC/architecture it vouches for
//!   quarantine/
//!     v000007-crc-mismatch/   # damaged versions are moved, never deleted
//! ```
//!
//! A version exists iff its manifest parses: publishes write weights first
//! and the manifest last through the atomic writer, so a crash mid-publish
//! leaves an uncommitted directory the registry treats as free space. Every
//! way the artifacts can be damaged surfaces as a typed
//! [`RegistryError`] — loading never panics on foreign bytes — and
//! [`ModelRegistry::load_or_quarantine`] moves damaged versions aside so a
//! retrying caller stops tripping on them.

use crate::codec::{self, Reader};
use crate::error::{Artifact, RegistryError};
use crate::publish;
use kglink_core::pipeline::KgLink;
use kglink_core::KgLinkModel;
use kglink_nn::checkpoint::{crc32, save_train_state};
use kglink_nn::layers::param::HasParams;
use kglink_nn::{CheckpointError, TrainCheckpoint};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Format generation of the manifest framing. Bump on layout changes.
pub const FORMAT_VERSION: u32 = 1;

const MANIFEST_MAGIC: &[u8; 4] = b"KGMF";
const MANIFEST_FILE: &str = "manifest.kgmf";
const WEIGHTS_FILE: &str = "weights.kgck";

/// A versioned, crash-safe store of published models.
pub struct ModelRegistry {
    root: PathBuf,
}

/// Receipt for a successful publish.
#[derive(Debug, Clone)]
pub struct PublishedModel {
    pub version: u64,
    pub dir: PathBuf,
    pub weights_len: u64,
    pub weights_crc: u32,
}

/// A fully validated model, ready to wrap in an `Arc` and serve.
pub struct LoadedModel {
    pub version: u64,
    pub model: KgLink,
    /// Tokenizer vocabulary size the encoder was built against.
    pub vocab_size: usize,
    /// Free-form provenance string recorded at publish time.
    pub tag: String,
}

impl ModelRegistry {
    /// Open (creating if needed) a registry rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, RegistryError> {
        let root = root.into();
        for sub in ["versions", "quarantine"] {
            fs::create_dir_all(root.join(sub)).map_err(|e| root_io(&e))?;
        }
        Ok(ModelRegistry { root })
    }

    /// Registry root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn versions_dir(&self) -> PathBuf {
        self.root.join("versions")
    }

    fn version_dir(&self, version: u64) -> PathBuf {
        self.versions_dir().join(format!("v{version:06}"))
    }

    /// Publish `model` as the next version and return its receipt.
    ///
    /// `model` is `&mut` only because parameter traversal
    /// ([`HasParams::visit_params`]) is `&mut`; weights are not modified.
    /// The weights artifact is written first, the manifest last: the
    /// version is invisible until the manifest rename commits it.
    pub fn publish(
        &self,
        model: &mut KgLink,
        vocab_size: usize,
        tag: &str,
    ) -> Result<PublishedModel, RegistryError> {
        let version = self.next_version()?;
        let dir = self.version_dir(version);
        fs::create_dir_all(&dir).map_err(|e| io_err(version, &e))?;
        publish::sweep_tmp(&dir);

        let meta = codec::encode_model_meta(&model.config, &model.labels, vocab_size);
        let ckpt = TrainCheckpoint {
            opt_step: 0,
            rng_state: 0,
            epoch: 0,
            step: 0,
            extra: meta,
            train_state: save_train_state(&mut model.model),
        };
        let weights = ckpt.encode();
        publish::write_artifact(&dir, WEIGHTS_FILE, &weights)
            .map_err(|e| io_err(version, &e))?;

        let weights_len = weights.len() as u64;
        let weights_crc = crc32(&weights);
        let manifest = encode_manifest(&ManifestV1 {
            version,
            weights_len,
            weights_crc,
            n_labels: model.labels.len() as u64,
            vocab_size: vocab_size as u64,
            param_count: model.model.param_count() as u64,
            tag: tag.to_string(),
        });
        publish::write_artifact(&dir, MANIFEST_FILE, &manifest)
            .map_err(|e| io_err(version, &e))?;

        Ok(PublishedModel {
            version,
            dir,
            weights_len,
            weights_crc,
        })
    }

    /// Committed versions in ascending order. Uncommitted (manifest-less)
    /// and quarantined directories are invisible.
    pub fn list(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let Ok(entries) = fs::read_dir(self.versions_dir()) else {
            return out;
        };
        for entry in entries.flatten() {
            if let Some(v) = parse_version_dir(&entry.file_name().to_string_lossy()) {
                if entry.path().join(MANIFEST_FILE).is_file() {
                    out.push(v);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Highest committed version, if any.
    pub fn latest(&self) -> Option<u64> {
        self.list().into_iter().next_back()
    }

    /// Load and fully validate a version: manifest CRC, weights length +
    /// CRC against the manifest, KGCK/KGLT decode, architecture
    /// consistency, and a non-finite weight scan — all before the model is
    /// handed out. Never panics on damaged input.
    pub fn load(&self, version: u64) -> Result<LoadedModel, RegistryError> {
        let dir = self.version_dir(version);
        let manifest_path = dir.join(MANIFEST_FILE);
        if !manifest_path.is_file() {
            return Err(RegistryError::Missing { version });
        }
        let manifest_bytes = fs::read(&manifest_path).map_err(|e| io_err(version, &e))?;
        let manifest = decode_manifest(version, &manifest_bytes)?;
        if manifest.version != version {
            return Err(RegistryError::Malformed {
                version,
                artifact: Artifact::Manifest,
                detail: format!(
                    "manifest vouches for version {} but lives in v{version:06} — \
                     transplanted from another directory",
                    manifest.version
                ),
            });
        }

        let weights_path = dir.join(WEIGHTS_FILE);
        let weights = match fs::read(&weights_path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(RegistryError::Malformed {
                    version,
                    artifact: Artifact::Weights,
                    detail: "weights artifact missing despite a committed manifest".into(),
                })
            }
            Err(e) => return Err(io_err(version, &e)),
        };
        if (weights.len() as u64) < manifest.weights_len {
            return Err(RegistryError::Truncated {
                version,
                artifact: Artifact::Weights,
            });
        }
        if weights.len() as u64 != manifest.weights_len {
            return Err(RegistryError::Malformed {
                version,
                artifact: Artifact::Weights,
                detail: format!(
                    "weights artifact is {} bytes, manifest recorded {}",
                    weights.len(),
                    manifest.weights_len
                ),
            });
        }
        let found_crc = crc32(&weights);
        if found_crc != manifest.weights_crc {
            return Err(RegistryError::CrcMismatch {
                version,
                artifact: Artifact::Weights,
                expected: manifest.weights_crc,
                found: found_crc,
            });
        }

        let ckpt = TrainCheckpoint::decode(&weights)
            .map_err(|e| from_checkpoint(version, e))?;
        let (config, labels, vocab_size) = codec::decode_model_meta(&ckpt.extra)
            .map_err(|detail| RegistryError::Malformed {
                version,
                artifact: Artifact::Weights,
                detail,
            })?;
        if labels.len() as u64 != manifest.n_labels
            || vocab_size as u64 != manifest.vocab_size
        {
            return Err(RegistryError::Malformed {
                version,
                artifact: Artifact::Weights,
                detail: format!(
                    "architecture disagrees with manifest: {} labels / vocab {} in \
                     weights vs {} / {} in manifest",
                    labels.len(),
                    vocab_size,
                    manifest.n_labels,
                    manifest.vocab_size
                ),
            });
        }

        let mut model = KgLinkModel::new(&config, vocab_size, labels.len());
        kglink_nn::checkpoint::load_train_state(&mut model, &ckpt.train_state).map_err(
            |e| RegistryError::Malformed {
                version,
                artifact: Artifact::Weights,
                detail: format!("train-state blob rejected: {e}"),
            },
        )?;
        let params = model.param_count() as u64;
        if params != manifest.param_count {
            return Err(RegistryError::Malformed {
                version,
                artifact: Artifact::Weights,
                detail: format!(
                    "parameter count {params} does not match manifest's {}",
                    manifest.param_count
                ),
            });
        }
        let bad_values = count_non_finite(&mut model);
        if bad_values > 0 {
            return Err(RegistryError::NonFiniteWeights { version, bad_values });
        }

        Ok(LoadedModel {
            version,
            model: KgLink {
                config,
                model,
                labels,
            },
            vocab_size,
            tag: manifest.tag,
        })
    }

    /// [`load`](Self::load), but damaged versions are moved to
    /// `quarantine/` (best effort) before the typed error is returned, so
    /// they stop being load candidates.
    pub fn load_or_quarantine(&self, version: u64) -> Result<LoadedModel, RegistryError> {
        match self.load(version) {
            Ok(m) => Ok(m),
            Err(e) => {
                if e.is_corruption() {
                    let _ = self.quarantine(version, e.kind());
                }
                Err(e)
            }
        }
    }

    /// Move a version directory into `quarantine/`, tagged with `reason`.
    /// Returns the quarantine path.
    pub fn quarantine(&self, version: u64, reason: &str) -> Result<PathBuf, RegistryError> {
        let src = self.version_dir(version);
        if !src.is_dir() {
            return Err(RegistryError::Missing { version });
        }
        let safe: String = reason
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' { c } else { '-' })
            .collect();
        let qdir = self.root.join("quarantine");
        for attempt in 0..u32::MAX {
            let name = if attempt == 0 {
                format!("v{version:06}-{safe}")
            } else {
                format!("v{version:06}-{safe}-{attempt}")
            };
            let dst = qdir.join(name);
            if dst.exists() {
                continue;
            }
            return match fs::rename(&src, &dst) {
                Ok(()) => Ok(dst),
                Err(e) => Err(io_err(version, &e)),
            };
        }
        Err(RegistryError::Io {
            version,
            detail: "quarantine namespace exhausted".into(),
        })
    }

    /// Delete the oldest committed versions until at most `keep` remain.
    /// Returns the versions removed, oldest first.
    pub fn gc(&self, keep: usize) -> Result<Vec<u64>, RegistryError> {
        let versions = self.list();
        let excess = versions.len().saturating_sub(keep);
        let mut removed = Vec::with_capacity(excess);
        for &v in versions.iter().take(excess) {
            fs::remove_dir_all(self.version_dir(v)).map_err(|e| io_err(v, &e))?;
            removed.push(v);
        }
        Ok(removed)
    }

    /// Next free version id: one past the highest directory present,
    /// committed or not — an uncommitted (torn) publish never gets its id
    /// reused, so a later retry cannot resurrect its leftovers.
    fn next_version(&self) -> Result<u64, RegistryError> {
        let mut max = 0;
        let entries = fs::read_dir(self.versions_dir()).map_err(|e| root_io(&e))?;
        for entry in entries.flatten() {
            if let Some(v) = parse_version_dir(&entry.file_name().to_string_lossy()) {
                max = max.max(v);
            }
        }
        Ok(max + 1)
    }
}

/// Count non-finite scalars across a model's parameters.
pub fn count_non_finite(model: &mut dyn HasParams) -> u64 {
    let mut bad = 0u64;
    model.visit_params(&mut |p| {
        bad += p.value.data().iter().filter(|v| !v.is_finite()).count() as u64;
    });
    bad
}

struct ManifestV1 {
    version: u64,
    weights_len: u64,
    weights_crc: u32,
    n_labels: u64,
    vocab_size: u64,
    param_count: u64,
    tag: String,
}

fn encode_manifest(m: &ManifestV1) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64 + m.tag.len());
    codec::put_u64(&mut payload, m.version);
    codec::put_u64(&mut payload, m.weights_len);
    codec::put_u32(&mut payload, m.weights_crc);
    codec::put_u64(&mut payload, m.n_labels);
    codec::put_u64(&mut payload, m.vocab_size);
    codec::put_u64(&mut payload, m.param_count);
    codec::put_u32(&mut payload, m.tag.len() as u32);
    payload.extend_from_slice(m.tag.as_bytes());

    let mut out = Vec::with_capacity(payload.len() + 20);
    out.extend_from_slice(MANIFEST_MAGIC);
    codec::put_u32(&mut out, FORMAT_VERSION);
    codec::put_u32(&mut out, crc32(&payload));
    codec::put_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

fn decode_manifest(version: u64, bytes: &[u8]) -> Result<ManifestV1, RegistryError> {
    let art = Artifact::Manifest;
    let mut r = Reader::new(bytes);
    let magic = r
        .take(4)
        .map_err(|_| RegistryError::Truncated { version, artifact: art })?;
    if magic != MANIFEST_MAGIC {
        return Err(RegistryError::BadMagic { version, artifact: art });
    }
    let found_format = r
        .u32()
        .map_err(|_| RegistryError::Truncated { version, artifact: art })?;
    if found_format != FORMAT_VERSION {
        return Err(RegistryError::ForeignFormat {
            version,
            artifact: art,
            found: found_format,
            expected: FORMAT_VERSION,
        });
    }
    let expected_crc = r
        .u32()
        .map_err(|_| RegistryError::Truncated { version, artifact: art })?;
    let len = r
        .u64()
        .map_err(|_| RegistryError::Truncated { version, artifact: art })? as usize;
    let payload = r
        .take(len)
        .map_err(|_| RegistryError::Truncated { version, artifact: art })?;
    let found_crc = crc32(payload);
    if found_crc != expected_crc {
        return Err(RegistryError::CrcMismatch {
            version,
            artifact: art,
            expected: expected_crc,
            found: found_crc,
        });
    }
    let malformed = |detail: String| RegistryError::Malformed {
        version,
        artifact: art,
        detail,
    };
    let mut p = Reader::new(payload);
    let m = ManifestV1 {
        version: p.u64().map_err(&malformed)?,
        weights_len: p.u64().map_err(&malformed)?,
        weights_crc: p.u32().map_err(&malformed)?,
        n_labels: p.u64().map_err(&malformed)?,
        vocab_size: p.u64().map_err(&malformed)?,
        param_count: p.u64().map_err(&malformed)?,
        tag: {
            let n = p.u32().map_err(&malformed)? as usize;
            let raw = p.take(n).map_err(&malformed)?;
            String::from_utf8_lossy(raw).into_owned()
        },
    };
    if p.pos != payload.len() {
        return Err(malformed(format!(
            "{} trailing byte(s) in manifest payload",
            payload.len() - p.pos
        )));
    }
    Ok(m)
}

fn parse_version_dir(name: &str) -> Option<u64> {
    let digits = name.strip_prefix('v')?;
    if digits.len() != 6 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn io_err(version: u64, e: &io::Error) -> RegistryError {
    RegistryError::Io {
        version,
        detail: e.to_string(),
    }
}

fn root_io(e: &io::Error) -> RegistryError {
    RegistryError::Io {
        version: 0,
        detail: e.to_string(),
    }
}

fn from_checkpoint(version: u64, e: CheckpointError) -> RegistryError {
    let artifact = Artifact::Weights;
    match e {
        CheckpointError::BadMagic => RegistryError::BadMagic { version, artifact },
        CheckpointError::WrongVersion { found, expected } => RegistryError::ForeignFormat {
            version,
            artifact,
            found,
            expected,
        },
        CheckpointError::Truncated => RegistryError::Truncated { version, artifact },
        CheckpointError::CrcMismatch { expected, found } => RegistryError::CrcMismatch {
            version,
            artifact,
            expected,
            found,
        },
        CheckpointError::WrongArchitecture(e) => RegistryError::Malformed {
            version,
            artifact,
            detail: format!("wrong architecture: {e}"),
        },
        CheckpointError::Io(detail) => RegistryError::Io { version, detail },
    }
}
