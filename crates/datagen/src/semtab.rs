//! SemTab-like dataset generator.
//!
//! SemTab 2019 is KG-derived: tables were extracted from Wikipedia/DBpedia,
//! so nearly every cell links back to the KG and the 275 column labels *are*
//! KG type entities. This generator reproduces that regime from the
//! synthetic world: each table follows a relational template (an entity
//! column plus relation columns), labels are the fine KG type names, there
//! are **no numeric columns** (paper Table III: 0%), and cell noise is mild.

use crate::common::{mention_of, related_of_type, sample_instances};
use crate::noise::maybe_perturb;
use crate::GeneratedBenchmark;
use kglink_kg::{EntityId, SyntheticWorld};
use kglink_table::{CellValue, Dataset, LabelVocab, SplitSpec, Table, TableId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// SemTab-like generation settings.
#[derive(Debug, Clone)]
pub struct SemTabConfig {
    pub seed: u64,
    /// Number of tables to generate.
    pub n_tables: usize,
    /// Rows per table, inclusive range.
    pub min_rows: usize,
    pub max_rows: usize,
    /// Probability a cell mention is perturbed (typo/case damage).
    pub cell_noise: f64,
    /// Probability an entity mention uses an alias instead of its label.
    pub alias_mention_prob: f64,
}

impl Default for SemTabConfig {
    fn default() -> Self {
        SemTabConfig {
            seed: 101,
            n_tables: 240,
            min_rows: 10,
            max_rows: 40,
            cell_noise: 0.20,
            alias_mention_prob: 0.22,
        }
    }
}

impl SemTabConfig {
    /// A small configuration for tests.
    pub fn tiny(seed: u64) -> Self {
        SemTabConfig {
            seed,
            n_tables: 30,
            min_rows: 5,
            max_rows: 12,
            ..Self::default()
        }
    }
}

/// One relation column of a template: predicate name, target type (by
/// `WorldTypes` accessor), and the dataset label to assign.
struct RelCol {
    predicate: &'static str,
    target_type: fn(&SyntheticWorld) -> EntityId,
    label: &'static str,
}

/// A relational table template: a subject type plus relation columns.
struct Template {
    subject_type: fn(&SyntheticWorld) -> EntityId,
    subject_label: &'static str,
    relations: Vec<RelCol>,
}

fn templates() -> Vec<Template> {
    use kglink_kg::predicates as P;
    let athlete = |fine: fn(&SyntheticWorld) -> EntityId, label: &'static str| Template {
        subject_type: fine,
        subject_label: label,
        relations: vec![
            RelCol {
                predicate: P::MEMBER_OF_SPORTS_TEAM,
                target_type: |w| w.types.sports_team,
                label: "Sports team",
            },
            RelCol {
                predicate: P::POSITION_PLAYED,
                target_type: |w| w.types.position,
                label: "Position",
            },
            RelCol {
                predicate: P::COUNTRY,
                target_type: |w| w.types.country,
                label: "Country",
            },
        ],
    };
    let musician = |fine: fn(&SyntheticWorld) -> EntityId, label: &'static str| Template {
        subject_type: fine,
        subject_label: label,
        relations: vec![
            RelCol {
                predicate: P::MEMBER_OF,
                target_type: |w| w.types.musical_group,
                label: "Musical group",
            },
            RelCol {
                predicate: P::COUNTRY,
                target_type: |w| w.types.country,
                label: "Country",
            },
        ],
    };
    vec![
        athlete(|w| w.types.basketball_player, "Basketball player"),
        athlete(|w| w.types.cricketer, "Cricketer"),
        athlete(|w| w.types.footballer, "Footballer"),
        athlete(|w| w.types.tennis_player, "Tennis player"),
        musician(|w| w.types.singer, "Singer"),
        musician(|w| w.types.composer, "Composer"),
        musician(|w| w.types.guitarist, "Guitarist"),
        Template {
            subject_type: |w| w.types.album,
            subject_label: "Album",
            relations: vec![
                RelCol {
                    predicate: P::COMPOSER,
                    target_type: |w| w.types.composer,
                    label: "Composer",
                },
                RelCol {
                    predicate: P::GENRE,
                    target_type: |w| w.types.genre,
                    label: "Genre",
                },
            ],
        },
        Template {
            subject_type: |w| w.types.film,
            subject_label: "Film",
            relations: vec![
                RelCol {
                    predicate: P::DIRECTOR,
                    target_type: |w| w.types.film_director,
                    label: "Film director",
                },
                RelCol {
                    predicate: P::CAST_MEMBER,
                    target_type: |w| w.types.actor,
                    label: "Actor",
                },
                RelCol {
                    predicate: P::COUNTRY,
                    target_type: |w| w.types.country,
                    label: "Country",
                },
            ],
        },
        Template {
            subject_type: |w| w.types.tv_series,
            subject_label: "Television series",
            relations: vec![
                RelCol {
                    predicate: P::DIRECTOR,
                    target_type: |w| w.types.film_director,
                    label: "Film director",
                },
                RelCol {
                    predicate: P::CAST_MEMBER,
                    target_type: |w| w.types.actor,
                    label: "Actor",
                },
            ],
        },
        Template {
            subject_type: |w| w.types.book,
            subject_label: "Book",
            relations: vec![
                RelCol {
                    predicate: P::AUTHOR,
                    target_type: |w| w.types.writer,
                    label: "Writer",
                },
                RelCol {
                    predicate: P::LANGUAGE_OF_WORK,
                    target_type: |w| w.types.language,
                    label: "Language",
                },
            ],
        },
        Template {
            subject_type: |w| w.types.city,
            subject_label: "City",
            relations: vec![RelCol {
                predicate: P::COUNTRY,
                target_type: |w| w.types.country,
                label: "Country",
            }],
        },
        Template {
            subject_type: |w| w.types.country,
            subject_label: "Country",
            relations: vec![RelCol {
                predicate: P::CAPITAL,
                target_type: |w| w.types.city,
                label: "City",
            }],
        },
        Template {
            subject_type: |w| w.types.protein,
            subject_label: "Protein",
            relations: vec![RelCol {
                predicate: P::ENCODED_BY,
                target_type: |w| w.types.gene,
                label: "Gene",
            }],
        },
        Template {
            subject_type: |w| w.types.enzyme,
            subject_label: "Enzyme",
            relations: vec![RelCol {
                predicate: P::ENCODED_BY,
                target_type: |w| w.types.gene,
                label: "Gene",
            }],
        },
        Template {
            subject_type: |w| w.types.sports_team,
            subject_label: "Sports team",
            relations: vec![RelCol {
                predicate: P::SPORT,
                target_type: |w| w.types.sport,
                label: "Sport",
            }],
        },
        Template {
            subject_type: |w| w.types.scientist,
            subject_label: "Scientist",
            relations: vec![
                RelCol {
                    predicate: P::EMPLOYER,
                    target_type: |w| w.types.university,
                    label: "University",
                },
                RelCol {
                    predicate: P::COUNTRY,
                    target_type: |w| w.types.country,
                    label: "Country",
                },
            ],
        },
        Template {
            subject_type: |w| w.types.scholarly_article,
            subject_label: "Scholarly article",
            relations: vec![RelCol {
                predicate: P::AUTHOR,
                target_type: |w| w.types.scientist,
                label: "Scientist",
            }],
        },
    ]
}

/// Generate a SemTab-like benchmark from a synthetic world. The returned
/// dataset already has the paper's 7:1:2 stratified split assigned.
pub fn semtab_like(world: &SyntheticWorld, config: &SemTabConfig) -> GeneratedBenchmark {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let templates = templates();
    let mut vocab = LabelVocab::new();
    let mut label_to_type: HashMap<kglink_table::LabelId, EntityId> = HashMap::new();

    // Pre-intern labels and the type membership sets.
    let mut members: HashMap<EntityId, HashSet<EntityId>> = HashMap::new();
    for t in &templates {
        let sty = (t.subject_type)(world);
        let lid = vocab.intern(t.subject_label);
        label_to_type.insert(lid, sty);
        members
            .entry(sty)
            .or_insert_with(|| world.instances_of(sty).iter().copied().collect());
        for r in &t.relations {
            let rty = (r.target_type)(world);
            let lid = vocab.intern(r.label);
            label_to_type.insert(lid, rty);
            members
                .entry(rty)
                .or_insert_with(|| world.instances_of(rty).iter().copied().collect());
        }
    }

    let mut tables = Vec::with_capacity(config.n_tables);
    let usable: Vec<&Template> = templates
        .iter()
        .filter(|t| !world.instances_of((t.subject_type)(world)).is_empty())
        .collect();
    for ti in 0..config.n_tables {
        let tmpl = usable[rng.gen_range(0..usable.len())];
        let sty = (tmpl.subject_type)(world);
        let pool = world.instances_of(sty);
        let n_rows = rng.gen_range(config.min_rows..=config.max_rows).min(pool.len().max(1));
        let subjects = sample_instances(pool, n_rows, &mut rng);
        if subjects.is_empty() {
            continue;
        }
        // Decide which relation columns to include (keep 1..=all, random).
        let mut rel_idx: Vec<usize> = (0..tmpl.relations.len()).collect();
        rel_idx.shuffle(&mut rng);
        let keep = rng.gen_range(1..=tmpl.relations.len().max(1));
        rel_idx.truncate(keep);
        rel_idx.sort_unstable();

        let mut columns: Vec<Vec<CellValue>> = Vec::with_capacity(1 + rel_idx.len());
        let mut labels = vec![vocab.intern(tmpl.subject_label)];
        // Subject column.
        let subject_cells: Vec<CellValue> = subjects
            .iter()
            .map(|&s| {
                let m = mention_of(&world.graph, s, config.alias_mention_prob, &mut rng);
                CellValue::Text(maybe_perturb(&m, config.cell_noise, &mut rng))
            })
            .collect();
        columns.push(subject_cells);
        // Relation columns.
        for &ri in &rel_idx {
            let rel = &tmpl.relations[ri];
            let rty = (rel.target_type)(world);
            let member_set = &members[&rty];
            let cells: Vec<CellValue> = subjects
                .iter()
                .map(|&s| {
                    match related_of_type(world, s, rel.predicate, member_set) {
                        Some(target) => {
                            let m = mention_of(&world.graph, target, config.alias_mention_prob, &mut rng);
                            CellValue::Text(maybe_perturb(&m, config.cell_noise, &mut rng))
                        }
                        None => CellValue::Empty,
                    }
                })
                .collect();
            // Drop columns that are mostly empty — they would be unlabeled
            // noise rather than an annotatable column.
            let non_empty = cells.iter().filter(|c| !matches!(c, CellValue::Empty)).count();
            if non_empty * 2 >= cells.len() {
                columns.push(cells);
                labels.push(vocab.intern(rel.label));
            }
        }
        tables.push(Table::new(TableId(ti as u32), Vec::new(), columns, labels));
    }

    let mut dataset = Dataset::new("semtab-like", tables, vocab);
    dataset.assign_splits(SplitSpec::default(), config.seed ^ 0x5e17);
    GeneratedBenchmark {
        dataset,
        label_to_type,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_kg::WorldConfig;
    use kglink_table::Split;

    fn bench() -> GeneratedBenchmark {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(7));
        semtab_like(&world, &SemTabConfig::tiny(7))
    }

    #[test]
    fn generates_requested_table_count() {
        let b = bench();
        assert_eq!(b.dataset.len(), 30);
        assert!(b.dataset.n_columns() >= 60, "multi-column tables");
    }

    #[test]
    fn no_numeric_columns() {
        let b = bench();
        for t in &b.dataset.tables {
            for c in 0..t.n_cols() {
                assert!(!t.is_numeric_column(c), "SemTab-like must have no numeric columns");
            }
        }
    }

    #[test]
    fn labels_map_to_kg_types() {
        let b = bench();
        for (lid, _name) in b.dataset.labels.iter() {
            assert!(
                b.label_to_type.contains_key(&lid),
                "every SemTab label is a KG type"
            );
        }
    }

    #[test]
    fn splits_are_assigned() {
        let b = bench();
        assert!(!b.dataset.table_indices(Split::Train).is_empty());
        assert!(!b.dataset.table_indices(Split::Test).is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(7));
        let b1 = semtab_like(&world, &SemTabConfig::tiny(7));
        let b2 = semtab_like(&world, &SemTabConfig::tiny(7));
        assert_eq!(b1.dataset.len(), b2.dataset.len());
        for (t1, t2) in b1.dataset.tables.iter().zip(&b2.dataset.tables) {
            assert_eq!(t1.labels, t2.labels);
            assert_eq!(t1.columns, t2.columns);
        }
    }

    #[test]
    fn rows_within_bounds() {
        let b = bench();
        for t in &b.dataset.tables {
            assert!(t.n_rows() <= 12);
            assert!(t.n_rows() >= 1);
        }
    }
}
