//! VizNet-like dataset generator.
//!
//! The modified VizNet corpus (Sato's multi-column subset, used by the
//! paper) is web-table flavored: **coarse** labels (`name`, `city`, `year`,
//! `rank`, …), ~12.8% numeric columns, and a tail of text columns with no
//! KG linkage at all (long addresses, abbreviation codes). This generator
//! reproduces those regimes:
//!
//! * Subject columns of several entity kinds share the single coarse label
//!   `name` — the *type granularity gap* in its dataset form (KG candidate
//!   types will say `Basketball player` where the label says `name`).
//! * `position` columns render mostly as abbreviation codes ("PF" for
//!   `Power forward`), the paper's own hard example.
//! * `address` and `code` columns are synthesized strings with no KG
//!   counterpart — the zero-linkage regime of the paper's Table IV.

use crate::common::{mention_of, related_of_type, sample_instances, synth_address, synth_code};
use crate::noise::maybe_perturb;
use crate::GeneratedBenchmark;
use kglink_kg::{predicates as P, EntityId, SyntheticWorld};
use kglink_table::{CellValue, Dataset, LabelVocab, SplitSpec, Table, TableId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// VizNet-like generation settings.
#[derive(Debug, Clone)]
pub struct VizNetConfig {
    pub seed: u64,
    pub n_tables: usize,
    pub min_rows: usize,
    pub max_rows: usize,
    /// Cell perturbation probability (web tables are noisier than SemTab).
    pub cell_noise: f64,
    /// Probability an entity mention uses an alias.
    pub alias_mention_prob: f64,
    /// Probability each optional numeric column is included; tunes the
    /// dataset's numeric-column fraction toward the paper's 12.8%.
    pub numeric_col_prob: f64,
}

impl Default for VizNetConfig {
    fn default() -> Self {
        VizNetConfig {
            seed: 202,
            n_tables: 700,
            min_rows: 8,
            max_rows: 22,
            cell_noise: 0.28,
            alias_mention_prob: 0.25,
            numeric_col_prob: 0.25,
        }
    }
}

impl VizNetConfig {
    /// A small configuration for tests.
    pub fn tiny(seed: u64) -> Self {
        VizNetConfig {
            seed,
            n_tables: 40,
            min_rows: 5,
            max_rows: 10,
            ..Self::default()
        }
    }
}

/// Which generator-side numeric fact feeds a numeric column.
#[derive(Debug, Clone, Copy)]
enum NumericKind {
    BirthYear,
    Age,
    Height,
    Rating,
    Population,
    FoundedYear,
    ReleaseYear,
}

/// One column of a VizNet-like template.
enum ColSpec {
    /// The subject entity's mention; coarse label.
    Subject { label: &'static str },
    /// A related entity's mention.
    Relation {
        predicate: &'static str,
        label: &'static str,
        /// Restrict targets to this type (None = accept any target).
        target: Option<fn(&SyntheticWorld) -> EntityId>,
        /// Render mostly as alias (for abbreviation-code columns).
        prefer_alias: bool,
    },
    /// A numeric fact of the subject; always-numeric column (optional,
    /// included with `numeric_col_prob`).
    Numeric { kind: NumericKind, label: &'static str },
    /// Row index 1..n.
    Rank,
    /// Random score.
    Score,
    /// Synthesized street address — unlinkable text.
    Address,
    /// Synthesized opaque code — unlinkable text.
    Code,
}

/// A VizNet-like template: pools of subject types plus column specs.
struct Template {
    subjects: Vec<fn(&SyntheticWorld) -> EntityId>,
    cols: Vec<ColSpec>,
}

fn templates() -> Vec<Template> {
    vec![
        // Athlete roster: the paper's running example (name/team/position).
        Template {
            subjects: vec![
                |w| w.types.basketball_player,
                |w| w.types.cricketer,
                |w| w.types.footballer,
                |w| w.types.tennis_player,
            ],
            cols: vec![
                ColSpec::Subject { label: "name" },
                ColSpec::Relation {
                    predicate: P::MEMBER_OF_SPORTS_TEAM,
                    label: "team",
                    target: Some(|w| w.types.sports_team),
                    prefer_alias: false,
                },
                ColSpec::Relation {
                    predicate: P::POSITION_PLAYED,
                    label: "position",
                    target: Some(|w| w.types.position),
                    prefer_alias: true,
                },
                ColSpec::Numeric {
                    kind: NumericKind::Height,
                    label: "height",
                },
                ColSpec::Numeric {
                    kind: NumericKind::BirthYear,
                    label: "year",
                },
            ],
        },
        // Discography.
        Template {
            subjects: vec![|w| w.types.album],
            cols: vec![
                ColSpec::Subject { label: "album" },
                ColSpec::Relation {
                    predicate: P::PERFORMER,
                    label: "artist",
                    target: None,
                    prefer_alias: false,
                },
                ColSpec::Relation {
                    predicate: P::GENRE,
                    label: "genre",
                    target: Some(|w| w.types.genre),
                    prefer_alias: false,
                },
                ColSpec::Numeric {
                    kind: NumericKind::ReleaseYear,
                    label: "year",
                },
            ],
        },
        // Gazetteer.
        Template {
            subjects: vec![|w| w.types.city],
            cols: vec![
                ColSpec::Subject { label: "city" },
                ColSpec::Relation {
                    predicate: P::COUNTRY,
                    label: "country",
                    target: Some(|w| w.types.country),
                    prefer_alias: false,
                },
                ColSpec::Numeric {
                    kind: NumericKind::Population,
                    label: "population",
                },
            ],
        },
        // Filmography.
        Template {
            subjects: vec![|w| w.types.film],
            cols: vec![
                ColSpec::Subject { label: "film" },
                ColSpec::Relation {
                    predicate: P::DIRECTOR,
                    label: "director",
                    target: Some(|w| w.types.film_director),
                    prefer_alias: false,
                },
                ColSpec::Numeric {
                    kind: NumericKind::ReleaseYear,
                    label: "year",
                },
                ColSpec::Numeric {
                    kind: NumericKind::Rating,
                    label: "result",
                },
            ],
        },
        // Company registry.
        Template {
            subjects: vec![|w| w.types.company],
            cols: vec![
                ColSpec::Subject { label: "company" },
                ColSpec::Relation {
                    predicate: P::COUNTRY,
                    label: "country",
                    target: Some(|w| w.types.country),
                    prefer_alias: false,
                },
                ColSpec::Numeric {
                    kind: NumericKind::FoundedYear,
                    label: "year",
                },
            ],
        },
        // Contact list: name + address (+ age) — the zero-linkage regime.
        Template {
            subjects: vec![|w| w.types.singer, |w| w.types.actor, |w| w.types.writer],
            cols: vec![
                ColSpec::Subject { label: "name" },
                ColSpec::Address,
                ColSpec::Numeric {
                    kind: NumericKind::Age,
                    label: "age",
                },
            ],
        },
        // League standings: rank + name + team + score.
        Template {
            subjects: vec![|w| w.types.footballer, |w| w.types.basketball_player],
            cols: vec![
                ColSpec::Rank,
                ColSpec::Subject { label: "name" },
                ColSpec::Relation {
                    predicate: P::MEMBER_OF_SPORTS_TEAM,
                    label: "team",
                    target: Some(|w| w.types.sports_team),
                    prefer_alias: false,
                },
                ColSpec::Score,
            ],
        },
        // Inventory codes: code + name + score — more zero-linkage columns.
        Template {
            subjects: vec![|w| w.types.company],
            cols: vec![
                ColSpec::Code,
                ColSpec::Subject { label: "company" },
                ColSpec::Score,
            ],
        },
        // Score sheet: numbers only — an entirely KG-unlinkable table, the
        // main population behind the paper's Table IV subset ("columns …
        // whose entire table has no linkage to the KG" — 556 of its 612
        // columns are numeric).
        Template {
            subjects: vec![|w| w.types.company],
            cols: vec![ColSpec::Rank, ColSpec::Score, ColSpec::Score],
        },
        // Mailing list: addresses + ages only — also fully unlinkable.
        Template {
            subjects: vec![|w| w.types.writer, |w| w.types.actor],
            cols: vec![
                ColSpec::Address,
                ColSpec::Numeric {
                    kind: NumericKind::Age,
                    label: "age",
                },
                ColSpec::Code,
            ],
        },
        // Library catalogue.
        Template {
            subjects: vec![|w| w.types.book],
            cols: vec![
                ColSpec::Subject { label: "name" },
                ColSpec::Relation {
                    predicate: P::AUTHOR,
                    label: "artist",
                    target: Some(|w| w.types.writer),
                    prefer_alias: false,
                },
                ColSpec::Relation {
                    predicate: P::LANGUAGE_OF_WORK,
                    label: "language",
                    target: Some(|w| w.types.language),
                    prefer_alias: false,
                },
                ColSpec::Numeric {
                    kind: NumericKind::ReleaseYear,
                    label: "year",
                },
            ],
        },
    ]
}

fn numeric_cell(world: &SyntheticWorld, subject: EntityId, kind: NumericKind, rng: &mut StdRng) -> CellValue {
    let n = &world.numeric;
    let raw = match kind {
        NumericKind::BirthYear => n.birth_year.get(&subject).map(|&y| y as f64),
        NumericKind::Age => n.birth_year.get(&subject).map(|&y| (2024 - y) as f64),
        NumericKind::Height => n.height_cm.get(&subject).copied(),
        NumericKind::Rating => n.rating.get(&subject).copied(),
        NumericKind::Population => n.population.get(&subject).map(|&p| p as f64),
        NumericKind::FoundedYear => n.founded_year.get(&subject).map(|&y| y as f64),
        NumericKind::ReleaseYear => n.release_year.get(&subject).map(|&y| y as f64),
    };
    match raw {
        Some(v) => {
            let rendered = match kind {
                NumericKind::Height | NumericKind::Rating => format!("{v:.1}"),
                _ => format!("{}", v as i64),
            };
            CellValue::parse(&rendered)
        }
        None => {
            // Fall back to a plausible random value so numeric columns stay
            // fully numeric even when the subject lacks the fact.
            let v: f64 = rng.gen_range(1.0..100.0);
            CellValue::Number((v * 10.0).round() / 10.0)
        }
    }
}

/// Generate a VizNet-like benchmark. The returned dataset has the 7:1:2
/// stratified split assigned.
pub fn viznet_like(world: &SyntheticWorld, config: &VizNetConfig) -> GeneratedBenchmark {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let templates = templates();
    let mut vocab = LabelVocab::new();

    // Coarse label → KG type for the MTab translation.
    let mut label_to_type: HashMap<kglink_table::LabelId, EntityId> = HashMap::new();
    let coarse_map: [(&str, EntityId); 12] = [
        ("name", world.types.person),
        ("team", world.types.sports_team),
        ("position", world.types.position),
        ("album", world.types.album),
        ("artist", world.types.musician),
        ("genre", world.types.genre),
        ("city", world.types.city),
        ("country", world.types.country),
        ("film", world.types.film),
        ("director", world.types.film_director),
        ("company", world.types.company),
        ("language", world.types.language),
    ];
    for (name, ty) in coarse_map {
        let lid = vocab.intern(name);
        label_to_type.insert(lid, ty);
    }

    let mut member_sets: HashMap<EntityId, HashSet<EntityId>> = HashMap::new();
    let mut tables = Vec::with_capacity(config.n_tables);
    for ti in 0..config.n_tables {
        let tmpl = &templates[rng.gen_range(0..templates.len())];
        let sub_ty = tmpl.subjects[rng.gen_range(0..tmpl.subjects.len())](world);
        let pool = world.instances_of(sub_ty);
        if pool.is_empty() {
            continue;
        }
        let n_rows = rng.gen_range(config.min_rows..=config.max_rows).min(pool.len());
        let subjects = sample_instances(pool, n_rows, &mut rng);

        let mut columns: Vec<Vec<CellValue>> = Vec::new();
        let mut labels = Vec::new();
        for spec in &tmpl.cols {
            match spec {
                ColSpec::Subject { label } => {
                    let cells = subjects
                        .iter()
                        .map(|&s| {
                            let m = mention_of(&world.graph, s, config.alias_mention_prob, &mut rng);
                            CellValue::Text(maybe_perturb(&m, config.cell_noise, &mut rng))
                        })
                        .collect();
                    columns.push(cells);
                    labels.push(vocab.intern(label));
                }
                ColSpec::Relation {
                    predicate,
                    label,
                    target,
                    prefer_alias,
                } => {
                    let member_set = target.map(|f| {
                        let ty = f(world);
                        member_sets
                            .entry(ty)
                            .or_insert_with(|| world.instances_of(ty).iter().copied().collect())
                            .clone()
                    });
                    let cells: Vec<CellValue> = subjects
                        .iter()
                        .map(|&s| {
                            let rel = match &member_set {
                                Some(set) => related_of_type(world, s, predicate, set),
                                None => crate::common::related(&world.graph, s, predicate),
                            };
                            match rel {
                                Some(t) => {
                                    let alias_p = if *prefer_alias {
                                        0.75
                                    } else {
                                        config.alias_mention_prob
                                    };
                                    let m = mention_of(&world.graph, t, alias_p, &mut rng);
                                    CellValue::Text(maybe_perturb(&m, config.cell_noise, &mut rng))
                                }
                                None => CellValue::Empty,
                            }
                        })
                        .collect();
                    let non_empty = cells.iter().filter(|c| !matches!(c, CellValue::Empty)).count();
                    if non_empty * 2 >= cells.len() {
                        columns.push(cells);
                        labels.push(vocab.intern(label));
                    }
                }
                ColSpec::Numeric { kind, label } => {
                    if rng.gen_bool(config.numeric_col_prob) {
                        let cells = subjects
                            .iter()
                            .map(|&s| numeric_cell(world, s, *kind, &mut rng))
                            .collect();
                        columns.push(cells);
                        labels.push(vocab.intern(label));
                    }
                }
                ColSpec::Rank => {
                    let cells = (1..=subjects.len())
                        .map(|i| CellValue::Number(i as f64))
                        .collect();
                    columns.push(cells);
                    labels.push(vocab.intern("rank"));
                }
                ColSpec::Score => {
                    if rng.gen_bool(config.numeric_col_prob + 0.3) {
                        let cells = subjects
                            .iter()
                            .map(|_| {
                                let v: f64 = rng.gen_range(0.0..100.0);
                                CellValue::Number((v * 100.0).round() / 100.0)
                            })
                            .collect();
                        columns.push(cells);
                        labels.push(vocab.intern("result"));
                    }
                }
                ColSpec::Address => {
                    let cells = subjects
                        .iter()
                        .map(|_| CellValue::Text(synth_address(&mut rng)))
                        .collect();
                    columns.push(cells);
                    labels.push(vocab.intern("address"));
                }
                ColSpec::Code => {
                    let cells = subjects
                        .iter()
                        .map(|_| CellValue::Text(synth_code(&mut rng)))
                        .collect();
                    columns.push(cells);
                    labels.push(vocab.intern("code"));
                }
            }
        }
        if columns.len() < 2 {
            // The paper uses the *multi-column* VizNet subset.
            continue;
        }
        tables.push(Table::new(TableId(ti as u32), Vec::new(), columns, labels));
    }

    let mut dataset = Dataset::new("viznet-like", tables, vocab);
    dataset.assign_splits(SplitSpec::default(), config.seed ^ 0x71e7);
    GeneratedBenchmark {
        dataset,
        label_to_type,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_kg::WorldConfig;

    fn bench() -> GeneratedBenchmark {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(9));
        viznet_like(&world, &VizNetConfig::tiny(9))
    }

    #[test]
    fn has_numeric_columns_in_target_band() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(9));
        let b = viznet_like(
            &world,
            &VizNetConfig {
                n_tables: 200,
                ..VizNetConfig::tiny(9)
            },
        );
        let mut numeric = 0usize;
        let mut total = 0usize;
        for t in &b.dataset.tables {
            for c in 0..t.n_cols() {
                total += 1;
                if t.is_numeric_column(c) {
                    numeric += 1;
                }
            }
        }
        let frac = numeric as f64 / total as f64;
        assert!(
            (0.05..0.40).contains(&frac),
            "numeric fraction {frac} should be in the web-table band (paper: 12.8%)"
        );
    }

    #[test]
    fn every_table_is_multi_column() {
        let b = bench();
        for t in &b.dataset.tables {
            assert!(t.n_cols() >= 2);
        }
    }

    #[test]
    fn contains_unlinkable_column_kinds() {
        let b = bench();
        let has = |name: &str| b.dataset.labels.get(name).is_some();
        assert!(has("address") || has("code"), "zero-linkage text columns exist");
        assert!(has("name"), "coarse name label exists");
    }

    #[test]
    fn coarse_name_label_spans_multiple_entity_kinds() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(9));
        let b = viznet_like(
            &world,
            &VizNetConfig {
                n_tables: 120,
                ..VizNetConfig::tiny(9)
            },
        );
        // "name" appears as the subject label of several templates — this is
        // the dataset-side type granularity gap.
        let name = b.dataset.labels.get("name").unwrap();
        let count = b
            .dataset
            .tables
            .iter()
            .flat_map(|t| &t.labels)
            .filter(|&&l| l == name)
            .count();
        assert!(count >= 5, "name label should be common, saw {count}");
    }

    #[test]
    fn label_map_is_partial() {
        let b = bench();
        // Numeric labels have no KG type.
        if let Some(year) = b.dataset.labels.get("year") {
            assert!(!b.label_to_type.contains_key(&year));
        }
        let name = b.dataset.labels.get("name").unwrap();
        assert!(b.label_to_type.contains_key(&name));
    }

    #[test]
    fn deterministic() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(9));
        let b1 = viznet_like(&world, &VizNetConfig::tiny(9));
        let b2 = viznet_like(&world, &VizNetConfig::tiny(9));
        assert_eq!(b1.dataset.len(), b2.dataset.len());
        for (t1, t2) in b1.dataset.tables.iter().zip(&b2.dataset.tables) {
            assert_eq!(t1.columns, t2.columns);
        }
    }
}
