//! Cell-level noise models: typos, casing damage, alias substitution.

use rand::rngs::StdRng;
use rand::Rng;

/// Apply a single-character typo (swap, drop, or duplicate) to `s`.
/// Strings shorter than 4 characters are returned unchanged — mangling a
/// short code would destroy it entirely rather than perturb it.
pub fn typo(s: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 4 {
        return s.to_string();
    }
    let i = rng.gen_range(1..chars.len() - 1);
    let mut out: Vec<char> = chars.clone();
    match rng.gen_range(0..3u8) {
        0 => out.swap(i, i - 1),
        1 => {
            out.remove(i);
        }
        _ => out.insert(i, chars[i]),
    }
    out.into_iter().collect()
}

/// Randomly damage the casing of `s` (all lower or all upper).
pub fn case_damage(s: &str, rng: &mut StdRng) -> String {
    if rng.gen_bool(0.5) {
        s.to_lowercase()
    } else {
        s.to_uppercase()
    }
}

/// Perturb a mention with probability `p`: typo (2/3) or case damage (1/3).
pub fn maybe_perturb(s: &str, p: f64, rng: &mut StdRng) -> String {
    if !rng.gen_bool(p) {
        return s.to_string();
    }
    if rng.gen_bool(2.0 / 3.0) {
        typo(s, rng)
    } else {
        case_damage(s, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(33)
    }

    #[test]
    fn typo_changes_longer_strings() {
        let mut r = rng();
        let mut changed = 0;
        for _ in 0..20 {
            if typo("Peter Steele", &mut r) != "Peter Steele" {
                changed += 1;
            }
        }
        assert!(changed >= 15, "most typos should alter the string");
    }

    #[test]
    fn typo_preserves_short_codes() {
        let mut r = rng();
        assert_eq!(typo("PF", &mut r), "PF");
        assert_eq!(typo("abc", &mut r), "abc");
    }

    #[test]
    fn typo_changes_length_by_at_most_one() {
        let mut r = rng();
        for _ in 0..50 {
            let t = typo("Springfield", &mut r);
            let diff = (t.chars().count() as i64 - 11).abs();
            assert!(diff <= 1, "{t}");
        }
    }

    #[test]
    fn perturb_probability_zero_is_identity() {
        let mut r = rng();
        assert_eq!(maybe_perturb("Hello World", 0.0, &mut r), "Hello World");
    }

    #[test]
    fn case_damage_flattens_case() {
        let mut r = rng();
        let d = case_damage("MiXeD", &mut r);
        assert!(d == "mixed" || d == "MIXED");
    }
}
