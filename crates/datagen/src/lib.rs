//! Benchmark dataset generators.
//!
//! The paper evaluates on two corpora whose raw data cannot be shipped here,
//! so this crate generates synthetic datasets out of the synthetic knowledge
//! graph with the same *phenomenology*:
//!
//! * [`semtab`] — SemTab-like: KG-derived tables, **fine-grained** labels
//!   that are KG type entities (275 classes in the paper), no numeric
//!   columns, high KG linkage. This dataset exhibits the *type granularity*
//!   structure: candidate types retrieved from the KG sit at several
//!   hierarchy levels around each label.
//! * [`viznet`] — VizNet-like: web-table flavor, **coarse** labels
//!   (77 classes in the paper), ≈12.8% numeric columns, plus text columns
//!   with no KG linkage at all (addresses, abbreviation codes) — the
//!   *valuable context missing* regime.
//! * [`corpus`] — verbalized KG triples used as the MLM pre-training corpus
//!   (the stand-in for BERT's prior knowledge).
//! * [`noise`] — cell-level noise: typos, casing damage, alias substitution.
//!
//! Both generators return a [`GeneratedBenchmark`], which couples the
//! dataset with the label→KG-type mapping that the MTab baseline needs (the
//! paper: "We translate the label on VizNet dataset to WikiData KG entities
//! to make MTab work").

#![deny(deprecated)]

pub mod bigworld;
pub mod common;
pub mod corpus;
pub mod noise;
pub mod semtab;
pub mod viznet;

use kglink_kg::EntityId;
use kglink_table::{Dataset, LabelId};
use std::collections::HashMap;

pub use bigworld::{generate_big_world, BigWorld, BigWorldConfig};
pub use corpus::pretrain_corpus;
pub use semtab::{semtab_like, SemTabConfig};
pub use viznet::{viznet_like, VizNetConfig};

/// A generated dataset plus its label → KG-type-entity mapping.
#[derive(Debug, Clone)]
pub struct GeneratedBenchmark {
    pub dataset: Dataset,
    /// For each dataset label, the KG type entity it corresponds to (if
    /// any). SemTab labels map exactly; VizNet labels map partially, and
    /// numeric-ish labels (`year`, `rank`, …) map to nothing.
    pub label_to_type: HashMap<LabelId, EntityId>,
}
