//! Shared helpers for the dataset generators.

use kglink_kg::{EntityId, KnowledgeGraph, SyntheticWorld};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// First outgoing edge of `e` with predicate `pred`, if any.
pub fn related(graph: &KnowledgeGraph, e: EntityId, pred: &str) -> Option<EntityId> {
    let p = graph.predicate_id(pred)?;
    graph
        .outgoing(e)
        .iter()
        .find(|edge| edge.predicate == p)
        .map(|edge| edge.target)
}

/// First outgoing edge of `e` with predicate `pred` whose target belongs to
/// the generator-side instance set of `ty` (robust to KG coverage holes).
pub fn related_of_type(
    world: &SyntheticWorld,
    e: EntityId,
    pred: &str,
    ty_members: &HashSet<EntityId>,
) -> Option<EntityId> {
    let p = world.graph.predicate_id(pred)?;
    world
        .graph
        .outgoing(e)
        .iter()
        .find(|edge| edge.predicate == p && ty_members.contains(&edge.target))
        .map(|edge| edge.target)
}

/// Sample up to `n` distinct instances of a pool.
pub fn sample_instances(pool: &[EntityId], n: usize, rng: &mut StdRng) -> Vec<EntityId> {
    let mut idxs: Vec<usize> = (0..pool.len()).collect();
    idxs.shuffle(rng);
    idxs.truncate(n);
    idxs.into_iter().map(|i| pool[i]).collect()
}

/// Surface form of an entity: usually the label, sometimes an alias.
pub fn mention_of(graph: &KnowledgeGraph, e: EntityId, alias_prob: f64, rng: &mut StdRng) -> String {
    let ent = graph.entity(e);
    if !ent.aliases.is_empty() && rng.gen_bool(alias_prob) {
        ent.aliases[rng.gen_range(0..ent.aliases.len())].clone()
    } else {
        ent.label.clone()
    }
}

/// A synthesized street address (deliberately unlinkable to the KG —
/// the paper's example of hard non-numeric columns).
pub fn synth_address(rng: &mut StdRng) -> String {
    const STREETS: [&str; 8] = [
        "Maple Street", "Oak Avenue", "Elm Drive", "Pine Road", "Birch Lane", "Cedar Court",
        "Willow Way", "Aspen Boulevard",
    ];
    let number = rng.gen_range(1..9999);
    let street = STREETS[rng.gen_range(0..STREETS.len())];
    let unit: u32 = rng.gen_range(0..4);
    if unit == 0 {
        format!("{number} {street}, Apt {}", rng.gen_range(1..40))
    } else {
        format!("{number} {street}")
    }
}

/// A synthesized opaque code (the paper's abbreviation-code example).
/// Three letters keep accidental collisions with entity-alias initialisms
/// rare, so code columns stay genuinely unlinkable.
pub fn synth_code(rng: &mut StdRng) -> String {
    let a = (b'A' + rng.gen_range(0..26u8)) as char;
    let b = (b'A' + rng.gen_range(0..26u8)) as char;
    let c = (b'A' + rng.gen_range(0..26u8)) as char;
    format!("{a}{b}{c}-{}", rng.gen_range(1..99))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_kg::WorldConfig;
    use rand::SeedableRng;

    #[test]
    fn related_follows_predicates() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(1));
        let cities = world.instances_of(world.types.city);
        let mut found = false;
        for &c in cities {
            if let Some(country) = related(&world.graph, c, kglink_kg::predicates::COUNTRY) {
                let countries: HashSet<EntityId> =
                    world.instances_of(world.types.country).iter().copied().collect();
                assert!(countries.contains(&country));
                found = true;
                break;
            }
        }
        assert!(found, "cities should have country edges");
    }

    #[test]
    fn sample_is_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let pool: Vec<EntityId> = (0..10).map(EntityId).collect();
        let s = sample_instances(&pool, 5, &mut rng);
        assert_eq!(s.len(), 5);
        let set: HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 5);
        let all = sample_instances(&pool, 100, &mut rng);
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn synth_strings_have_expected_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let addr = synth_address(&mut rng);
        assert!(addr.chars().next().unwrap().is_ascii_digit());
        let code = synth_code(&mut rng);
        assert!(code.contains('-'));
        assert!(code.len() <= 6);
    }
}
