//! Streaming big-world generator: multi-million-entity KGs straight to disk.
//!
//! [`SyntheticWorld`](kglink_kg::SyntheticWorld) builds its graph in
//! memory, which caps it at the low millions of entities. This module
//! targets the `kglink-store` scale experiments: it emits entities in id
//! order directly into a [`WorldWriter`], holding only **one block** of
//! adjacency state at a time, so a 10M-entity world builds in tens of
//! megabytes of resident memory.
//!
//! The world is deliberately block-structured so adjacency is computable
//! without global state:
//!
//! - Entities are generated in blocks of `block_entities`. Each block is
//!   `instances ++ block types`: instances carry `instance of` edges to a
//!   type *in their own block* plus a `related to` ring edge, so every
//!   incoming list an entity needs is known by the time it is written.
//! - A tiny set of core types lives at the **end** of the id space. Block
//!   types point at them with `subclass of` forward references (the
//!   [`WorldWriter`] validates forward references at finish), giving the
//!   ontology two levels like the paper's granularity experiments expect.
//! - Labels come from bounded combinatorial word pools plus a numeric
//!   disambiguator, so token document frequencies are realistic (a first
//!   name recurs across ~1/64 of the corpus) while labels stay unique.
//!
//! Everything derives from `splitmix64(seed, id)` — no RNG state is
//! carried between entities, so generation is reproducible and could be
//! resumed or parallelized per block.

use kglink_kg::{predicates, Edge, Entity, EntityId, NeSchema, PredicateId};
use kglink_store::{Manifest, StoreError, WorldWriter, WorldWriterConfig};
use std::path::Path;

/// Predicate used for the intra-block instance ring.
pub const RELATED_TO: &str = "related to";

const FIRST: [&str; 24] = [
    "alda", "boris", "carmen", "dmitri", "elena", "farid", "greta", "hugo", "ines", "jonas",
    "katya", "liam", "mira", "nadia", "otto", "priya", "quentin", "rosa", "stefan", "tomas",
    "ulrike", "vera", "wanda", "yusuf",
];
const SECOND: [&str; 24] = [
    "berg", "castillo", "duarte", "eriksen", "fontaine", "garcia", "holm", "ivanov", "jensen",
    "kowalski", "lindqvist", "moreau", "novak", "okafor", "petrov", "quirke", "rossi", "silva",
    "tanaka", "ueda", "vargas", "weber", "yamada", "zhang",
];
const SCHEMAS: [NeSchema; 8] = [
    NeSchema::Person,
    NeSchema::Date,
    NeSchema::Organization,
    NeSchema::Place,
    NeSchema::Work,
    NeSchema::Biology,
    NeSchema::Concept,
    NeSchema::Other,
];

/// Geometry of a generated big world.
#[derive(Debug, Clone)]
pub struct BigWorldConfig {
    /// Minimum total entity count; the actual world rounds up to whole
    /// blocks plus the core type set.
    pub n_entities: u64,
    /// Entities per block (instances + block types).
    pub block_entities: u32,
    /// Type entities at the end of each block.
    pub types_per_block: u32,
    /// Core (top-level) type entities at the end of the id space.
    pub core_types: u32,
    /// Seed for the splitmix64 derivations.
    pub seed: u64,
    /// Maximum number of sample mentions collected for query benchmarks.
    pub mention_cap: usize,
    /// Skewed "hub" term families (0 disables). Each family `f` plants a
    /// `skewhub{f}` token with a deliberately top-heavy posting list: a
    /// few high-tf, short-document *hot* carriers at the very start of
    /// the id space, then a long tail of low-tf, padded *cold* carriers.
    /// Postings are doc-id ordered, so the hot docs land in the first
    /// posting block and fill a top-k heap whose threshold no later
    /// block's max can beat — the workload BM25 block-max skipping
    /// exists for (see `Bm25Segment`'s `skipped_blocks`).
    pub skew_terms: u32,
}

impl Default for BigWorldConfig {
    fn default() -> Self {
        BigWorldConfig {
            n_entities: 1_000_000,
            block_entities: 10_000,
            types_per_block: 16,
            core_types: 8,
            seed: 0x01ba_db16_c0de,
            mention_cap: 256,
            skew_terms: 8,
        }
    }
}

/// What a finished generation run produced.
#[derive(Debug, Clone)]
pub struct BigWorld {
    /// The committed world manifest.
    pub manifest: Manifest,
    /// Entity labels/aliases sampled uniformly over the id space — ready
    /// to use as retrieval queries against the world.
    pub mentions: Vec<String>,
    /// One single-token query per skew family (`skewhub{f}`); running
    /// these against the world's BM25 index exercises block-max skipping.
    pub skew_queries: Vec<String>,
}

/// splitmix64: a strong, stateless mix of (seed, value).
fn mix(seed: u64, v: u64) -> u64 {
    let mut z = seed ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn instance_entity(seed: u64, id: u64) -> Entity {
    let h = mix(seed, id);
    let first = FIRST[(h % 24) as usize];
    let second = SECOND[((h >> 8) % 24) as usize];
    let tag = id / (24 * 24);
    let schema = SCHEMAS[((h >> 16) % 8) as usize];
    let label = format!("{first} {second} {tag}");
    let mut e = Entity::new(label, schema);
    // A quarter of instances carry an initials-style alias, so the alias
    // path of the index sees real traffic at scale.
    if h & 0b11_0000_0000_0000 == 0 {
        e = e.with_alias(format!("{} {second}", &first[..1]));
    }
    e
}

/// Generate a world into `dir`. Returns the manifest and sampled
/// mentions. Peak memory is O(`block_entities` + `n_blocks ×
/// types_per_block`) regardless of total world size.
pub fn generate_big_world(
    dir: &Path,
    cfg: &BigWorldConfig,
    store: WorldWriterConfig,
) -> Result<BigWorld, StoreError> {
    if cfg.types_per_block == 0 || cfg.block_entities <= cfg.types_per_block {
        return Err(StoreError::Corrupt(
            "block_entities must exceed types_per_block (both positive)".into(),
        ));
    }
    if cfg.core_types == 0 {
        return Err(StoreError::Corrupt("core_types must be positive".into()));
    }
    let block = u64::from(cfg.block_entities);
    let insts = block - u64::from(cfg.types_per_block);
    let n_blocks = cfg.n_entities.saturating_sub(u64::from(cfg.core_types)).div_ceil(block).max(1);
    let total = n_blocks * block + u64::from(cfg.core_types);
    if total > u64::from(u32::MAX) {
        return Err(StoreError::Corrupt(format!(
            "{total} entities overflow u32 entity ids"
        )));
    }
    let core_base = n_blocks * block;
    let mention_stride = (n_blocks * insts / cfg.mention_cap.max(1) as u64).max(1);

    let mut w = WorldWriter::new(dir, store)?;
    let p31 = w.intern_predicate(predicates::INSTANCE_OF)?;
    let p279 = w.intern_predicate(predicates::SUBCLASS_OF)?;
    let rel = w.intern_predicate(RELATED_TO)?;
    let mut mentions = Vec::new();

    for b in 0..n_blocks {
        let base = b * block;
        // Incoming `instance of` lists for this block's types, filled as
        // the instances stream out.
        let mut type_in: Vec<Vec<Edge>> =
            vec![Vec::new(); cfg.types_per_block as usize];
        for j in 0..insts {
            let id = base + j;
            let h = mix(cfg.seed ^ 0xb10c, id);
            let t = (h % u64::from(cfg.types_per_block)) as usize;
            let type_id = EntityId((base + insts + t as u64) as u32);
            let mut e = instance_entity(cfg.seed, id);
            // Mentions sample the *organic* surface forms, before any skew
            // alias is appended, so query benchmarks stay representative.
            let organic_mention = {
                let m = e.aliases.first().filter(|_| h & 1 == 0);
                m.cloned().unwrap_or_else(|| e.label.clone())
            };
            // Skew families: the first `16 × skew_terms` ids are hot
            // carriers (tf 4, short doc); a hashed ~`skew_terms`/97 slice
            // of the remaining ids are cold carriers (tf 1, padded doc).
            let hot_total = 16 * u64::from(cfg.skew_terms);
            if cfg.skew_terms > 0 {
                if b == 0 && j < hot_total {
                    let fam = j / 16;
                    let tok = format!("skewhub{fam}");
                    e = e.with_alias(format!("{tok} {tok} {tok} {tok}"));
                } else if id >= hot_total {
                    let fam = mix(cfg.seed ^ 0x5e3b, id) % 97;
                    if fam < u64::from(cfg.skew_terms) {
                        e = e.with_alias(format!(
                            "skewhub{fam} archive backfill record entry item note"
                        ));
                    }
                }
            }
            let mut out = vec![Edge {
                predicate: p31,
                target: type_id,
            }];
            let mut inc = Vec::new();
            if insts > 1 {
                out.push(Edge {
                    predicate: rel,
                    target: EntityId((base + (j + 1) % insts) as u32),
                });
                inc.push(Edge {
                    predicate: rel,
                    target: EntityId((base + (j + insts - 1) % insts) as u32),
                });
            }
            let got = w.add_entity(&e, &out, &inc)?;
            type_in[t].push(Edge {
                predicate: p31,
                target: got,
            });
            if mentions.len() < cfg.mention_cap && id % mention_stride == 0 {
                mentions.push(organic_mention);
            }
        }
        for (t, inc) in type_in.into_iter().enumerate() {
            let core = (b * u64::from(cfg.types_per_block) + t as u64)
                % u64::from(cfg.core_types);
            let out = [Edge {
                predicate: p279,
                // Forward reference: core types are written last.
                target: EntityId((core_base + core) as u32),
            }];
            let e = Entity::new_type(format!("category {b} {t}"));
            w.add_entity(&e, &out, &inc)?;
        }
    }
    // Core types, with every block type that subclasses them incoming.
    for c in 0..u64::from(cfg.core_types) {
        let mut inc = Vec::new();
        for b in 0..n_blocks {
            for t in 0..u64::from(cfg.types_per_block) {
                if (b * u64::from(cfg.types_per_block) + t) % u64::from(cfg.core_types) == c {
                    inc.push(Edge {
                        predicate: p279,
                        target: EntityId((b * block + insts + t) as u32),
                    });
                }
            }
        }
        let e = Entity::new_type(format!("core domain {c}"));
        w.add_entity(&e, &[], &inc)?;
    }
    let manifest = w.finish()?;
    let skew_queries = (0..cfg.skew_terms)
        .map(|f| format!("skewhub{f}"))
        .collect();
    Ok(BigWorld {
        manifest,
        mentions,
        skew_queries,
    })
}

/// Predicate id of [`RELATED_TO`] in a generated world (interned third,
/// after the two ontology predicates).
pub fn related_to_id() -> PredicateId {
    PredicateId(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_kg::GraphAccess;
    use kglink_store::DiskWorld;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "kglink-bigworld-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn small_cfg() -> BigWorldConfig {
        BigWorldConfig {
            n_entities: 2_000,
            block_entities: 500,
            types_per_block: 8,
            core_types: 4,
            mention_cap: 32,
            ..BigWorldConfig::default()
        }
    }

    #[test]
    fn generated_world_opens_and_is_coherent() {
        let dir = tmpdir("coherent");
        let bw = generate_big_world(&dir, &small_cfg(), WorldWriterConfig::default()).unwrap();
        assert!(bw.manifest.n_entities >= 2_000);
        assert_eq!(bw.mentions.len(), 32);
        let world = DiskWorld::open(&dir).unwrap();
        // Every instance has exactly one type, inside its own block, and
        // that type subclasses a core type.
        let id = EntityId(123);
        let tys = world.graph.types_of(id);
        assert_eq!(tys.len(), 1);
        assert!(world.graph.entity(tys[0]).is_type);
        let supers = world.graph.superclasses_of(tys[0]);
        assert_eq!(supers.len(), 1);
        assert!(world.graph.label(supers[0]).starts_with("core domain"));
        // Ring edges are symmetric through the one-hop view.
        assert!(world.graph.one_hop(id).contains(&EntityId(124)));
        // Sampled mentions actually retrieve entities.
        let hits = world.backend.try_search(&bw.mentions[0], 3).unwrap();
        assert!(!hits.is_empty(), "mention {:?} found nothing", bw.mentions[0]);
        // Skew hub terms retrieve, and the top hit is a hot carrier from
        // the front of the id space (tf 4 beats the padded cold tail).
        let hits = world.backend.try_search(&bw.skew_queries[0], 3).unwrap();
        assert!(!hits.is_empty(), "skew term found nothing");
        assert!(hits[0].0 .0 < 128, "top skew hit {:?} is not a hot carrier", hits[0].0);
        assert_eq!(world.graph.error_count(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generation_is_deterministic() {
        let (d1, d2) = (tmpdir("det1"), tmpdir("det2"));
        let a = generate_big_world(&d1, &small_cfg(), WorldWriterConfig::default()).unwrap();
        let b = generate_big_world(&d2, &small_cfg(), WorldWriterConfig::default()).unwrap();
        assert_eq!(a.manifest, b.manifest);
        assert_eq!(a.mentions, b.mentions);
        assert_eq!(a.skew_queries, b.skew_queries);
        std::fs::remove_dir_all(&d1).unwrap();
        std::fs::remove_dir_all(&d2).unwrap();
    }

    #[test]
    fn degenerate_geometry_is_rejected() {
        let dir = tmpdir("degenerate");
        let cfg = BigWorldConfig {
            block_entities: 8,
            types_per_block: 8,
            ..BigWorldConfig::default()
        };
        assert!(matches!(
            generate_big_world(&dir, &cfg, WorldWriterConfig::default()),
            Err(StoreError::Corrupt(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
