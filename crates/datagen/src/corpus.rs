//! MLM pre-training corpus: verbalized knowledge-graph facts.
//!
//! BERT arrives at the CTA task already knowing that "Peter Steele" is a
//! musician; the paper leans on that prior knowledge (its Table IV shows all
//! PLM-based methods handling no-linkage columns well). The reproduction's
//! encoder acquires the equivalent prior by MLM pre-training on sentences
//! verbalized from the synthetic KG.

use kglink_kg::SyntheticWorld;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Build the pre-training corpus for a world: one sentence per outgoing
/// fact plus "X is a T ." sentences for typed instances, shuffled
/// deterministically.
pub fn pretrain_corpus(world: &SyntheticWorld, seed: u64) -> Vec<String> {
    let g = &world.graph;
    let mut sentences = Vec::with_capacity(g.edge_count() + g.len());
    for (id, entity) in g.entities() {
        if entity.is_type {
            continue;
        }
        sentences.extend(g.verbalize(id));
        for ty in g.types_of(id) {
            sentences.push(format!("{} is a {} .", entity.label, g.label(ty)));
        }
        if !entity.description.is_empty() {
            sentences.push(format!("{} : {} .", entity.label, entity.description));
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    sentences.shuffle(&mut rng);
    sentences
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_kg::WorldConfig;

    #[test]
    fn corpus_covers_facts_and_types() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(4));
        let corpus = pretrain_corpus(&world, 1);
        assert!(corpus.len() > world.graph.len(), "at least one sentence per entity on average");
        assert!(corpus.iter().any(|s| s.contains(" is a ")));
        assert!(corpus.iter().any(|s| s.contains("instance of")));
    }

    #[test]
    fn corpus_is_deterministic() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(4));
        assert_eq!(pretrain_corpus(&world, 9), pretrain_corpus(&world, 9));
        assert_ne!(pretrain_corpus(&world, 9), pretrain_corpus(&world, 10));
    }

    #[test]
    fn type_entities_do_not_generate_sentences() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(4));
        let corpus = pretrain_corpus(&world, 1);
        // "Basketball player subclass of Athlete" style sentences are absent.
        assert!(!corpus.iter().any(|s| s.contains("subclass of")));
    }
}
